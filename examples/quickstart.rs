//! Quickstart: the unified engine pipeline — declare a model spec, fit
//! it on a synthetic Amazon-like dataset, evaluate both of the paper's
//! tasks, and round-trip the trained model through a servable artifact.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gml_fm::data::{generate, DatasetSpec};
use gml_fm::engine::{Engine, ModelSpec, SplitPlan};
use gml_fm::train::TrainConfig;

fn main() {
    // 1. A seeded synthetic dataset calibrated to the paper's Table 2
    //    (Amazon-Auto here, scaled down for a fast demo).
    let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.5));
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users x {} items, {} interactions, {:.2}% sparse",
        stats.name,
        stats.n_users,
        stats.n_items,
        stats.n_instances,
        stats.sparsity * 100.0
    );

    // 2. GML-FM with the DNN distance (1 layer) — the paper's strongest
    //    variant — on the rating protocol (+-1 implicit targets,
    //    2 sampled negatives per positive, 70/20/10 split), trained with
    //    Adam on the squared loss. One fluent pipeline.
    let rec = Engine::builder()
        .dataset(dataset.clone())
        .split(SplitPlan::rating(7))
        .spec(ModelSpec::gml_fm_dnn(16, 1))
        .train_config(TrainConfig { epochs: 15, ..TrainConfig::default() })
        .fit()
        .expect("rating pipeline");
    let report = rec.report().expect("fit keeps its training report");
    println!(
        "trained {} epochs; train loss {:.4} -> {:.4}, best val RMSE {:.4}",
        report.epochs_run,
        report.train_losses.first().unwrap(),
        report.train_losses.last().unwrap(),
        report.best_val_rmse
    );

    // 3. Evaluation runs tape-free through the frozen serving path.
    let rating = rec.evaluate_rating().expect("rating holdout");
    println!("rating prediction: test RMSE {:.4}, MAE {:.4}", rating.rmse, rating.mae);

    // 4. The top-n protocol (leave-one-out, 99 sampled negatives,
    //    truncate at 10) is the same pipeline with a different split plan.
    let ranker = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(11))
        .spec(ModelSpec::gml_fm_dnn(16, 1))
        .train_config(TrainConfig { epochs: 15, ..TrainConfig::default() })
        .fit()
        .expect("top-n pipeline");
    let topn = ranker.evaluate_topn(10).expect("top-n holdout");
    println!("top-n recommendation: HR@10 {:.4}, NDCG@10 {:.4}", topn.hr, topn.ndcg);

    // 5. Save → load → serve: the versioned artifact restores a servable
    //    recommender without touching the training crates.
    let path = std::env::temp_dir().join("gmlfm_quickstart_artifact.json");
    ranker.save(&path).expect("save artifact");
    let served = Engine::load(&path).expect("load artifact");
    let top = served.top_n(0, 5).expect("rank the catalogue for user 0");
    println!("\ntop-5 items for user 0 from the reloaded artifact:");
    for (rank, (item, score)) in top.iter().enumerate() {
        println!("  #{:<2} item {:<5} score {:.4}", rank + 1, item, score);
    }
    let probe = ranker.top_n(0, 5).expect("rank in memory");
    assert_eq!(probe, top, "artifact round trip must preserve rankings exactly");
    let _ = std::fs::remove_file(path);
}
