//! Quickstart: train GML-FM on a synthetic Amazon-like dataset and
//! evaluate both of the paper's tasks.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, loo_split, rating_split, DatasetSpec, FieldMask};
use gml_fm::eval::{evaluate_rating, evaluate_topn_frozen};
use gml_fm::serve::Freeze;
use gml_fm::train::{fit_regression, TrainConfig};

fn main() {
    // 1. A seeded synthetic dataset calibrated to the paper's Table 2
    //    (Amazon-Auto here, scaled down for a fast demo).
    let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.5));
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users x {} items, {} interactions, {:.2}% sparse",
        stats.name,
        stats.n_users,
        stats.n_items,
        stats.n_instances,
        stats.sparsity * 100.0
    );

    // 2. The paper's rating-prediction protocol: +-1 implicit targets,
    //    2 sampled negatives per positive, 70/20/10 split.
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, 7);

    // 3. GML-FM with the DNN distance (1 layer) — the paper's strongest
    //    variant — trained with Adam on the squared loss.
    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    let report = fit_regression(
        &mut model,
        &split.train,
        Some(&split.val),
        &TrainConfig { epochs: 15, ..TrainConfig::default() },
    );
    println!(
        "trained {} epochs; train loss {:.4} -> {:.4}, best val RMSE {:.4}",
        report.epochs_run,
        report.train_losses.first().unwrap(),
        report.train_losses.last().unwrap(),
        report.best_val_rmse
    );

    // 4. Freeze for serving: all evaluation runs tape-free through the
    //    Eq. 10/11 decoupled form.
    let rating = evaluate_rating(&model.freeze(), &split.test);
    println!("rating prediction: test RMSE {:.4}, MAE {:.4}", rating.rmse, rating.mae);

    // 5. The top-n protocol: leave-one-out, 99 sampled negatives,
    //    truncate at 10 — ranked via the frozen top-N scorer (context
    //    partial sums once per user, item delta per candidate).
    let loo = loo_split(&dataset, &mask, 2, 99, 11);
    let mut ranker = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(&mut ranker, &loo.train, None, &TrainConfig { epochs: 15, ..TrainConfig::default() });
    let topn = evaluate_topn_frozen(&ranker.freeze(), &dataset, &mask, &loo.test, 10);
    println!("top-n recommendation: HR@10 {:.4}, NDCG@10 {:.4}", topn.hr, topn.ndcg);
}
