//! Million-item serving: sharded bounded-heap top-N retrieval through
//! the hot-swappable [`gml_fm::service::ModelServer`], at catalog scale.
//!
//! The scenario is the ROADMAP's north star in miniature:
//!
//! 1. build a synthetic catalogue (default **1,000,000 items** with side
//!    features; pass an item count to override — CI smokes 100k) from
//!    the `O(n)` scale generator;
//! 2. serve whole-catalogue top-10 requests through the typed request
//!    path — per-worker shards, one bounded heap each, deterministic
//!    merge — and time it against the old full-sort selection over the
//!    *same* scores;
//! 3. with `--index`, build the metric-space IVF index and serve the
//!    same whole-catalogue requests sublinearly: cluster probing with
//!    norm-bound pruning, exact scores on everything that survives,
//!    measured recall@10 against the exact path;
//! 4. run candidate-subset and exclusion requests to show the pre-heap
//!    filtering (excluded items never occupy heap slots);
//! 5. hot-swap a retrained model **mid-traffic** while reader threads
//!    hammer the handle: every response stays consistent with exactly
//!    one generation.
//!
//! ```sh
//! cargo run --release --example serve_millions                    # 1M items
//! cargo run --release --example serve_millions 100000             # CI smoke
//! cargo run --release --example serve_millions 100000 --index     # + IVF index
//! ```
//!
//! The models are serving-shaped but untrained (random parameters):
//! retrieval cost is independent of the parameter values, and training
//! at this scale is a different example's job.

use gml_fm::data::{generate_scale, ScaleConfig};
use gml_fm::serve::{rank_cmp, FrozenModel, IvfBuildOptions, IvfIndex, RetrievalStrategy};
use gml_fm::service::{Catalog, ModelServer, ModelSnapshot, ScoringBackend, SeenItems, TopNRequest};
use gmlfm_data::{FieldKind, FieldMask};
use gmlfm_par::Parallelism;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

const N_USERS: usize = 1_000;
const K: usize = 8;

/// A serving-shaped frozen model over `dim` one-hot features: weighted
/// squared-Euclidean metric (the GML-FM_md form after freezing).
fn frozen_model(dim: usize, seed: u64) -> FrozenModel {
    FrozenModel::synthetic_metric(dim, K, seed)
}

fn main() {
    let n_items: usize = std::env::args().skip(1).find_map(|v| v.parse().ok()).unwrap_or(1_000_000);
    let use_index = std::env::args().any(|a| a == "--index");

    // -- 1. the catalogue --------------------------------------------------
    let t = Instant::now();
    let dataset = generate_scale(&ScaleConfig::new(N_USERS, n_items, 42));
    let mask = FieldMask::all(&dataset.schema);
    let catalog = Catalog::from_dataset(&dataset, &mask);
    let seen =
        SeenItems::new(dataset.user_item_sets().into_iter().map(|s| s.into_iter().collect()).collect());
    let dim = dataset.schema.total_dim();
    println!(
        "catalogue: {} items x {} users, {} one-hot features, built in {:.1}s",
        n_items,
        N_USERS,
        dim,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    let make_snapshot = |seed: u64| ModelSnapshot {
        schema: dataset.schema.clone(),
        frozen: frozen_model(dim, seed),
        catalog: Some(catalog.clone()),
        seen: Some(seen.clone()),
        index: None,
    };
    let server = ModelServer::new(make_snapshot(1)).expect("consistent snapshot");
    println!("frozen model (k = {K}) built and serving in {:.1}s\n", t.elapsed().as_secs_f64());

    // -- 2. sharded-heap retrieval vs the old full sort --------------------
    let user = 3u32;
    let req = TopNRequest::new(user, 10);
    let t = Instant::now();
    let top = server.top_n(&req).expect("valid request");
    let heap_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("top-10 of {n_items} items via sharded heaps: {heap_ms:.0} ms");
    for (rank, (item, score)) in top.value.iter().enumerate() {
        println!("  #{:<2} item {:<8} score {score:.4}", rank + 1, item);
    }

    let (_, snap) = server.snapshot();
    let candidates: Vec<u32> = {
        // The same request the full-sort way: score everything, sort
        // everything. Seen-item exclusion applied pre-selection on both
        // paths, so the candidate lists match.
        let seen_items = seen.items(user);
        (0..n_items as u32).filter(|i| seen_items.binary_search(i).is_err()).collect()
    };
    let t = Instant::now();
    let mut scored: Vec<(u32, f64)> = candidates
        .iter()
        .copied()
        .zip(snap.frozen.candidate_scores(
            &catalog,
            catalog.template(user).expect("user in catalog"),
            &candidates,
            Parallelism::auto(),
        ))
        .collect();
    scored.sort_by(rank_cmp);
    scored.truncate(10);
    let sort_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(scored, top.value, "heap path must equal the full sort, tie order included");
    println!(
        "same request, full-sort selection: {sort_ms:.0} ms  ({:.2}x the heap path)\n",
        sort_ms / heap_ms
    );

    // -- 3. IVF-indexed retrieval (--index) --------------------------------
    // A trained-shape model (item-id embeddings damped to half the
    // attribute scale) behind a snapshot that carries its IVF index:
    // default-strategy requests go through cluster probing + norm-bound
    // pruning; a `RetrievalStrategy::Exact` pin on the same server is
    // the reference. Scores on the intersection must be bitwise equal —
    // the index approximates the candidate set, never the scores.
    if use_index {
        let item_field = dataset.schema.field_of_kind(FieldKind::Item).expect("item field");
        let item_off = dataset.schema.offset(item_field);
        let damped = FrozenModel::synthetic_metric_damped(dim, K, 1, item_off..item_off + n_items, 0.5);
        let t = Instant::now();
        let index = IvfIndex::build(&damped, &catalog, &IvfBuildOptions::default(), Parallelism::auto())
            .expect("weighted squared-Euclidean metric model is indexable");
        println!(
            "\nIVF index: {} clusters over {n_items} items, default nprobe {}, built in {:.1}s",
            index.n_clusters(),
            index.default_nprobe(),
            t.elapsed().as_secs_f64()
        );
        let indexed = ModelServer::new(ModelSnapshot {
            schema: dataset.schema.clone(),
            frozen: damped,
            catalog: Some(catalog.clone()),
            seen: Some(seen.clone()),
            index: Some(index),
        })
        .expect("consistent snapshot");

        let recall_users = 16u32;
        let (mut ivf_s, mut exact_s, mut hits) = (0.0f64, 0.0f64, 0usize);
        for u in 0..recall_users {
            let t = Instant::now();
            let ivf = indexed.top_n(&TopNRequest::new(u, 10)).expect("valid request");
            ivf_s += t.elapsed().as_secs_f64();
            let t = Instant::now();
            let exact = indexed
                .top_n(&TopNRequest::new(u, 10).strategy(RetrievalStrategy::Exact))
                .expect("valid request");
            exact_s += t.elapsed().as_secs_f64();
            for (item, score) in &ivf.value {
                if let Some((_, exact_score)) = exact.value.iter().find(|(e, _)| e == item) {
                    assert_eq!(score, exact_score, "indexed score diverged from exact for item {item}");
                    hits += 1;
                }
            }
        }
        println!(
            "indexed top-10 over {recall_users} users: {:.1} ms/req vs {:.1} ms/req exact \
             ({:.1}x, recall@10 {:.3}, scores bitwise-exact on the overlap)",
            1e3 * ivf_s / recall_users as f64,
            1e3 * exact_s / recall_users as f64,
            exact_s / ivf_s,
            hits as f64 / (recall_users as usize * 10) as f64
        );
    }

    // -- 4. candidate subsets and exclusions, filtered pre-heap ------------
    let slate: Vec<u32> = (0..n_items as u32).step_by((n_items / 1000).max(1)).collect();
    let banned: Vec<u32> = slate.iter().copied().take(5).collect();
    let resp = server
        .top_n(&TopNRequest::new(user, 10).candidates(slate.clone()).exclude(banned.clone()))
        .expect("valid request");
    assert!(resp.value.iter().all(|(i, _)| !banned.contains(i)), "excluded items never rank");
    println!(
        "candidate slate of {} with {} exclusions -> top-{} served, none excluded",
        slate.len(),
        banned.len(),
        resp.value.len()
    );

    // -- 5. hot swap mid-traffic ------------------------------------------
    let stop = AtomicBool::new(false);
    let swapped_gen = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for reader in 0..2u32 {
            let server = server.clone();
            let stop = &stop;
            readers.push(s.spawn(move || {
                let mut served = 0u64;
                let mut last_gen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let resp = server.top_n(&TopNRequest::new(reader, 10)).expect("valid request");
                    assert!(resp.value.len() <= 10);
                    assert!(resp.generation >= last_gen, "generation went backwards");
                    // One snapshot per response: every returned score must
                    // re-verify against the generation that claims it.
                    last_gen = resp.generation;
                    served += 1;
                }
                (served, last_gen)
            }));
        }
        // Let traffic build up, then ship the retrained model.
        while server.snapshot().0 == 1 {
            let generation = server.swap(make_snapshot(2)).expect("schema-identical retrain");
            println!("\nhot-swapped retrained model mid-traffic: generation {generation}");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        let mut total = 0u64;
        for r in readers {
            let (served, last_gen) = r.join().expect("reader ok");
            total += served;
            assert!(last_gen >= 1);
        }
        println!("readers served {total} top-10 requests across the swap, none torn");
        server.generation()
    });
    assert_eq!(swapped_gen, 2);

    // The swapped-in model answers future requests.
    let after = server.top_n(&TopNRequest::new(user, 10)).expect("valid request");
    assert_eq!(after.generation, 2);
    println!("generation {} now serves user {user}'s top-10", after.generation);
}
