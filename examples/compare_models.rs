//! Head-to-head: GML-FM against the FM-family baselines on one sparse
//! dataset (the Mercari-Ticket scenario the paper's introduction
//! motivates: second-hand items, most purchased once, rich side
//! information). Every model runs through the same declarative
//! spec-driven pipeline — one loop, no per-model code.
//!
//! ```sh
//! cargo run --release --example compare_models
//! ```

use gml_fm::core::GmlFmConfig;
use gml_fm::data::{generate, DatasetSpec};
use gml_fm::engine::{Engine, ModelSpec, SplitPlan};
use gml_fm::models::fm::FmConfig;
use gml_fm::models::nfm::NfmConfig;
use gml_fm::models::transfm::TransFmConfig;
use gml_fm::train::TrainConfig;

fn main() {
    let dataset = generate(&DatasetSpec::MercariTicket.config(42).scaled(0.4));
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users x {} items, sparsity {:.2}%\n",
        stats.name,
        stats.n_users,
        stats.n_items,
        stats.sparsity * 100.0
    );

    let contenders: [(&str, ModelSpec); 5] = [
        ("FM (inner product)", ModelSpec::fm(FmConfig { epochs: 30, ..FmConfig::default() })),
        ("NFM (Bi-Interaction)", ModelSpec::Nfm { config: NfmConfig::default() }),
        ("TransFM (Euclidean)", ModelSpec::trans_fm(TransFmConfig::default())),
        ("GML-FM_md (Mahalanobis)", ModelSpec::gml_fm(GmlFmConfig::mahalanobis(16))),
        ("GML-FM_dnn (deep metric)", ModelSpec::gml_fm(GmlFmConfig::dnn(16, 1))),
    ];

    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    for (name, spec) in contenders {
        let frozen = if spec.supports_freezing() { "frozen" } else { "live" };
        let rec = Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::TopN { neg_per_pos: 2, n_candidates: 99, seed: 3 })
            .spec(spec)
            .train_config(TrainConfig { epochs: 15, ..TrainConfig::default() })
            .fit()
            .expect("top-n pipeline");
        let m = rec.evaluate_topn(10).expect("top-n holdout");
        eprintln!("  [{frozen}] {name}: HR@10 {:.4}", m.hr);
        results.push((name, m.hr, m.ndcg));
    }

    println!("{:<26} {:>8} {:>8}", "model", "HR@10", "NDCG@10");
    for (name, hr, ndcg) in &results {
        println!("{name:<26} {hr:>8.4} {ndcg:>8.4}");
    }
    let random_hr = 10.0 / 100.0;
    println!("\n(random ranking over 1 positive + 99 negatives would give HR@10 = {random_hr:.2})");

    // Sanity used by the integration tests too: all models beat random.
    assert!(results.iter().all(|(_, hr, _)| *hr > random_hr), "every model should beat random");
}
