//! Head-to-head: GML-FM against the FM-family baselines on one sparse
//! dataset (the Mercari-Ticket scenario the paper's introduction
//! motivates: second-hand items, most purchased once, rich side
//! information).
//!
//! ```sh
//! cargo run --release --example compare_models
//! ```

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, loo_split, DatasetSpec, FieldMask};
use gml_fm::eval::{evaluate_topn, evaluate_topn_frozen};
use gml_fm::models::{
    fm::FmConfig, nfm::NfmConfig, transfm::TransFmConfig, FactorizationMachine, Nfm, TransFm,
};
use gml_fm::serve::Freeze;
use gml_fm::train::{fit_regression, TrainConfig};

fn main() {
    let dataset = generate(&DatasetSpec::MercariTicket.config(42).scaled(0.4));
    let stats = dataset.stats();
    println!(
        "dataset {}: {} users x {} items, sparsity {:.2}%\n",
        stats.name,
        stats.n_users,
        stats.n_items,
        stats.sparsity * 100.0
    );
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, 99, 3);
    let n = dataset.schema.total_dim();
    let tc = TrainConfig { epochs: 15, ..TrainConfig::default() };

    let mut results: Vec<(&str, f64, f64)> = Vec::new();

    // Vanilla FM (inner product, LibFM-style SGD), served frozen.
    let mut fm = FactorizationMachine::new(n, FmConfig { epochs: 30, ..FmConfig::default() });
    fm.fit(&split.train);
    let m = evaluate_topn_frozen(&fm.freeze(), &dataset, &mask, &split.test, 10);
    results.push(("FM (inner product)", m.hr, m.ndcg));

    // NFM (inner product + MLP).
    let mut nfm = Nfm::new(n, &NfmConfig::default());
    fit_regression(&mut nfm, &split.train, None, &tc);
    let m = evaluate_topn(&nfm, &dataset, &mask, &split.test, 10);
    results.push(("NFM (Bi-Interaction)", m.hr, m.ndcg));

    // TransFM (plain Euclidean metric), served frozen.
    let mut transfm = TransFm::new(n, &TransFmConfig::default());
    fit_regression(&mut transfm, &split.train, None, &tc);
    let m = evaluate_topn_frozen(&transfm.freeze(), &dataset, &mask, &split.test, 10);
    results.push(("TransFM (Euclidean)", m.hr, m.ndcg));

    // GML-FM_md (learned Mahalanobis metric), served frozen.
    let mut md = GmlFm::new(n, &GmlFmConfig::mahalanobis(16));
    fit_regression(&mut md, &split.train, None, &tc);
    let m = evaluate_topn_frozen(&md.freeze(), &dataset, &mask, &split.test, 10);
    results.push(("GML-FM_md (Mahalanobis)", m.hr, m.ndcg));

    // GML-FM_dnn (learned deep metric), served frozen.
    let mut dnn = GmlFm::new(n, &GmlFmConfig::dnn(16, 1));
    fit_regression(&mut dnn, &split.train, None, &tc);
    let m = evaluate_topn_frozen(&dnn.freeze(), &dataset, &mask, &split.test, 10);
    results.push(("GML-FM_dnn (deep metric)", m.hr, m.ndcg));

    println!("{:<26} {:>8} {:>8}", "model", "HR@10", "NDCG@10");
    for (name, hr, ndcg) in &results {
        println!("{name:<26} {hr:>8.4} {ndcg:>8.4}");
    }
    let random_hr = 10.0 / 100.0;
    println!("\n(random ranking over 1 positive + 99 negatives would give HR@10 = {random_hr:.2})");

    // Sanity used by the integration tests too: all models beat random.
    assert!(results.iter().all(|(_, hr, _)| *hr > random_hr), "every model should beat random");
}
