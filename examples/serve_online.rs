//! Online learning walkthrough: the full loop from interaction stream
//! to published model, closing what `serve_net.rs` left manual.
//!
//! 1. train once with [`online`](gml_fm::engine::EngineBuilder::online)
//!    retention and start the loop with
//!    [`serve_online`](gml_fm::engine::Recommender::serve_online);
//! 2. expose ingest over TCP: the wire `feed` request folds the
//!    interaction into the live seen overlay **immediately** — the very
//!    next top-n excludes the item, before any retrain runs;
//! 3. run a warm-start retrain round while reader threads hammer the
//!    serving handle: the candidate publishes through the eval gate with
//!    zero blocked readers;
//! 4. plant a regression and watch the gate refuse it with a typed
//!    report — the serving snapshot stays untouched.
//!
//! ```sh
//! cargo run --release --example serve_online
//! ```

use gml_fm::data::{generate, DatasetSpec, FieldKind, Instance, LooTestCase, Schema};
use gml_fm::engine::{Engine, Interaction, ModelSpec, ScoreRequest, SplitPlan, TopNRequest};
use gml_fm::net::{NetClient, NetReply, NetRequest, NetServer, ServerConfig};
use gml_fm::online::{OnlineConfig, OnlineError, OnlineModel, OnlineServing, RoundOutcome};
use gml_fm::serve::{FrozenModel, SecondOrder};
use gml_fm::service::{Catalog, ModelServer, ModelSnapshot};
use gml_fm::tensor::Matrix;
use gml_fm::train::TrainConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // -- 1. train with warm-start retention --------------------------------
    let dataset = generate(&DatasetSpec::MovieLens.config(42).scaled(0.3));
    let mut rec = Engine::builder()
        .dataset(dataset.clone())
        .split(SplitPlan::topn(11))
        .spec(ModelSpec::gml_fm(gml_fm::core::GmlFmConfig::dnn(16, 1).with_seed(1)))
        .train_config(TrainConfig { epochs: 8, ..TrainConfig::default() })
        .online(true) // retain the training set + trainable weights
        .fit()
        .expect("pipeline");
    println!("trained {} on {}", rec.spec().display_name(), dataset.name);

    // The loop: synchronous rounds (background: false) keep this demo
    // deterministic; a service would leave the cadence thread on. The
    // permissive tolerance guarantees the happy-path publish below —
    // production keeps the default 0.01 regression budget.
    let serving = rec
        .serve_online(OnlineConfig {
            background: false,
            min_events: 1,
            gate_tolerance: 1.0,
            train: TrainConfig { epochs: 2, ..TrainConfig::default() },
            ..OnlineConfig::default()
        })
        .expect("freezable + top-n holdout");

    // -- 2. ingest over the wire, exclusion before any retrain -------------
    let net = NetServer::bind_with_feed(
        Arc::new(serving.server().clone()),
        Arc::new(serving.handle().clone()),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let mut client = NetClient::connect(net.local_addr()).expect("loopback resolves");
    println!("serving generation {} on {}", net.generation(), net.local_addr());

    let user = 3u32;
    let topn = |client: &mut NetClient| -> Vec<u32> {
        match client
            .request(&NetRequest::TopN(TopNRequest::new(user, 5)))
            .expect("served")
            .reply
        {
            NetReply::TopN(ranked) => ranked.into_iter().map(|(item, _)| item).collect(),
            other => panic!("expected a top-n reply, got {other:?}"),
        }
    };
    let watched = topn(&mut client)[0];
    println!("\nuser {user} top-5 before the feed: {:?}", topn(&mut client));

    let resp = client
        .request(&NetRequest::Feed(Interaction::new(user, watched).id(1)))
        .expect("feed served");
    if let NetReply::Feed(ack) = &resp.reply {
        println!(
            "fed (user {user}, item {watched}): accepted={} pending={}   [generation {}]",
            ack.accepted, ack.pending, resp.generation
        );
    }
    let after = topn(&mut client);
    assert!(!after.contains(&watched), "fed item must leave top-n before any retrain");
    println!("top-5 right after the feed (no retrain yet): {after:?}");

    // -- 3. gated publish with zero blocked readers ------------------------
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2u32)
        .map(|r| {
            let server = serving.server().clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                // ORDERING: Relaxed — a stop latch for demo threads.
                while !stop.load(Ordering::Relaxed) {
                    server.score(&ScoreRequest::pair(r, served as u32 % 100)).expect("serves");
                    server.top_n(&TopNRequest::new(r, 5)).expect("serves");
                    served += 2;
                }
                served
            })
        })
        .collect();

    let outcome = serving.trainer().run_once();
    stop.store(true, Ordering::Relaxed);
    let served: u64 = readers.into_iter().map(|r| r.join().expect("no reader failed")).sum();
    match &outcome {
        RoundOutcome::Published { generation, report } => println!(
            "\nretrain published as generation {generation} \
             (hr {:.3} → {:.3}, ndcg {:.3} → {:.3}); {served} reader requests served during it",
            report.baseline.hr, report.candidate.hr, report.baseline.ndcg, report.candidate.ndcg,
        ),
        other => panic!("expected a published round, got {other:?}"),
    }
    let resp = client.request(&NetRequest::Score(ScoreRequest::pair(user, 5))).expect("served");
    assert_eq!(resp.generation, 2, "wire replies now stamp the published generation");
    println!("wire replies now stamp generation {}", resp.generation);

    // -- 4. a planted regression is refused --------------------------------
    planted_regression();

    let report = net.shutdown();
    println!("\nnet drained: {report:?}");
    let status = serving.shutdown();
    println!("online loop done: {status:?}");
    assert_eq!(status.published, 1);
}

/// A tiny hand-built loop whose "retrain" always produces a strictly
/// worse ranking — the gate must refuse it, deterministically.
fn planted_regression() {
    const N_USERS: usize = 4;
    const N_ITEMS: usize = 8;
    let schema =
        Schema::from_specs(&[("user", N_USERS, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)]);
    let catalog = Catalog::new(
        vec![1],
        (0..N_USERS as u32).map(|u| vec![u, N_USERS as u32]).collect(),
        (0..N_ITEMS as u32).map(|i| vec![N_USERS as u32 + i]).collect(),
    );
    // A linear model ranking items ascending by id; the saboteur's
    // candidate ranks them descending — HR@1 drops from 1 to 0.
    let linear = |weight: fn(u32) -> f64| {
        let mut w = vec![0.0; N_USERS + N_ITEMS];
        for i in 0..N_ITEMS as u32 {
            w[N_USERS + i as usize] = weight(i);
        }
        FrozenModel::from_parts(0.0, w, Matrix::zeros(N_USERS + N_ITEMS, 2), SecondOrder::Dot)
    };
    struct Saboteur {
        worse: FrozenModel,
    }
    impl OnlineModel for Saboteur {
        fn warm_fit(&mut self, _: &[Instance], _: &TrainConfig) -> Result<(), OnlineError> {
            Ok(())
        }
        fn freeze(&self) -> Result<FrozenModel, OnlineError> {
            Ok(self.worse.clone())
        }
    }

    let snapshot = ModelSnapshot {
        schema,
        frozen: linear(|i| f64::from(N_ITEMS as u32 - i)),
        catalog: Some(catalog),
        seen: None,
        index: None,
    };
    let server = ModelServer::new(snapshot).expect("consistent snapshot");
    let holdout = (0..N_USERS as u32)
        .map(|u| LooTestCase { user: u, pos_item: 0, negatives: vec![5, 6, 7] })
        .collect();
    let serving = OnlineServing::launch(
        server.clone(),
        Box::new(Saboteur { worse: linear(f64::from) }),
        vec![Instance::new(vec![0, N_USERS as u32], 1.0)],
        holdout,
        OnlineConfig {
            background: false,
            min_events: 1,
            gate_k: 1,
            gate_tolerance: 0.0,
            negatives_per_event: 0,
            ..OnlineConfig::default()
        },
    )
    .expect("launch validates");

    serving.handle().feed(&Interaction::new(0, 3)).expect("feed validates");
    match serving.trainer().run_once() {
        RoundOutcome::Rejected { report } => println!(
            "\nplanted regression refused by the gate: hr {:.1} → {:.1} \
             (tolerance {}), serving generation still {}",
            report.baseline.hr,
            report.candidate.hr,
            report.tolerance,
            server.generation(),
        ),
        other => panic!("the gate must refuse a regression, got {other:?}"),
    }
    assert_eq!(server.generation(), 1, "the regression never served");
}
