//! Serving walkthrough: train once, freeze, then rank the full item
//! catalogue for a user — the all-item scoring workload a production
//! recommender runs per request — and compare wall-clock against the
//! autograd evaluation path.
//!
//! ```sh
//! cargo run --release --example serve_rank
//! ```

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, loo_split, DatasetSpec, FieldMask, Instance};
use gml_fm::eval::item_side_slots;
use gml_fm::serve::Freeze;
use gml_fm::train::{fit_regression, GraphModel, TrainConfig};
use std::time::Instant;

fn main() {
    // Train GML-FM_dnn on the Mercari-like scenario.
    let dataset = generate(&DatasetSpec::MercariTicket.config(42).scaled(0.4));
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, 99, 3);
    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(&mut model, &split.train, None, &TrainConfig { epochs: 10, ..TrainConfig::default() });
    println!("trained GML-FM_dnn on {} ({} items)", dataset.name, dataset.n_items);

    // Freeze: copy the parameters out of the autograd world. From here on
    // no graph is ever built.
    let frozen = model.freeze();

    // Rank every item for one user. The ranker computes the user-side
    // partial sums (a, b, C of Eq. 10/11) once, then each candidate costs
    // only the item-side delta.
    let user = 0u32;
    let all_items: Vec<u32> = (0..dataset.n_items as u32).collect();
    let template = dataset.feats(user, 0, &mask);
    // Item-side slots = the positions whose value changes with the
    // candidate (the item id and every item attribute), mask-aware.
    let item_slots = item_side_slots(&dataset, &mask);

    let t0 = Instant::now();
    let mut ranker = frozen.ranker(&template, &item_slots);
    let mut scored: Vec<(u32, f64)> = all_items
        .iter()
        .map(|&item| {
            let feats = dataset.feats(user, item, &mask);
            let item_feats: Vec<u32> = item_slots.iter().map(|&s| feats[s]).collect();
            (item, ranker.score(&item_feats))
        })
        .collect();
    let frozen_time = t0.elapsed();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\ntop-10 items for user {user} (frozen ranker, {frozen_time:?}):");
    for (rank, (item, score)) in scored.iter().take(10).enumerate() {
        println!("  #{:<2} item {:<5} score {:.4}", rank + 1, item, score);
    }

    // The same workload through the autograd path: every candidate is a
    // full forward pass through a fresh tape.
    let t1 = Instant::now();
    let instances: Vec<Instance> = all_items
        .iter()
        .map(|&item| dataset.instance_masked(user, item, 0.0, &mask))
        .collect();
    let refs: Vec<&Instance> = instances.iter().collect();
    let graph_scores = model.predict(&refs);
    let graph_time = t1.elapsed();

    // Same ranking, to the last ulp that matters.
    let best_graph = graph_scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| all_items[i])
        .unwrap();
    assert_eq!(best_graph, scored[0].0, "both paths must agree on the top item");

    let speedup = graph_time.as_secs_f64() / frozen_time.as_secs_f64().max(1e-12);
    println!("\nautograd path over the same {} items: {graph_time:?}", all_items.len());
    println!("frozen serving speedup: {speedup:.1}x");
}
