//! Serving walkthrough: train once through the spec-driven estimator,
//! freeze, then rank the full item catalogue for a user — the all-item
//! scoring workload a production recommender runs per request — and
//! compare wall-clock against the autograd evaluation path. Finally, do
//! the same request through a reloaded artifact, which is what an actual
//! serving process would hold.
//!
//! ```sh
//! cargo run --release --example serve_rank
//! ```

use gml_fm::data::{generate, loo_split, DatasetSpec, FieldMask, Instance};
use gml_fm::engine::{Artifact, Catalog, Engine, FitData, ModelSpec};
use gml_fm::train::TrainConfig;
use std::time::Instant;

fn main() {
    // Train GML-FM_dnn on the Mercari-like scenario, via the unified
    // estimator (the autograd trainer is an implementation detail).
    let dataset = generate(&DatasetSpec::MercariTicket.config(42).scaled(0.4));
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, 99, 3);
    let spec = ModelSpec::gml_fm_dnn(16, 1);
    let mut estimator = spec.build(&dataset.schema, &mask);
    estimator
        .fit(&FitData::topn(&split), &TrainConfig { epochs: 10, ..TrainConfig::default() })
        .expect("training set");
    println!("trained {} on {} ({} items)", spec.display_name(), dataset.name, dataset.n_items);

    // Freeze: copy the parameters out of the autograd world. From here on
    // no graph is ever built. The catalog holds each user's template and
    // each item's feature group (id + attributes).
    let frozen = estimator.freeze_if_supported().expect("GML-FM freezes");
    let catalog = Catalog::from_dataset(&dataset, &mask);

    // Rank every item for one user. The ranker computes the user-side
    // partial sums (a, b, C of Eq. 10/11) once, then each candidate costs
    // only the item-side delta.
    let user = 0u32;
    let t0 = Instant::now();
    let template = catalog.template(user).expect("user in catalog");
    let mut ranker = frozen.ranker(template, catalog.item_slots());
    let mut scored: Vec<(u32, f64)> = (0..dataset.n_items as u32)
        .map(|item| (item, ranker.score(catalog.item_features(item).expect("item in catalog"))))
        .collect();
    let frozen_time = t0.elapsed();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\ntop-10 items for user {user} (frozen ranker, {frozen_time:?}):");
    for (rank, (item, score)) in scored.iter().take(10).enumerate() {
        println!("  #{:<2} item {:<5} score {:.4}", rank + 1, item, score);
    }

    // The same workload through the autograd path: every candidate is a
    // full forward pass through a fresh tape.
    let t1 = Instant::now();
    let instances: Vec<Instance> = (0..dataset.n_items as u32)
        .map(|item| dataset.instance_masked(user, item, 0.0, &mask))
        .collect();
    let graph_scores = estimator.scorer().scores(&instances);
    let graph_time = t1.elapsed();

    // Same ranking, to the last ulp that matters.
    let best_graph = graph_scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i as u32)
        .unwrap();
    assert_eq!(best_graph, scored[0].0, "both paths must agree on the top item");

    let speedup = graph_time.as_secs_f64() / frozen_time.as_secs_f64().max(1e-12);
    println!("\nautograd path over the same {} items: {graph_time:?}", dataset.n_items);
    println!("frozen serving speedup: {speedup:.1}x");

    // Production handoff: ship the artifact; the serving process loads it
    // and answers the identical request without any training machinery.
    let artifact = Artifact::new(spec, &dataset.schema, &frozen, Some(catalog), None, None);
    let served = Engine::load_json(&artifact.to_json()).expect("load artifact");
    let top = served.top_n(user, 10).expect("rank from the artifact");
    assert_eq!(top[0].0, scored[0].0, "artifact serving must agree on the top item");
    println!("reloaded artifact agrees: top item {}", top[0].0);
}
