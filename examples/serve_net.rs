//! Network serving walkthrough: the typed protocol of
//! `examples/serve_service.rs`, but over TCP with the fault-tolerant
//! `gmlfm-net` transport.
//!
//! The scenario is a network deployment's whole lifecycle:
//!
//! 1. train once and [`serve_net`](gml_fm::engine::Recommender::serve_net)
//!    the recommender on an ephemeral loopback port;
//! 2. answer score / top-n / batch requests through a [`NetClient`]
//!    with connect/request timeouts and retry backoff;
//! 3. watch validation failures arrive as typed, machine-readable
//!    error codes — not dropped connections;
//! 4. hot-swap a retrained model mid-traffic and see the generation
//!    stamp move;
//! 5. shut down gracefully and read the [`DrainReport`].
//!
//! ```sh
//! cargo run --release --example serve_net
//! ```

use gml_fm::data::{generate, DatasetSpec};
use gml_fm::engine::{Engine, ModelSpec, ScoreRequest, SplitPlan, TopNRequest};
use gml_fm::net::{ClientError, NetClient, NetReply, NetRequest, ServerConfig};
use gml_fm::train::TrainConfig;

fn main() {
    let dataset = generate(&DatasetSpec::MovieLens.config(42).scaled(0.3));
    let train = |seed: u64| {
        Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::topn(11))
            .spec(ModelSpec::gml_fm(gml_fm::core::GmlFmConfig::dnn(16, 1).with_seed(seed)))
            .train_config(TrainConfig { epochs: 8, ..TrainConfig::default() })
            .fit()
            .expect("pipeline")
    };
    let rec = train(1);
    println!("trained {} on {}", rec.spec().display_name(), dataset.name);

    // Bind on an ephemeral loopback port; the OS picks a free one.
    let server = rec.serve_net("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving generation {} on {addr}", server.generation());

    // -- typed requests over the wire --------------------------------------
    let mut client = NetClient::connect(addr).expect("loopback resolves");
    let user = 3u32;

    let resp = client.request(&NetRequest::Score(ScoreRequest::pair(user, 5))).expect("served");
    if let NetReply::Score(score) = resp.reply {
        println!("\nscore(user {user}, item 5) = {score:.4}   [generation {}]", resp.generation);
    }

    let resp = client.request(&NetRequest::TopN(TopNRequest::new(user, 5))).expect("served");
    if let NetReply::TopN(ranked) = &resp.reply {
        println!("top-5 for user {user} over the wire:");
        for (rank, (item, score)) in ranked.iter().enumerate() {
            println!("  #{:<2} item {:<5} score {score:.4}", rank + 1, item);
        }
    }

    // Validation failures are typed replies with stable codes — the
    // connection stays open and the client does not retry them.
    let err = client
        .request(&NetRequest::Score(ScoreRequest::pair(user, 999_999)))
        .unwrap_err();
    match err {
        ClientError::Server(e) => println!("\nout-of-catalog request rejected: [{}] {}", e.code, e.message),
        other => panic!("expected a typed server error, got {other}"),
    }

    // -- batch: a cold-start slate in one round trip -----------------------
    let profile: &[(&str, usize)] = &[("gender", 1), ("age", 3), ("occupation", 7)];
    let slate: Vec<u32> = (0..20).collect();
    let batch = gml_fm::engine::BatchRequest::new(
        slate
            .iter()
            .map(|&item| gml_fm::engine::Request::Score(ScoreRequest::cold(item, profile)))
            .collect(),
    );
    let resp = client.request(&NetRequest::Batch(batch)).expect("served");
    if let NetReply::Batch(slots) = &resp.reply {
        let mut scored: Vec<(u32, f64)> = slate
            .iter()
            .zip(slots)
            .filter_map(|(&item, slot)| match slot {
                Ok(NetReply::Score(score)) => Some((item, *score)),
                _ => None,
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("\ncold-start slate for an unseen user {profile:?} [generation {}]:", resp.generation);
        for (item, score) in scored.iter().take(5) {
            println!("  item {item:<5} score {score:.4}");
        }
    }

    // -- hot swap mid-traffic ----------------------------------------------
    let retrained = train(2);
    let snapshot = retrained.artifact().expect("freezable").into_snapshot().expect("decodes");
    let generation = server.model().swap(snapshot).expect("schema-identical retrain");
    let resp = client.request(&NetRequest::Score(ScoreRequest::pair(user, 5))).expect("served");
    println!("\nhot-swapped retrained model: generation {generation}");
    if let NetReply::Score(score) = resp.reply {
        println!("score(user {user}, item 5) = {score:.4}   [generation {}]", resp.generation);
    }
    assert_eq!(resp.generation, generation, "replies after the swap carry the new generation");

    // -- graceful drain ----------------------------------------------------
    let report = server.shutdown();
    println!("\ndrained: {report:?}");
    assert_eq!(report.worker_panics, 0, "no handler thread may die to a panic");

    // The port is released: a fresh request now fails typed, after the
    // client's retry budget, instead of hanging.
    let err = client.request(&NetRequest::Score(ScoreRequest::pair(user, 5))).unwrap_err();
    println!("post-shutdown request fails typed: {err}");
}
