//! Cold-start scenario (the paper's Figure 4 motivation): how well does
//! GML-FM score users with very few training interactions, and how does a
//! meta-learning baseline (MAMO-lite) compare?
//!
//! GML-FM trains through the engine's spec-driven estimator; MAMO-lite
//! keeps its bespoke meta-learning loop (per-user adaptation is outside
//! the point-wise/pairwise fit contract).
//!
//! ```sh
//! cargo run --release --example cold_start
//! ```

use gml_fm::data::{generate, DatasetSpec, FieldMask, NegativeSampler};
use gml_fm::engine::{FitData, ModelSpec};
use gml_fm::models::mamo::{MamoConfig, MamoTask};
use gml_fm::models::MamoLite;
use gml_fm::tensor::seeded_rng;
use gml_fm::train::TrainConfig;

fn main() {
    // MovieLens-like data with users down to a single interaction.
    let cfg = DatasetSpec::MovieLens.config(42).scaled(0.5).with_interactions(1, 20);
    let dataset = generate(&cfg);
    let mask = FieldMask::all(&dataset.schema);
    let user_sets = dataset.user_item_sets();
    let sampler = NegativeSampler::new(dataset.n_items);
    let mut rng = seeded_rng(9);

    // Hold out the last interaction of every user with >= 2 interactions;
    // the rest is support/training data.
    let counts = dataset.user_counts();
    let mut held_out: Vec<Option<u32>> = vec![None; dataset.n_users];
    let mut train = Vec::new();
    let mut support: Vec<Vec<u32>> = vec![Vec::new(); dataset.n_users];
    for it in &dataset.interactions {
        let u = it.user as usize;
        let is_last = it.ts as usize + 1 == counts[u];
        if counts[u] >= 2 && is_last {
            held_out[u] = Some(it.item);
        } else {
            support[u].push(it.item);
            train.push(dataset.instance_masked(it.user, it.item, 1.0, &mask));
            for neg in sampler.sample(&mut rng, &user_sets[u], 2) {
                train.push(dataset.instance_masked(it.user, neg, -1.0, &mask));
            }
        }
    }

    // GML-FM trained once on everything, via the spec-driven estimator.
    let mut gml = ModelSpec::gml_fm_dnn(16, 1).build(&dataset.schema, &mask);
    gml.fit(&FitData::instances(&train), &TrainConfig { epochs: 12, ..TrainConfig::default() })
        .expect("support interactions exist");

    // MAMO-lite meta-trained on per-user tasks.
    let profile_cards: Vec<usize> = dataset
        .user_attr_fields
        .iter()
        .map(|&f| dataset.schema.fields()[f].cardinality)
        .collect();
    let tasks: Vec<MamoTask> = (0..dataset.n_users)
        .filter(|&u| !support[u].is_empty())
        .map(|u| MamoTask {
            profile: dataset.user_attrs[u].clone(),
            support: support[u].iter().map(|&i| (i as usize, 1.0)).collect(),
        })
        .collect();
    let mut mamo = MamoLite::new(dataset.n_items, &profile_cards, MamoConfig::default());
    mamo.fit(&tasks);

    // Evaluate: does the held-out item outscore 20 sampled negatives?
    // Report hit rates bucketed by how much history the user had.
    let buckets = ["1-2", "3-5", "6+"];
    let mut hits = [[0usize; 3]; 2]; // [model][bucket]
    let mut totals = [0usize; 3];
    for u in 0..dataset.n_users {
        let Some(pos) = held_out[u] else { continue };
        let b = match support[u].len() {
            0..=2 => 0,
            3..=5 => 1,
            _ => 2,
        };
        totals[b] += 1;
        let negs = sampler.sample(&mut rng, &user_sets[u], 20);
        let mut items = vec![pos];
        items.extend(&negs);

        let instances: Vec<_> = items
            .iter()
            .map(|&i| dataset.instance_masked(u as u32, i, 0.0, &mask))
            .collect();
        let gml_scores = gml.scorer().scores(&instances);
        if gml_scores[1..].iter().filter(|&&s| s >= gml_scores[0]).count() < 5 {
            hits[0][b] += 1;
        }

        let support_lab: Vec<(usize, f64)> = support[u].iter().map(|&i| (i as usize, 1.0)).collect();
        let item_ids: Vec<usize> = items.iter().map(|&i| i as usize).collect();
        let mamo_scores = mamo.predict(&dataset.user_attrs[u], &support_lab, &item_ids);
        if mamo_scores[1..].iter().filter(|&&s| s >= mamo_scores[0]).count() < 5 {
            hits[1][b] += 1;
        }
    }

    println!("hit@5 of the held-out item against 20 negatives, by user history size:\n");
    println!("{:<12} {:>10} {:>10} {:>8}", "history", "GML-FM", "MAMO-lite", "users");
    for b in 0..3 {
        if totals[b] == 0 {
            continue;
        }
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>8}",
            buckets[b],
            hits[0][b] as f64 / totals[b] as f64,
            hits[1][b] as f64 / totals[b] as f64,
            totals[b]
        );
    }
    println!("\n(random would give hit@5 ~ {:.3})", 5.0 / 21.0);
}
