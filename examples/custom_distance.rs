//! The generalized-distance API (paper Section 3.5): swapping the distance
//! family of GML-FM through the spec-driven engine pipeline, plus the
//! efficient O(k²n) evaluation of the second-order term on dense
//! real-valued inputs (Section 3.3).
//!
//! ```sh
//! cargo run --release --example custom_distance
//! ```

use gml_fm::core::{DenseGmlFm, DenseTransform, Distance, DnnTransform, GmlFmConfig};
use gml_fm::data::{generate, DatasetSpec};
use gml_fm::engine::{Engine, ModelSpec, SplitPlan};
use gml_fm::tensor::init::normal;
use gml_fm::tensor::seeded_rng;
use gml_fm::train::TrainConfig;
use std::time::Instant;

fn main() {
    // --- Part 1: the Minkowski family on a real training run --------------
    // The distance is just a field of the spec: the pipeline, training
    // loop and frozen serving path are identical across the family.
    let dataset = generate(&DatasetSpec::AmazonOffice.config(42).scaled(0.4));

    println!("{:<22} {:>8}", "distance", "RMSE");
    for distance in Distance::ALL {
        let spec = ModelSpec::gml_fm(GmlFmConfig::dnn(16, 1).with_distance(distance));
        let rec = Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::rating(5))
            .spec(spec)
            .train_config(TrainConfig { epochs: 10, ..TrainConfig::default() })
            .fit()
            .expect("rating pipeline");
        let m = rec.evaluate_rating().expect("rating holdout");
        println!("{:<22} {:>8.4}", distance.name(), m.rmse);
    }

    // The scalar Minkowski helper covers the whole family.
    let a = [0.3, -1.0, 0.8];
    let b = [-0.2, 0.5, 0.1];
    println!("\nMinkowski distances between two vectors:");
    for p in [1.0, 2.0, 4.0, 16.0] {
        println!("  p = {p:>4}: {:.4}", Distance::minkowski(&a, &b, p));
    }
    println!("  Chebyshev (p -> inf): {:.4}", Distance::Chebyshev.eval(&a, &b));

    // --- Part 2: the efficient second-order evaluation --------------------
    // For dense real-valued x (the general FM setting), the naive pairwise
    // evaluation is O(k^2 n^2); the paper's simplification (Eq. 10/11) is
    // O(k^2 n). Both are exposed on DenseGmlFm and agree exactly.
    let (n, k) = (1024, 16);
    let mut rng = seeded_rng(1);
    let dense = DenseGmlFm {
        v: normal(&mut rng, n, k, 0.0, 0.3),
        h: normal(&mut rng, 1, k, 0.0, 0.3).into_vec(),
        transform: DenseTransform::Dnn(DnnTransform {
            weights: vec![normal(&mut rng, k, k, 0.0, 0.4)],
            biases: vec![normal(&mut rng, 1, k, 0.0, 0.1)],
        }),
    };
    let x: Vec<f64> = normal(&mut rng, 1, n, 0.0, 1.0).into_vec();

    let t0 = Instant::now();
    let naive = dense.second_order_naive(&x);
    let naive_time = t0.elapsed();
    let t1 = Instant::now();
    let efficient = dense.second_order_efficient(&x);
    let efficient_time = t1.elapsed();
    println!("\nsecond-order term over dense x (n = {n}, k = {k}):");
    println!("  naive     O(k^2 n^2): {naive:.6}  in {naive_time:?}");
    println!("  efficient O(k^2 n)  : {efficient:.6}  in {efficient_time:?}");
    println!(
        "  agreement: |diff| = {:.2e}, speedup {:.0}x",
        (naive - efficient).abs(),
        naive_time.as_secs_f64() / efficient_time.as_secs_f64()
    );
    assert!((naive - efficient).abs() < 1e-8 * naive.abs().max(1.0));
}
