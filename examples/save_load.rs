//! Persistence: train a GML-FM model, save it to JSON, reload it, and
//! verify the reloaded model scores identically — the workflow a serving
//! deployment would use.
//!
//! ```sh
//! cargo run --release --example save_load
//! ```

use gml_fm::core::{GmlFm, GmlFmConfig};
use gml_fm::data::{generate, rating_split, DatasetSpec, FieldMask};
use gml_fm::eval::evaluate_rating;
use gml_fm::serve::Freeze;
use gml_fm::train::{fit_regression, Scorer, TrainConfig};

fn main() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.4));
    let mask = FieldMask::all(&dataset.schema);
    let split = rating_split(&dataset, &mask, 2, 7);

    let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(
        &mut model,
        &split.train,
        Some(&split.val),
        &TrainConfig { epochs: 10, ..TrainConfig::default() },
    );
    let before = evaluate_rating(&model, &split.test);
    println!("trained model: test RMSE {:.4}", before.rmse);

    let path = std::env::temp_dir().join("gmlfm_example_model.json");
    model.save_json(&path).expect("save");
    let bytes = std::fs::metadata(&path).expect("metadata").len();
    println!("saved to {} ({} KiB)", path.display(), bytes / 1024);

    // A deployment would reload and immediately freeze: the frozen model
    //  serves without any autograd machinery.
    let restored = GmlFm::load_json(&path).expect("load");
    let frozen = restored.freeze();
    let after = evaluate_rating(&frozen, &split.test);
    println!("restored + frozen model: test RMSE {:.4}", after.rmse);

    // Bit-identical predictions through the tape path, not just close.
    let probe = &split.test[0];
    assert_eq!(
        model.score_one(probe).to_bits(),
        restored.score_one(probe).to_bits(),
        "round trip must be exact"
    );
    let served = frozen.predict(probe);
    let graph = model.score_one(probe);
    assert!((served - graph).abs() <= 1e-9 * graph.abs().max(1.0), "frozen serving must match");
    println!("round trip verified: graph path bit-identical, frozen path within 1e-9");
    let _ = std::fs::remove_file(path);
}
