//! Persistence: train through the engine, save the versioned artifact,
//! reload it on the "serving side", and verify the restored recommender
//! scores bit-identically — the deployment workflow. Works for every
//! freezable spec (GML-FM, FM, TransFM), not just GML-FM.
//!
//! ```sh
//! cargo run --release --example save_load
//! ```

use gml_fm::data::{generate, DatasetSpec};
use gml_fm::engine::{Engine, ModelSpec, SplitPlan};
use gml_fm::models::fm::FmConfig;
use gml_fm::models::transfm::TransFmConfig;
use gml_fm::train::TrainConfig;

fn main() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.4));

    // Every spec with a frozen serving form persists through the same
    // artifact format — persistence is no longer a GML-FM-only feature.
    let specs = [
        ModelSpec::gml_fm_dnn(16, 1),
        ModelSpec::fm(FmConfig { epochs: 20, ..FmConfig::default() }),
        ModelSpec::trans_fm(TransFmConfig::default()),
    ];

    for spec in specs {
        let name = spec.display_name();
        let rec = Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::rating(7))
            .spec(spec)
            .train_config(TrainConfig { epochs: 10, ..TrainConfig::default() })
            .fit()
            .expect("rating pipeline");
        let before = rec.evaluate_rating().expect("rating holdout");

        let path = std::env::temp_dir().join(format!("gmlfm_example_artifact_{name}.json"));
        rec.save(&path).expect("save");
        let bytes = std::fs::metadata(&path).expect("metadata").len();

        // The serving side: restore without the autograd/training crates
        // ever being touched.
        let served = Engine::load(&path).expect("load");
        let probe = served.score_pair(0, 1).expect("catalog travels with the artifact");
        let original = rec.score_pair(0, 1).expect("catalog");
        assert_eq!(original.to_bits(), probe.to_bits(), "{name}: round trip must be bit-exact");
        assert_eq!(
            rec.top_n(0, 10).expect("rank"),
            served.top_n(0, 10).expect("rank"),
            "{name}: rankings must survive the round trip"
        );

        println!(
            "{name:<12} test RMSE {:.4} | artifact {:>5} KiB | reload score {:+.4} (bit-exact)",
            before.rmse,
            bytes / 1024,
            probe
        );
        let _ = std::fs::remove_file(path);
    }
    println!("\nall freezable specs round-trip through the versioned artifact format");
}
