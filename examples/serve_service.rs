//! Online serving walkthrough: the typed request/response protocol over
//! the shared, hot-swappable [`gml_fm::service::ModelServer`] handle.
//!
//! The scenario is a serving process's whole lifecycle:
//!
//! 1. train once, `serve()` the recommender, and share the handle;
//! 2. answer catalog requests — including the production default of
//!    *not* recommending items the user already interacted with;
//! 3. score a **cold-start user the model never saw in training**, by
//!    side features alone (the paper's side-feature design is what makes
//!    this well-defined: an instance is just active one-hot fields, so a
//!    missing user id is simply one fewer field);
//! 4. hot-swap a retrained model mid-traffic — generation bumps, no
//!    request is ever torn between the two models.
//!
//! ```sh
//! cargo run --release --example serve_service
//! ```

use gml_fm::data::{generate, DatasetSpec};
use gml_fm::engine::{BatchRequest, Engine, ModelSpec, Reply, Request, ScoreRequest, SplitPlan, TopNRequest};
use gml_fm::train::TrainConfig;

fn main() {
    // MovieLens-like data: user-side attributes (gender, age bucket,
    // occupation) exist, which is what cold-start requests lean on.
    let dataset = generate(&DatasetSpec::MovieLens.config(42).scaled(0.3));
    let train = |seed: u64| {
        Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::topn(11))
            .spec(ModelSpec::gml_fm(gml_fm::core::GmlFmConfig::dnn(16, 1).with_seed(seed)))
            .train_config(TrainConfig { epochs: 8, ..TrainConfig::default() })
            .fit()
            .expect("pipeline")
    };
    let rec = train(1);
    println!("trained {} on {}", rec.spec().display_name(), dataset.name);

    // The serving handle: Clone + Send + Sync, one per request thread.
    let server = rec.serve().expect("GML-FM freezes");
    println!("serving generation {}", server.generation());

    // -- typed requests ----------------------------------------------------
    let user = 3u32;
    let resp = server.score(&ScoreRequest::pair(user, 5)).expect("user and item in catalog");
    println!("\nscore(user {user}, item 5) = {:.4}   [generation {}]", resp.value, resp.generation);

    // Default top-n excludes the user's training-time items; opting out
    // restores the raw catalogue ranking used by the offline protocols.
    let seen = rec.seen().expect("fit builds seen sets").items(user).len();
    let top = server.top_n(&TopNRequest::new(user, 5)).expect("valid request");
    println!("top-5 for user {user} (excluding their {seen} seen items):");
    for (rank, (item, score)) in top.value.iter().enumerate() {
        println!("  #{:<2} item {:<5} score {score:.4}", rank + 1, item);
    }

    // Malformed requests are typed errors, never panics or garbage.
    let err = server.score(&ScoreRequest::pair(user, 999_999)).unwrap_err();
    println!("\nout-of-catalog request rejected: {err}");

    // -- cold start --------------------------------------------------------
    // A brand-new user: no id in the catalog, only side features. Rank a
    // candidate slate for them with one batch against one snapshot.
    let profile: &[(&str, usize)] = &[("gender", 1), ("age", 3), ("occupation", 7)];
    let slate: Vec<u32> = (0..20).collect();
    let batch = BatchRequest::new(
        slate
            .iter()
            .map(|&item| Request::Score(ScoreRequest::cold(item, profile)))
            .collect(),
    );
    let resp = server.batch(&batch);
    let mut scored: Vec<(u32, f64)> = slate
        .iter()
        .zip(&resp.value)
        .map(|(&item, reply)| match reply.as_ref().expect("valid cold requests") {
            Reply::Score(score) => (item, *score),
            Reply::TopN(_) => unreachable!("batch only carries score requests"),
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ncold-start slate for an unseen user {profile:?} [generation {}]:", resp.generation);
    for (item, score) in scored.iter().take(5) {
        println!("  item {item:<5} score {score:.4}");
    }

    // -- hot swap ----------------------------------------------------------
    // A retrained model ships as an artifact; the serving process decodes
    // it into a snapshot and swaps it in. Readers never block: in-flight
    // requests finish on the old generation, new ones see the new model.
    let retrained = train(2);
    let snapshot = retrained.artifact().expect("freezable").into_snapshot().expect("decodes");
    let generation = server.swap(snapshot).expect("schema-identical retrain");
    let resp = server.score(&ScoreRequest::pair(user, 5)).expect("same catalog");
    println!("\nhot-swapped retrained model: generation {generation}");
    println!("score(user {user}, item 5) = {:.4}   [generation {}]", resp.value, resp.generation);
    assert_eq!(resp.generation, generation);

    // The recommender that handed out the handle serves the new model
    // too — `serve()` shares state, it does not copy it.
    let direct = rec.score_pair(user, 5).expect("catalog");
    assert_eq!(direct.to_bits(), resp.value.to_bits());
    println!("recommender handle agrees with the served response: {direct:.4}");
}
