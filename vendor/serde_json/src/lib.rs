//! Offline stand-in for `serde_json`, backed by the `serde` shim's JSON
//! core. Floats round-trip bit-exactly (the upstream `float_roundtrip`
//! feature is the default and only behaviour here).

pub use serde::json::{parse, Error, Value};

/// Serialises a value to a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Deserialises a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::deserialize_json(&parse(s)?)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Inner {
        rows: usize,
        data: Vec<f64>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Outer {
        /// Doc comments on fields must not confuse the derive shim.
        pub version: u32,
        name: String,
        flag: bool,
        pairs: Vec<(String, Inner)>,
    }

    #[test]
    fn derived_structs_round_trip() {
        let v = Outer {
            version: 1,
            name: "snapshot \"x\"".into(),
            flag: true,
            pairs: vec![
                ("w".into(), Inner { rows: 2, data: vec![0.1, -1.0 / 3.0] }),
                ("v".into(), Inner { rows: 0, data: vec![] }),
            ],
        };
        let json = crate::to_string(&v).unwrap();
        let back: Outer = crate::from_str(&json).unwrap();
        assert_eq!(back, v);
        for (orig, rt) in v.pairs[0].1.data.iter().zip(&back.pairs[0].1.data) {
            assert_eq!(orig.to_bits(), rt.to_bits());
        }
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = crate::from_str::<Inner>("{\"rows\": 1}").unwrap_err();
        assert!(err.to_string().contains("data"), "{err}");
    }
}
