//! Collection strategies: `vec` and `btree_set`.

use crate::Strategy;
use rand::{Rng, StdRng};
use std::collections::BTreeSet;

/// Size specification: an exact length or a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "SizeRange: empty range");
        Self { lo: r.start, hi: r.end }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo + 1 == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy producing `BTreeSet<S::Value>` with a size drawn from `size`.
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // The element domain may be barely larger than `target`; cap the
        // attempts so a tight domain degrades to a smaller set instead of
        // spinning.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 100 + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// `proptest::collection::btree_set(element, size)`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
    BTreeSetStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(vec(0u8..5, 7usize).generate(&mut rng).len(), 7);
        for _ in 0..50 {
            let v = vec(0u8..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_reaches_target_in_wide_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = btree_set(0usize..1000, 2..6).generate(&mut rng);
            assert!((2..6).contains(&s.len()));
        }
    }
}
