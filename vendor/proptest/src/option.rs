//! Option strategies: `proptest::option::of`.

use crate::Strategy;
use rand::{Rng, StdRng};

/// Strategy producing `Option<S::Value>`, `None` about a quarter of the
/// time (upstream's default `Probability` is 0.5 for `Some`; the exact
/// split is unobservable to correct property tests, and a `Some` bias
/// exercises the interesting payloads more).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        if rng.gen::<f64>() < 0.25 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `proptest::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
