//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: range and
//! collection strategies, `prop_map`, tuples of strategies, the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! and `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (override with `PROPTEST_SEED`), and failing inputs
//! are reported but **not shrunk**. Neither difference affects what the
//! workspace's tests assert.

use rand::{Rng, SeedableRng, StdRng};

pub mod collection;
pub mod option;

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is re-drawn.
    Reject,
    /// `prop_assert!`-family failure with its message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Strategy producing one fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a default whole-domain strategy (`proptest::arbitrary`).
pub trait ArbitraryValue {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

// Whole-domain integers come from raw bits, truncated/reinterpreted —
// uniform over the full domain. (`gen_range(MIN..MAX)` would be wrong
// here: the vendored rand's debias math documents a span-below-2^63
// assumption, and a full signed domain overflows its `low + r % span`
// in debug builds.)
macro_rules! impl_arbitrary_bits {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )+};
}

impl_arbitrary_bits!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`: the type's whole-domain strategy.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed strategies — what [`prop_oneof!`]
/// builds. (Upstream supports per-arm weights; the workspace only uses
/// the unweighted form.)
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof!: no arms");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Uniform choice among strategies producing one value type
/// (upstream-compatible unweighted subset).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

/// Drives one `proptest!`-generated test: draws `config.cases` inputs,
/// re-drawing rejected ones (bounded), and panics on the first failure.
pub fn run(config: &ProptestConfig, mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0F_FEEu64);
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(64).max(65_536);
    let mut draw = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(base_seed ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        draw += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(rejected < max_rejects, "proptest: too many prop_assume! rejections ({rejected})");
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case #{passed} (draw {draw}, seed base {base_seed}) failed: {msg}")
            }
        }
    }
}

/// Property-test entry macro (upstream-compatible subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!((<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run(&config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    #[allow(unused_mut)]
                    let mut case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (re-drawn without counting against `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u8..5, 0u8..5), v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic_with_message() {
        run(&ProptestConfig::with_cases(4), |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    fn prop_map_applies_function() {
        let strat = (0u32..5).prop_map(|x| x * 10);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = strat.generate(&mut rng);
            assert!(v % 10 == 0 && v < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn oneof_just_option_and_any_compose(
            pick in prop_oneof![Just(1u32), Just(5u32), 10u32..20],
            opt in option::of(0u32..4),
            flag in any::<bool>(),
            // Whole-domain signed draws must not overflow the vendored
            // rand's debias math (raw-bits impl, not gen_range).
            wide in any::<i64>(),
            narrow in any::<i8>(),
        ) {
            prop_assert!(pick == 1 || pick == 5 || (10..20).contains(&pick));
            prop_assert!(opt.is_none() || opt.unwrap() < 4);
            // Any drawn value is valid; the draws themselves are the test.
            let _ = (flag, wide, narrow);
        }
    }
}
