//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits for
//! plain structs with named fields — the only shape the workspace
//! serialises. Implemented directly on `proc_macro::TokenStream` (no
//! `syn`/`quote`, which are unavailable offline): the generated code only
//! needs the struct name and field names; field types are recovered by
//! inference from the struct literal the impl constructs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_struct(input);
    let mut body = String::from("out.push('{');");
    for (i, field) in item.fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{field}\\\":\"); ::serde::Serialize::serialize_json(&self.{field}, out);"
        ));
    }
    body.push_str("out.push('}');");
    format!(
        "impl ::serde::Serialize for {} {{ \
             fn serialize_json(&self, out: &mut ::std::string::String) {{ {body} }} \
         }}",
        item.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_struct(input);
    let mut fields = String::new();
    for field in &item.fields {
        fields.push_str(&format!("{field}: ::serde::json::field(v, \"{field}\")?,"));
    }
    format!(
        "impl ::serde::Deserialize for {} {{ \
             fn deserialize_json(v: &::serde::json::Value) \
                 -> ::std::result::Result<Self, ::serde::json::Error> {{ \
                 ::std::result::Result::Ok(Self {{ {fields} }}) \
             }} \
         }}",
        item.name
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

struct StructItem {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its field names from the derive input.
fn parse_struct(input: TokenStream) -> StructItem {
    let mut tokens = input.into_iter().peekable();
    // Header: attributes, visibility, `struct`, name.
    let mut name = None;
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows `#`.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip optional `pub(...)` restriction.
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde_derive shim: expected struct name, found {other:?}"),
                }
                break;
            }
            other => panic!(
                "serde_derive shim: unsupported item token {other:?} (only plain structs are supported)"
            ),
        }
    }
    let name = name.expect("serde_derive shim: no struct found");
    // Body: the brace-delimited field list (generics are not supported).
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim: generic structs are not supported")
            }
            Some(_) => continue,
            None => panic!("serde_derive shim: struct '{name}' has no braced field list (tuple/unit structs unsupported)"),
        }
    };
    StructItem { name, fields: field_names(body) }
}

/// Walks a struct body and collects field names: for each top-level
/// `name: Type` entry, the identifier immediately before the first `:` at
/// angle-bracket depth 0 after a field boundary.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    let mut angle_depth = 0i32;
    let mut expecting_name = true;
    while let Some(tok) = tokens.next() {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '#' => {
                    tokens.next(); // attribute group (doc comments etc.)
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => expecting_name = true,
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name && angle_depth == 0 => {
                let text = id.to_string();
                if text == "pub" {
                    // Skip optional `pub(...)`.
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                } else if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                    fields.push(text);
                    expecting_name = false;
                }
            }
            _ => {}
        }
    }
    fields
}
