//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — benchmark
//! groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! wall-clock runner: warm up, then measure for the configured
//! measurement time, and print the mean time per iteration. No
//! statistical analysis, baselines, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 100,
            default_warm_up: Duration::from_millis(500),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Conversion of `&str` / `String` / `BenchmarkId` into a benchmark id.
pub trait IntoBenchmarkId {
    /// The display label of the benchmark.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = id.into_label();
        let mut bencher =
            Bencher { warm_up: self.warm_up, measurement: self.measurement, mean_ns: 0.0, iters: 0 };
        f(&mut bencher);
        self.report(&label, &bencher);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher =
            Bencher { warm_up: self.warm_up, measurement: self.measurement, mean_ns: 0.0, iters: 0 };
        f(&mut bencher, input);
        self.report(&label, &bencher);
        self
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        let full = if self.name.is_empty() { label.to_string() } else { format!("{}/{label}", self.name) };
        let mut line = format!("{full:<56} time: {:>12}  ({} iters)", fmt_ns(bencher.mean_ns), bencher.iters);
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if bencher.mean_ns > 0.0 {
                let per_sec = count as f64 / (bencher.mean_ns * 1e-9);
                line.push_str(&format!("  thrpt: {per_sec:.3e} {unit}/s"));
            }
        }
        println!("{line}");
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, storing the mean wall-clock time per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: at least one call, then until the warm-up budget is spent.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        // Measurement: run until the budget is spent (at least 10 calls).
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if (iters >= 10 && start.elapsed() >= self.measurement) || iters >= 100_000_000 {
                break;
            }
        }
        let total = start.elapsed();
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
        self.iters = iters;
    }
}

/// Re-export of `std::hint::black_box` (upstream exports its own).
pub use std::hint::black_box;

/// Declares a group-runner function over the given bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
