//! JSON value, parser and string escaping shared by the `serde` /
//! `serde_json` shims.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as the correctly-rounded `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member lookup on an object.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// JSON encode/decode error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up and deserialises an object member (used by derived
/// `Deserialize` impls).
pub fn field<T: crate::Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let member = v
        .get(name)
        .ok_or_else(|| Error::new(format!("missing field '{name}' in {}", v.kind())))?;
    T::deserialize_json(member).map_err(|e| Error::new(format!("field '{name}': {e}")))
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => {
                Err(Error::new(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)))
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error::new("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number '{text}' at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("non-utf8 string content"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#" {"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert!(v.get("b").unwrap().get("d").unwrap().is_null());
        assert_eq!(v.get("e").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn escaping_round_trips() {
        let s = "quote\" slash\\ nl\n tab\t ctrl\u{0001} uni\u{263A}";
        let mut out = String::new();
        write_escaped(s, &mut out);
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }
}
