//! Offline stand-in for the `serde` crate.
//!
//! The registry is unreachable in this build environment, so this
//! vendored crate provides the subset the workspace uses: a JSON-backed
//! [`Serialize`] / [`Deserialize`] trait pair, `#[derive(Serialize,
//! Deserialize)]` for plain named-field structs (via the sibling
//! `serde_derive` shim), and the [`json`] module the `serde_json` shim
//! re-exports.
//!
//! Unlike upstream serde there is no data-model abstraction: the traits
//! serialise straight to JSON text and deserialise from a parsed
//! [`json::Value`]. Floats round-trip bit-exactly (shortest-decimal
//! printing + correctly-rounded parsing), which is the property the
//! persistence tests pin.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Serialisation into JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Deserialisation from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error>;
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_f64().ok_or_else(|| json::Error::new(format!(
                    "expected number, found {}", v.kind()
                )))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(json::Error::new(format!(
                        "number {n} does not fit {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's Display prints the shortest decimal that parses back
            // to the same bits, so the round trip is exact.
            out.push_str(&self.to_string());
        } else {
            // JSON has no Inf/NaN; encode as null like serde_json does.
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        if v.is_null() {
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| json::Error::new(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out);
    }
}

impl Deserialize for f32 {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        f64::deserialize_json(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool()
            .ok_or_else(|| json::Error::new(format!("expected bool, found {}", v.kind())))
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::Error::new(format!("expected string, found {}", v.kind())))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| json::Error::new(format!("expected array, found {}", v.kind())))?;
        arr.iter().map(T::deserialize_json).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize_json(v).map(Some)
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(v: &json::Value) -> Result<Self, json::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| json::Error::new(format!("expected 2-tuple array, found {}", v.kind())))?;
        if arr.len() != 2 {
            return Err(json::Error::new(format!("expected 2 elements, found {}", arr.len())));
        }
        Ok((A::deserialize_json(&arr[0])?, B::deserialize_json(&arr[1])?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize>(v: &T) -> T {
        let mut s = String::new();
        v.serialize_json(&mut s);
        T::deserialize_json(&json::parse(&s).unwrap()).unwrap()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip(&42u32), 42);
        assert_eq!(round_trip(&usize::MAX), usize::MAX);
        assert_eq!(round_trip(&-7i64), -7);
        assert!(round_trip(&true));
        assert_eq!(round_trip(&"héllo \"json\"\n".to_string()), "héllo \"json\"\n");
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &bits in
            &[0x3FF0_0000_0000_0001u64, 0x0010_0000_0000_0000, 0x7FEF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0000]
        {
            let x = f64::from_bits(bits);
            assert_eq!(round_trip(&x).to_bits(), bits, "{x}");
        }
        assert_eq!(round_trip(&0.1f64).to_bits(), 0.1f64.to_bits());
    }

    #[test]
    fn composites_round_trip() {
        let v = vec![(String::from("a"), vec![1.5f64, -2.25]), (String::from("b"), vec![])];
        assert_eq!(round_trip(&v), v);
        assert_eq!(round_trip(&Some(3u32)), Some(3));
        assert_eq!(round_trip(&None::<u32>), None);
    }
}
