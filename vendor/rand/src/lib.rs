//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the exact API subset the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`] — backed by
//! xoshiro256++ seeded through SplitMix64.
//!
//! Streams are NOT bit-compatible with upstream `rand 0.8`; every
//! consumer in this workspace only relies on determinism-per-seed and
//! reasonable statistical quality, both of which hold here.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable by [`Rng::gen`] — the `Standard` distribution subset.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as the element of a [`Rng::gen_range`] range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Debiased multiply-shift (Lemire); span is always far below
                // 2^63 in this workspace so the rejection loop is near-free.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let r = rng.next_u64();
                    if r <= zone {
                        return low + (r % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        let v = low + unit * (high - low);
        // Guard against round-up to the exclusive bound.
        if v < high {
            v
        } else {
            low
        }
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_in(rng, low as f64, high as f64) as f32
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// One draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_in(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
