//! Saving and loading trained GML-FM models.
//!
//! A snapshot records the model configuration plus every parameter matrix
//! in registration order. Loading re-runs [`GmlFm::new`] with the stored
//! configuration (which recreates the identical parameter layout) and
//! then overwrites the freshly initialised values — so a loaded model is
//! bit-identical to the saved one, and layout mismatches are detected
//! rather than silently mis-assigned.

use crate::distance::Distance;
use crate::model::{GmlFm, GmlFmConfig, TransformKind};
use gmlfm_tensor::Matrix;
use gmlfm_train::GraphModel;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors from snapshot loading.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The snapshot's parameters do not match the configuration's layout.
    LayoutMismatch(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            PersistError::Json(e) => write!(f, "snapshot parse error: {e}"),
            PersistError::LayoutMismatch(msg) => write!(f, "snapshot layout mismatch: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

#[derive(Serialize, Deserialize)]
struct MatrixRepr {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

#[derive(Serialize, Deserialize)]
struct ConfigRepr {
    k: usize,
    transform: String,
    dnn_layers: usize,
    distance: String,
    use_weight: bool,
    dropout: f64,
    init_std: f64,
    seed: u64,
}

/// A serialisable snapshot of a (possibly trained) GML-FM model.
#[derive(Serialize, Deserialize)]
pub struct GmlFmSnapshot {
    /// Snapshot format version, for forward compatibility.
    pub version: u32,
    n_features: usize,
    config: ConfigRepr,
    params: Vec<(String, MatrixRepr)>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

fn encode_config(cfg: &GmlFmConfig) -> ConfigRepr {
    let (transform, dnn_layers) = match cfg.transform {
        TransformKind::Identity => ("identity".to_string(), 0),
        TransformKind::Mahalanobis => ("mahalanobis".to_string(), 0),
        TransformKind::Dnn(l) => ("dnn".to_string(), l),
    };
    ConfigRepr {
        k: cfg.k,
        transform,
        dnn_layers,
        distance: cfg.distance.name().to_string(),
        use_weight: cfg.use_weight,
        dropout: cfg.dropout,
        init_std: cfg.init_std,
        seed: cfg.seed,
    }
}

fn decode_config(repr: &ConfigRepr) -> Result<GmlFmConfig, PersistError> {
    let transform = match repr.transform.as_str() {
        "identity" => TransformKind::Identity,
        "mahalanobis" => TransformKind::Mahalanobis,
        "dnn" => TransformKind::Dnn(repr.dnn_layers),
        other => return Err(PersistError::LayoutMismatch(format!("unknown transform '{other}'"))),
    };
    let distance = match repr.distance.as_str() {
        "Euclidean" => Distance::SquaredEuclidean,
        "Manhattan" => Distance::Manhattan,
        "Chebyshev" => Distance::Chebyshev,
        "Cosine" => Distance::Cosine,
        other => return Err(PersistError::LayoutMismatch(format!("unknown distance '{other}'"))),
    };
    Ok(GmlFmConfig {
        k: repr.k,
        transform,
        distance,
        use_weight: repr.use_weight,
        dropout: repr.dropout,
        init_std: repr.init_std,
        seed: repr.seed,
    })
}

impl GmlFm {
    /// Captures the model (configuration + all parameters) into a
    /// serialisable snapshot.
    pub fn snapshot(&self) -> GmlFmSnapshot {
        let params = self
            .params()
            .iter()
            .map(|(id, m)| {
                (
                    self.params().name(id).to_string(),
                    MatrixRepr { rows: m.rows(), cols: m.cols(), data: m.as_slice().to_vec() },
                )
            })
            .collect();
        GmlFmSnapshot {
            version: SNAPSHOT_VERSION,
            n_features: self.n_features(),
            config: encode_config(self.config()),
            params,
        }
    }

    /// Reconstructs a model from a snapshot. The parameter layout is
    /// validated entry by entry.
    pub fn from_snapshot(snapshot: &GmlFmSnapshot) -> Result<Self, PersistError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(PersistError::LayoutMismatch(format!(
                "snapshot version {} (supported: {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        let cfg = decode_config(&snapshot.config)?;
        let mut model = GmlFm::new(snapshot.n_features, &cfg);
        let expected = model.params().len();
        if snapshot.params.len() != expected {
            return Err(PersistError::LayoutMismatch(format!(
                "{} stored parameters but the configuration defines {expected}",
                snapshot.params.len()
            )));
        }
        let ids: Vec<_> = model.params().iter().map(|(id, _)| id).collect();
        for (id, (name, repr)) in ids.into_iter().zip(&snapshot.params) {
            let current = model.params().get(id);
            if model.params().name(id) != name
                || current.rows() != repr.rows
                || current.cols() != repr.cols
                || repr.data.len() != repr.rows * repr.cols
            {
                return Err(PersistError::LayoutMismatch(format!(
                    "parameter '{name}' ({}x{}) does not fit slot '{}' ({}x{})",
                    repr.rows,
                    repr.cols,
                    model.params().name(id),
                    current.rows(),
                    current.cols()
                )));
            }
            *model.params_mut().get_mut(id) = Matrix::from_vec(repr.rows, repr.cols, repr.data.clone());
        }
        Ok(model)
    }

    /// Saves the model as JSON.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let json = serde_json::to_string(&self.snapshot())?;
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model saved by [`GmlFm::save_json`].
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let json = fs::read_to_string(path)?;
        let snapshot: GmlFmSnapshot = serde_json::from_str(&json)?;
        Self::from_snapshot(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::Instance;
    use gmlfm_train::Scorer;

    fn trained_like_model() -> GmlFm {
        let mut model = GmlFm::new(30, &GmlFmConfig::dnn(8, 2).with_seed(5));
        // Perturb parameters so the snapshot is not just the init.
        let ids: Vec<_> = model.params().iter().map(|(id, _)| id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            model.params_mut().get_mut(id).map_inplace(|x| x + 0.01 * (i as f64 + 1.0));
        }
        model
    }

    #[test]
    fn snapshot_round_trip_preserves_predictions() {
        let model = trained_like_model();
        let restored = GmlFm::from_snapshot(&model.snapshot()).expect("round trip");
        let inst = Instance::new(vec![2, 11, 27], 1.0);
        assert_eq!(
            model.score_one(&inst).to_bits(),
            restored.score_one(&inst).to_bits(),
            "loaded model must be bit-identical"
        );
    }

    #[test]
    fn json_round_trip_on_disk() {
        let model = trained_like_model();
        let dir = std::env::temp_dir().join("gmlfm_persist_test");
        let path = dir.join("model.json");
        model.save_json(&path).expect("save");
        let restored = GmlFm::load_json(&path).expect("load");
        let inst = Instance::new(vec![0, 15, 29], 1.0);
        assert_eq!(model.score_one(&inst).to_bits(), restored.score_one(&inst).to_bits());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn every_config_variant_round_trips() {
        let variants = [
            GmlFmConfig::euclidean_plain(4),
            GmlFmConfig::mahalanobis(4),
            GmlFmConfig::dnn(4, 0),
            GmlFmConfig::dnn(4, 3),
            GmlFmConfig::dnn(4, 1).with_distance(Distance::Manhattan),
            GmlFmConfig::dnn(4, 1).with_distance(Distance::Chebyshev),
            GmlFmConfig::dnn(4, 1).with_distance(Distance::Cosine),
            GmlFmConfig::mahalanobis(4).without_weight(),
        ];
        for cfg in variants {
            let model = GmlFm::new(12, &cfg);
            let restored = GmlFm::from_snapshot(&model.snapshot()).expect("round trip");
            let inst = Instance::new(vec![1, 7], 1.0);
            assert_eq!(model.score_one(&inst).to_bits(), restored.score_one(&inst).to_bits());
        }
    }

    #[test]
    fn trained_model_round_trips_bit_exactly_through_json() {
        // Regression test: serde_json's default float parser loses the
        // last ULP (fixed via the `float_roundtrip` feature), which only
        // shows up on genuinely trained weights.
        use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
        use gmlfm_train::{fit_regression, TrainConfig};
        let dataset = generate(&DatasetSpec::AmazonAuto.config(3).scaled(0.15));
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, 4);
        let mut model = GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::dnn(8, 1));
        fit_regression(&mut model, &split.train, None, &TrainConfig { epochs: 2, ..TrainConfig::default() });

        let json = serde_json::to_string(&model.snapshot()).unwrap();
        let snap: GmlFmSnapshot = serde_json::from_str(&json).unwrap();
        let restored = GmlFm::from_snapshot(&snap).unwrap();
        for ((id, a), (_, b)) in model.params().iter().zip(restored.params().iter()) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "parameter '{}' drifted through JSON",
                    model.params().name(id)
                );
            }
        }
    }

    #[test]
    fn corrupted_layout_is_rejected() {
        let model = trained_like_model();
        let mut snap = model.snapshot();
        snap.params.pop();
        assert!(matches!(GmlFm::from_snapshot(&snap), Err(PersistError::LayoutMismatch(_))));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let model = trained_like_model();
        let mut snap = model.snapshot();
        snap.version = 99;
        assert!(matches!(GmlFm::from_snapshot(&snap), Err(PersistError::LayoutMismatch(_))));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = GmlFm::load_json("/nonexistent/path/model.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
