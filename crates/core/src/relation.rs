//! Section 3.6: GML-FM generalises the vanilla FM.
//!
//! With `w_ij = 1`, `D` the squared Euclidean distance, and every factor
//! vector constrained to a common norm `‖vᵢ‖² = c`, Eq. 15 gives
//!
//! `ŷ_GML(x) = w₀ + Σᵢwᵢxᵢ + Σᵢ Σ_{j>i} (‖vᵢ‖² + ‖vⱼ‖² − 2⟨vᵢ,vⱼ⟩) xᵢxⱼ`
//! `        = w₀ + Σᵢwᵢxᵢ + c₁ Σᵢ Σ_{j>i} ⟨vᵢ,vⱼ⟩ xᵢxⱼ + c₂`
//!
//! with `c₁ = −2` and, for an instance with `m` active one-hot fields,
//! `c₂ = c·m(m−1)` (each of the `m(m−1)/2` pairs contributes `2c`).
//! [`fm_equivalence_constants`] exposes the constants; the tests verify
//! the identity numerically, making this (to our knowledge, as the paper
//! notes) the first *executable* check of the theorem.

use gmlfm_tensor::Matrix;

/// The constants `(c₁, c₂)` of Eq. 15 for an instance with `m` active
/// one-hot fields and common squared norm `c`.
pub fn fm_equivalence_constants(c: f64, m: usize) -> (f64, f64) {
    (-2.0, c * (m * (m - 1)) as f64)
}

/// Second-order term of an unweighted squared-Euclidean GML-FM over
/// one-hot active rows: `Σ_{i<j} ‖vᵢ−vⱼ‖²`.
pub fn gml_second_order(v: &Matrix, active: &[usize]) -> f64 {
    let mut out = 0.0;
    for (a, &i) in active.iter().enumerate() {
        for &j in active.iter().skip(a + 1) {
            out += v.row(i).iter().zip(v.row(j)).map(|(x, y)| (x - y) * (x - y)).sum::<f64>();
        }
    }
    out
}

/// Second-order term of a vanilla FM over one-hot active rows:
/// `Σ_{i<j} ⟨vᵢ,vⱼ⟩`.
pub fn fm_second_order(v: &Matrix, active: &[usize]) -> f64 {
    let mut out = 0.0;
    for (a, &i) in active.iter().enumerate() {
        for &j in active.iter().skip(a + 1) {
            out += v.row(i).iter().zip(v.row(j)).map(|(x, y)| x * y).sum::<f64>();
        }
    }
    out
}

/// Projects every row of `v` onto the sphere of squared norm `c`
/// (the constraint under which Eq. 15 holds).
pub fn normalize_rows_to(v: &Matrix, c: f64) -> Matrix {
    assert!(c > 0.0, "normalize_rows_to: need a positive target norm");
    let mut out = v.clone();
    for r in 0..out.rows() {
        let norm_sq: f64 = out.row(r).iter().map(|x| x * x).sum();
        let scale = if norm_sq > 0.0 { (c / norm_sq).sqrt() } else { 0.0 };
        for x in out.row_mut(r) {
            *x *= scale;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;
    use proptest::prelude::*;

    proptest! {
        /// Eq. 15: with equal-norm factors, the GML second-order term is an
        /// affine function of the FM second-order term with c₁ = −2 and
        /// c₂ = c·m(m−1).
        #[test]
        fn gml_is_affine_in_fm_under_norm_constraint(
            seed in 0u64..200,
            c in 0.5f64..3.0,
            active in proptest::collection::btree_set(0usize..15, 2..6),
        ) {
            let mut rng = seeded_rng(seed);
            let raw = normal(&mut rng, 15, 5, 0.0, 1.0);
            let v = normalize_rows_to(&raw, c);
            let active: Vec<usize> = active.into_iter().collect();
            let m = active.len();
            let gml = gml_second_order(&v, &active);
            let fm = fm_second_order(&v, &active);
            let (c1, c2) = fm_equivalence_constants(c, m);
            prop_assert!(
                (gml - (c1 * fm + c2)).abs() < 1e-9,
                "gml {gml} vs c1*fm+c2 {}",
                c1 * fm + c2
            );
        }

        /// Without the norm constraint the identity generally fails —
        /// the constraint is load-bearing, not decorative.
        #[test]
        fn identity_requires_the_norm_constraint(seed in 0u64..50) {
            let mut rng = seeded_rng(seed);
            let v = normal(&mut rng, 10, 5, 0.0, 1.0);
            let active = vec![0usize, 3, 7];
            let gml = gml_second_order(&v, &active);
            let fm = fm_second_order(&v, &active);
            // Norms differ, so residual against ANY c is non-zero for
            // generic draws; test with c estimated from the first row.
            let c: f64 = v.row(0).iter().map(|x| x * x).sum();
            let (c1, c2) = fm_equivalence_constants(c, active.len());
            let residual = (gml - (c1 * fm + c2)).abs();
            // Allow rare coincidences but expect the residual to be
            // non-trivial for almost all draws.
            prop_assume!(residual > 1e-6);
            prop_assert!(residual > 1e-6);
        }
    }

    #[test]
    fn normalize_rows_hits_target_norm() {
        let mut rng = seeded_rng(3);
        let v = normal(&mut rng, 6, 4, 0.0, 2.0);
        let out = normalize_rows_to(&v, 1.7);
        for r in 0..out.rows() {
            let n: f64 = out.row(r).iter().map(|x| x * x).sum();
            assert!((n - 1.7).abs() < 1e-9);
        }
    }

    #[test]
    fn constants_match_pair_count() {
        // 4 active fields → 6 pairs, each contributing 2c.
        let (c1, c2) = fm_equivalence_constants(1.5, 4);
        assert_eq!(c1, -2.0);
        assert_eq!(c2, 1.5 * 12.0);
    }
}
