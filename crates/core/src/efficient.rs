//! The paper's efficient evaluation of the second-order term
//! (Section 3.3, Eq. 9–11 and Appendix A).
//!
//! For a **dense real-valued** input `x ∈ Rⁿ` the second-order term
//!
//! `f(x) = Σᵢ Σ_{j>i} hᵀ(vᵢ⊙vⱼ) · D(vᵢ,vⱼ) · xᵢxⱼ`
//!
//! costs `O(k²n²)` if evaluated pairwise. The paper's algebraic
//! simplification decouples the two sums:
//!
//! * **Mahalanobis** (Eq. 10): with `a = Σⱼ xⱼvⱼ`, `b = Σᵢ xᵢ(vᵢᵀMvᵢ)vᵢ`
//!   and `S = Σᵢ xᵢvᵢvᵢᵀ`,
//!   `f(x) = aᵀ diag(h) b − Σⱼ xⱼ vⱼᵀ diag(h) S M vⱼ` — `O(k²n + k³)`.
//! * **DNN** (Eq. 11): with `v̂ = ψ(v)` precomputed, `b = Σᵢ xᵢ‖v̂ᵢ‖²vᵢ`
//!   and `C = Σᵢ xᵢ vᵢ v̂ᵢᵀ`,
//!   `f(x) = aᵀ diag(h) b − Σⱼ xⱼ vⱼᵀ diag(h) C v̂ⱼ` — `O(k²n)`.
//!
//! Exact equality between the pairwise and simplified forms is pinned by
//! property tests; the `efficiency_scaling` bench shows the linear-vs-
//! quadratic wall-clock separation the paper claims.

use gmlfm_tensor::{linalg::quadratic_form, Matrix};

/// Dense transform for the efficient paths.
#[derive(Debug, Clone)]
pub enum DenseTransform {
    /// `D(vᵢ,vⱼ) = ‖vᵢ−vⱼ‖²` (M = I).
    Identity,
    /// `D(vᵢ,vⱼ) = (vᵢ−vⱼ)ᵀ M (vᵢ−vⱼ)` with `M ⪰ 0`.
    Mahalanobis(Matrix),
    /// `D(vᵢ,vⱼ) = ‖ψ(vᵢ)−ψ(vⱼ)‖²` with a tanh MLP `ψ`.
    Dnn(DnnTransform),
}

/// A tanh MLP `ψ` with square layers, matching paper Eq. 7.
#[derive(Debug, Clone)]
pub struct DnnTransform {
    /// Layer weights (`k×k`).
    pub weights: Vec<Matrix>,
    /// Layer biases (`1×k`).
    pub biases: Vec<Matrix>,
}

impl DnnTransform {
    /// Applies the MLP to every row of `v`.
    pub fn apply_rows(&self, v: &Matrix) -> Matrix {
        let mut x = v.clone();
        for (w, b) in self.weights.iter().zip(&self.biases) {
            let mut h = x.matmul(w);
            for r in 0..h.rows() {
                for (hv, bv) in h.row_mut(r).iter_mut().zip(b.row(0)) {
                    *hv = (*hv + bv).tanh();
                }
            }
            x = h;
        }
        x
    }
}

/// Dense GML-FM second-order evaluator over `n` features with factors
/// `V ∈ R^{n×k}` and transformation-weight vector `h ∈ R^k`.
#[derive(Debug, Clone)]
pub struct DenseGmlFm {
    /// Factor table.
    pub v: Matrix,
    /// Transformation-weight vector (`w_ij = hᵀ(vᵢ⊙vⱼ)`).
    pub h: Vec<f64>,
    /// Distance specification.
    pub transform: DenseTransform,
}

impl DenseGmlFm {
    /// Number of features `n`.
    pub fn n(&self) -> usize {
        self.v.rows()
    }

    /// Embedding size `k`.
    pub fn k(&self) -> usize {
        self.v.cols()
    }

    fn weight(&self, vi: &[f64], vj: &[f64]) -> f64 {
        vi.iter().zip(vj).zip(&self.h).map(|((a, b), h)| a * b * h).sum()
    }

    fn distance(&self, i: usize, j: usize, transformed: &Matrix) -> f64 {
        match &self.transform {
            DenseTransform::Identity | DenseTransform::Dnn(_) => {
                let (a, b) = (transformed.row(i), transformed.row(j));
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
            }
            DenseTransform::Mahalanobis(m) => {
                let (a, b) = (self.v.row(i), self.v.row(j));
                let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
                quadratic_form(m, &diff)
            }
        }
    }

    /// Rows after `ψ` (equal to `V` for Identity/Mahalanobis).
    pub fn transformed_rows(&self) -> Matrix {
        match &self.transform {
            DenseTransform::Dnn(dnn) => dnn.apply_rows(&self.v),
            _ => self.v.clone(),
        }
    }

    /// Naive `O(k²n²)` pairwise evaluation of Eq. 9 over a dense input.
    pub fn second_order_naive(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n(), "second_order_naive: |x| != n");
        let transformed = self.transformed_rows();
        let mut out = 0.0;
        for i in 0..self.n() {
            if x[i] == 0.0 {
                continue;
            }
            for j in i + 1..self.n() {
                if x[j] == 0.0 {
                    continue;
                }
                let w_ij = self.weight(self.v.row(i), self.v.row(j));
                out += w_ij * self.distance(i, j, &transformed) * x[i] * x[j];
            }
        }
        out
    }

    /// The paper's `O(k²n)` simplified evaluation (Eq. 10 / Eq. 11).
    pub fn second_order_efficient(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n(), "second_order_efficient: |x| != n");
        match &self.transform {
            DenseTransform::Mahalanobis(m) => self.efficient_mahalanobis(x, m),
            DenseTransform::Identity => {
                let eye = Matrix::eye(self.k());
                self.efficient_mahalanobis(x, &eye)
            }
            DenseTransform::Dnn(dnn) => {
                let v_hat = dnn.apply_rows(&self.v);
                self.efficient_transformed(x, &v_hat)
            }
        }
    }

    /// Eq. 10: `f = aᵀ diag(h) b − Σⱼ xⱼ vⱼᵀ diag(h) S M vⱼ`.
    // Index loops traverse x, V and the k-vectors in lockstep; iterators
    // would obscure the Eq. 10 correspondence.
    #[allow(clippy::needless_range_loop)]
    fn efficient_mahalanobis(&self, x: &[f64], m: &Matrix) -> f64 {
        let (n, k) = (self.n(), self.k());
        let mut a = vec![0.0; k];
        let mut b = vec![0.0; k];
        let mut s = Matrix::zeros(k, k);
        for i in 0..n {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let vi = self.v.row(i);
            let quad = quadratic_form(m, vi); // vᵢᵀ M vᵢ
            for d in 0..k {
                a[d] += xi * vi[d];
                b[d] += xi * quad * vi[d];
            }
            for r in 0..k {
                let vir = vi[r] * xi;
                if vir == 0.0 {
                    continue;
                }
                for c in 0..k {
                    s[(r, c)] += vir * vi[c];
                }
            }
        }
        // First term: aᵀ diag(h) b.
        let first: f64 = a.iter().zip(&b).zip(&self.h).map(|((av, bv), hv)| av * bv * hv).sum();
        // Precompute T = S M once (O(k³)); second term is Σⱼ xⱼ vⱼᵀ diag(h) T vⱼ.
        let t = s.matmul(m);
        let mut second = 0.0;
        let mut tv = vec![0.0; k];
        for j in 0..n {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let vj = self.v.row(j);
            for (r, slot) in tv.iter_mut().enumerate() {
                let mut acc = 0.0;
                for c in 0..k {
                    acc += t[(r, c)] * vj[c];
                }
                *slot = acc;
            }
            let mut dot = 0.0;
            for d in 0..k {
                dot += vj[d] * self.h[d] * tv[d];
            }
            second += xj * dot;
        }
        first - second
    }

    /// Eq. 11: `f = aᵀ diag(h) b − Σⱼ xⱼ vⱼᵀ diag(h) C v̂ⱼ` with
    /// `b = Σᵢ xᵢ‖v̂ᵢ‖²vᵢ` and `C = Σᵢ xᵢ vᵢ v̂ᵢᵀ`.
    #[allow(clippy::needless_range_loop)]
    fn efficient_transformed(&self, x: &[f64], v_hat: &Matrix) -> f64 {
        let (n, k) = (self.n(), self.k());
        let mut a = vec![0.0; k];
        let mut b = vec![0.0; k];
        let mut c = Matrix::zeros(k, k);
        for i in 0..n {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            let vi = self.v.row(i);
            let vhi = v_hat.row(i);
            let norm_sq: f64 = vhi.iter().map(|z| z * z).sum();
            for d in 0..k {
                a[d] += xi * vi[d];
                b[d] += xi * norm_sq * vi[d];
            }
            for r in 0..k {
                let vir = vi[r] * xi;
                if vir == 0.0 {
                    continue;
                }
                for col in 0..k {
                    c[(r, col)] += vir * vhi[col];
                }
            }
        }
        let first: f64 = a.iter().zip(&b).zip(&self.h).map(|((av, bv), hv)| av * bv * hv).sum();
        let mut second = 0.0;
        let mut cv = vec![0.0; k];
        for j in 0..n {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let vj = self.v.row(j);
            let vhj = v_hat.row(j);
            for (r, slot) in cv.iter_mut().enumerate() {
                let mut acc = 0.0;
                for col in 0..k {
                    acc += c[(r, col)] * vhj[col];
                }
                *slot = acc;
            }
            let mut dot = 0.0;
            for d in 0..k {
                dot += vj[d] * self.h[d] * cv[d];
            }
            second += xj * dot;
        }
        first - second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::seeded_rng;
    use proptest::prelude::*;

    fn random_model(n: usize, k: usize, transform: u8, seed: u64) -> DenseGmlFm {
        let mut rng = seeded_rng(seed);
        let v = normal(&mut rng, n, k, 0.0, 0.7);
        let h: Vec<f64> = normal(&mut rng, 1, k, 0.0, 0.7).into_vec();
        let transform = match transform % 3 {
            0 => DenseTransform::Identity,
            1 => {
                let l = normal(&mut rng, k, k, 0.0, 0.5);
                DenseTransform::Mahalanobis(l.matmul_tn(&l)) // M = LᵀL ⪰ 0
            }
            _ => DenseTransform::Dnn(DnnTransform {
                weights: vec![normal(&mut rng, k, k, 0.0, 0.5), normal(&mut rng, k, k, 0.0, 0.5)],
                biases: vec![normal(&mut rng, 1, k, 0.0, 0.1), normal(&mut rng, 1, k, 0.0, 0.1)],
            }),
        };
        DenseGmlFm { v, h, transform }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn efficient_equals_naive(
            transform in 0u8..3,
            seed in 0u64..1000,
            n in 3usize..12,
        ) {
            let model = random_model(n, 4, transform, seed);
            let mut rng = seeded_rng(seed + 1);
            let x: Vec<f64> = normal(&mut rng, 1, n, 0.0, 1.0).into_vec();
            let naive = model.second_order_naive(&x);
            let efficient = model.second_order_efficient(&x);
            let scale = naive.abs().max(1.0);
            prop_assert!(
                (naive - efficient).abs() / scale < 1e-9,
                "transform {transform}: naive {naive} vs efficient {efficient}"
            );
        }

        #[test]
        fn efficient_equals_naive_on_sparse_inputs(
            transform in 0u8..3,
            seed in 0u64..500,
            active in proptest::collection::btree_set(0usize..20, 2..6),
        ) {
            let model = random_model(20, 4, transform, seed);
            let mut x = vec![0.0; 20];
            for &i in &active {
                x[i] = 1.0;
            }
            let naive = model.second_order_naive(&x);
            let efficient = model.second_order_efficient(&x);
            prop_assert!((naive - efficient).abs() < 1e-9 * naive.abs().max(1.0));
        }
    }

    #[test]
    fn identity_equals_mahalanobis_with_identity_matrix() {
        let model_id = random_model(8, 4, 0, 9);
        let model_m = DenseGmlFm {
            v: model_id.v.clone(),
            h: model_id.h.clone(),
            transform: DenseTransform::Mahalanobis(Matrix::eye(4)),
        };
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = model_id.second_order_efficient(&x);
        let b = model_m.second_order_efficient(&x);
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn zero_input_gives_zero() {
        let model = random_model(10, 4, 1, 3);
        let x = vec![0.0; 10];
        assert_eq!(model.second_order_naive(&x), 0.0);
        assert_eq!(model.second_order_efficient(&x), 0.0);
    }

    #[test]
    fn single_active_feature_gives_zero() {
        // D(v, v) = 0, so one active feature produces no pair term.
        let model = random_model(10, 4, 2, 4);
        let mut x = vec![0.0; 10];
        x[3] = 2.5;
        assert_eq!(model.second_order_naive(&x), 0.0);
        assert!(model.second_order_efficient(&x).abs() < 1e-9);
    }

    #[test]
    fn dnn_transform_rows_match_per_row_application() {
        let model = random_model(6, 4, 2, 5);
        let DenseTransform::Dnn(dnn) = &model.transform else { panic!("dnn expected") };
        let all = dnn.apply_rows(&model.v);
        for r in 0..model.n() {
            let single = dnn.apply_rows(&model.v.row_matrix(r));
            for (a, b) in all.row(r).iter().zip(single.row(0)) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
