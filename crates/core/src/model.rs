//! The GML-FM model (paper Eq. 3) as a trainable [`GraphModel`].

use crate::distance::{Distance, Transform};
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::{field_index_columns, GraphModel};
use rand::rngs::StdRng;

/// Which transform family to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// No transform: plain squared Euclidean (the TransFM world).
    Identity,
    /// Learnable linear transform (GML-FM_md).
    Mahalanobis,
    /// Deep non-linear transform with this many layers (GML-FM_dnn);
    /// 0 layers degrade to [`TransformKind::Identity`].
    Dnn(usize),
}

/// GML-FM hyper-parameters.
#[derive(Debug, Clone)]
pub struct GmlFmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// Embedding transform `ψ` (Section 3.2).
    pub transform: TransformKind,
    /// Distance applied to transformed embeddings (Section 3.5).
    pub distance: Distance,
    /// Whether the transformation weight `w_ij = hᵀ(vᵢ⊙vⱼ)` is used
    /// (Eq. 2; `false` fixes `w_ij = 1` as in the Table 5 ablation).
    pub use_weight: bool,
    /// Dropout between DNN layers.
    pub dropout: f64,
    /// Standard deviation of the factor-table init. The paper states
    /// `N(0, 0.01²)`; with squared distances the pair terms then start at
    /// ~1e-4 and the metric structure trains very slowly, so the default
    /// here is 0.05 (the released PyTorch code similarly relies on larger
    /// framework defaults for the embedding layers).
    pub init_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GmlFmConfig {
    /// GML-FM_md: Mahalanobis distance with the transformation weight.
    pub fn mahalanobis(k: usize) -> Self {
        Self {
            k,
            transform: TransformKind::Mahalanobis,
            distance: Distance::SquaredEuclidean,
            use_weight: true,
            dropout: 0.0,
            init_std: 0.05,
            seed: 53,
        }
    }

    /// GML-FM_dnn: deep non-linear distance with the transformation
    /// weight. The paper finds 1–2 layers optimal (Table 5).
    pub fn dnn(k: usize, layers: usize) -> Self {
        Self {
            k,
            transform: TransformKind::Dnn(layers),
            distance: Distance::SquaredEuclidean,
            use_weight: true,
            dropout: 0.2,
            init_std: 0.05,
            seed: 53,
        }
    }

    /// The Table 5 "w/o weight & M" ablation: plain Euclidean distance,
    /// no transformation weight.
    pub fn euclidean_plain(k: usize) -> Self {
        Self {
            k,
            transform: TransformKind::Identity,
            distance: Distance::SquaredEuclidean,
            use_weight: false,
            dropout: 0.0,
            init_std: 0.05,
            seed: 53,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the factor-table init scale.
    pub fn with_init_std(mut self, init_std: f64) -> Self {
        self.init_std = init_std;
        self
    }

    /// Overrides the distance function (Table 5's distance block).
    pub fn with_distance(mut self, distance: Distance) -> Self {
        self.distance = distance;
        self
    }

    /// Disables the transformation weight (Table 5's weight ablation).
    pub fn without_weight(mut self) -> Self {
        self.use_weight = false;
        self
    }
}

/// Factorization machine with generalized metric learning.
#[derive(Debug, Clone)]
pub struct GmlFm {
    params: ParamSet,
    config: GmlFmConfig,
    n_features: usize,
    k: usize,
    w0: ParamId,
    w: ParamId,
    v: ParamId,
    /// Transformation-weight vector `h` (present iff `use_weight`).
    h: Option<ParamId>,
    transform: Transform,
    distance: Distance,
}

impl GmlFm {
    /// Creates an untrained GML-FM over `n_features` one-hot features.
    pub fn new(n_features: usize, cfg: &GmlFmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let w0 = params.add("w0", Matrix::zeros(1, 1));
        let w = params.add("w", Matrix::zeros(n_features, 1));
        let v = params.add("v", normal(&mut rng, n_features, cfg.k, 0.0, cfg.init_std));
        let h = cfg.use_weight.then(|| params.add("h", normal(&mut rng, cfg.k, 1, 0.0, 0.1)));
        let transform = match cfg.transform {
            TransformKind::Identity | TransformKind::Dnn(0) => Transform::identity(),
            TransformKind::Mahalanobis => Transform::mahalanobis(&mut params, cfg.k),
            TransformKind::Dnn(layers) => Transform::dnn(&mut params, cfg.k, layers, cfg.dropout, &mut rng),
        };
        Self {
            params,
            config: cfg.clone(),
            n_features,
            k: cfg.k,
            w0,
            w,
            v,
            h,
            transform,
            distance: cfg.distance,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &GmlFmConfig {
        &self.config
    }

    /// Number of one-hot features `n`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Embedding size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Borrow of the factor table `V` (t-SNE case study, Figures 5/6).
    pub fn factors(&self) -> &Matrix {
        self.params.get(self.v)
    }

    /// Global bias `w₀` (used by the freeze path in `gmlfm-serve`).
    pub fn bias(&self) -> f64 {
        self.params.get(self.w0)[(0, 0)]
    }

    /// Borrow of the first-order weights `w ∈ R^{n×1}`.
    pub fn linear_weights(&self) -> &Matrix {
        self.params.get(self.w)
    }

    /// Borrow of the transformation-weight vector `h ∈ R^{k×1}` (Eq. 2),
    /// `None` when the model was built `without_weight` (`w_ij = 1`).
    pub fn transform_weight(&self) -> Option<&Matrix> {
        self.h.map(|id| self.params.get(id))
    }

    /// The transform in use (for the dense/efficient evaluation paths).
    pub fn transform(&self) -> &Transform {
        &self.transform
    }

    /// The distance in use.
    pub fn distance(&self) -> Distance {
        self.distance
    }

    /// Scalar reference prediction: evaluates Eq. 3 for one instance with
    /// an explicit pair loop over active fields. This is the ground truth
    /// the batched graph forward is tested against.
    pub fn predict_reference(&self, inst: &Instance) -> f64 {
        let v = self.params.get(self.v);
        let w = self.params.get(self.w);
        let mut out = self.params.get(self.w0)[(0, 0)];
        for &f in &inst.feats {
            out += w[(f as usize, 0)];
        }
        let rows: Vec<&[f64]> = inst.feats.iter().map(|&f| v.row(f as usize)).collect();
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| self.transform.eval(&self.params, r)).collect();
        for i in 0..rows.len() {
            for j in i + 1..rows.len() {
                let d = self.distance.eval(&transformed[i], &transformed[j]);
                let w_ij = match self.h {
                    Some(h_id) => {
                        let h = self.params.get(h_id);
                        rows[i]
                            .iter()
                            .zip(rows[j])
                            .enumerate()
                            .map(|(d_idx, (a, b))| a * b * h[(d_idx, 0)])
                            .sum::<f64>()
                    }
                    None => 1.0,
                };
                out += w_ij * d;
            }
        }
        out
    }
}

impl GraphModel for GmlFm {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let cols = field_index_columns(batch);
        // Linear term w0 + Σ_f w[x_f].
        let w = g.param(params, self.w);
        let mut linear: Option<Var> = None;
        for col in &cols {
            let gathered = g.gather_rows(w, col);
            linear = Some(match linear {
                Some(acc) => g.add(acc, gathered),
                None => gathered,
            });
        }
        let linear = linear.expect("at least one field");
        let w0 = g.param(params, self.w0);
        let linear = g.add_row_broadcast(linear, w0);

        // Field embeddings and their transforms.
        let v = g.param(params, self.v);
        let embeds: Vec<Var> = cols.iter().map(|col| g.gather_rows(v, col)).collect();
        let transformed: Vec<Var> = embeds
            .iter()
            .map(|&e| self.transform.build(g, params, e, training, rng))
            .collect();
        let h = self.h.map(|h_id| g.param(params, h_id));

        // Σ_{i<j} w_ij · D(v̂_i, v̂_j).
        let m = embeds.len();
        let mut acc: Option<Var> = None;
        for i in 0..m {
            for j in i + 1..m {
                let dist = self.distance.build(g, transformed[i], transformed[j]); // B x 1
                let term = match h {
                    Some(h) => {
                        let prod = g.mul(embeds[i], embeds[j]); // B x k
                        let w_ij = g.matmul(prod, h); // B x 1
                        g.mul(w_ij, dist)
                    }
                    None => dist,
                };
                acc = Some(match acc {
                    Some(a) => g.add(a, term),
                    None => term,
                });
            }
        }
        match acc {
            Some(pair) => g.add(linear, pair),
            None => linear, // single-field degenerate case
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};
    use proptest::prelude::*;

    fn variants() -> Vec<(&'static str, GmlFmConfig)> {
        vec![
            ("euclidean_plain", GmlFmConfig::euclidean_plain(6)),
            ("mahalanobis", GmlFmConfig::mahalanobis(6)),
            ("dnn1", GmlFmConfig::dnn(6, 1)),
            ("dnn2", GmlFmConfig::dnn(6, 2)),
            ("manhattan", GmlFmConfig::dnn(6, 1).with_distance(Distance::Manhattan)),
            ("chebyshev", GmlFmConfig::dnn(6, 1).with_distance(Distance::Chebyshev)),
            ("cosine", GmlFmConfig::dnn(6, 1).with_distance(Distance::Cosine)),
            ("md_no_weight", GmlFmConfig::mahalanobis(6).without_weight()),
        ]
    }

    #[test]
    fn graph_forward_matches_scalar_reference_for_all_variants() {
        for (name, cfg) in variants() {
            let model = GmlFm::new(30, &cfg.with_seed(11));
            let a = Instance::new(vec![0, 11, 23], 1.0);
            let b = Instance::new(vec![5, 17, 29], -1.0);
            let batch = [a, b];
            let batch_pred = model.scores(&batch);
            for (inst, got) in batch.iter().zip(&batch_pred) {
                let want = model.predict_reference(inst);
                assert!((got - want).abs() < 1e-9, "{name}: graph {got} vs reference {want}");
            }
        }
    }

    proptest! {
        #[test]
        fn graph_forward_matches_reference_random_instances(
            feats in proptest::collection::vec(0u32..30, 2..5),
            seed in 0u64..20,
        ) {
            // Distinct features per instance (datasets never repeat a field value).
            let mut feats = feats;
            feats.sort_unstable();
            feats.dedup();
            prop_assume!(feats.len() >= 2);
            let model = GmlFm::new(30, &GmlFmConfig::dnn(4, 2).with_seed(seed));
            let inst = Instance::new(feats, 1.0);
            let got = model.score_one(&inst);
            let want = model.predict_reference(&inst);
            prop_assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn identity_without_weight_is_pure_distance_sum() {
        // All second-order contributions are squared distances >= 0 and w
        // starts at zero, so predictions are non-negative.
        let model = GmlFm::new(20, &GmlFmConfig::euclidean_plain(4).with_seed(3));
        let inst = Instance::new(vec![1, 8, 15], 1.0);
        assert!(model.score_one(&inst) >= 0.0);
    }

    #[test]
    fn transformation_weight_extends_range_to_negative_values() {
        // With the weight, second-order terms can be negative: find a seed
        // where at least one prediction is negative at init.
        let mut saw_negative = false;
        for seed in 0..20 {
            let model = GmlFm::new(20, &GmlFmConfig::mahalanobis(4).with_seed(seed));
            let inst = Instance::new(vec![1, 8, 15], 1.0);
            if model.score_one(&inst) < 0.0 {
                saw_negative = true;
                break;
            }
        }
        assert!(saw_negative, "weighted GML-FM should reach negative values");
    }

    #[test]
    fn gmlfm_trains_and_reduces_loss() {
        let d = generate(&DatasetSpec::AmazonAuto.config(121).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 25);
        let mut model = GmlFm::new(d.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
        let cfg = TrainConfig { epochs: 10, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &s.train, Some(&s.val), &cfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.85),
            "losses {:?}",
            report.train_losses
        );
    }

    #[test]
    fn dnn_zero_layers_equals_identity_transform() {
        let a = GmlFm::new(20, &GmlFmConfig::dnn(4, 0).with_seed(7));
        let inst = Instance::new(vec![2, 9, 16], 1.0);
        let b = GmlFm::new(
            20,
            &GmlFmConfig {
                k: 4,
                transform: TransformKind::Identity,
                distance: Distance::SquaredEuclidean,
                use_weight: true,
                dropout: 0.2,
                init_std: 0.05,
                seed: 7,
            },
        );
        assert!((a.score_one(&inst) - b.score_one(&inst)).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_at_init_equals_identity_distance() {
        // L starts as the identity, so at initialisation GML-FM_md and the
        // plain Euclidean variant coincide (given the same seed/weights).
        let md = GmlFm::new(20, &GmlFmConfig::mahalanobis(4).with_seed(5));
        let id = GmlFm::new(
            20,
            &GmlFmConfig {
                k: 4,
                transform: TransformKind::Identity,
                distance: Distance::SquaredEuclidean,
                use_weight: true,
                dropout: 0.0,
                init_std: 0.05,
                seed: 5,
            },
        );
        let inst = Instance::new(vec![0, 7, 13], 1.0);
        assert!((md.score_one(&inst) - id.score_one(&inst)).abs() < 1e-12);
    }
}
