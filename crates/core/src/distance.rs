//! Distance functions and embedding transforms (paper Sections 3.2 and
//! 3.5), as autograd graph builders.

use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_tensor::init::xavier;
use gmlfm_tensor::Matrix;
use rand::rngs::StdRng;

/// Which distance is applied to the transformed embeddings (Section 3.5).
///
/// The paper's headline models use the squared Euclidean distance (its
/// tables label this "Euclidean"); the Minkowski family and cosine are the
/// generalisations of Table 5's "distance functions" block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distance {
    /// `‖v̂ᵢ − v̂ⱼ‖²` — the default in Eq. 4/8.
    SquaredEuclidean,
    /// Minkowski `p = 1`: `Σ|v̂ᵢ − v̂ⱼ|`.
    Manhattan,
    /// Minkowski `p → ∞`: `max |v̂ᵢ − v̂ⱼ|`.
    Chebyshev,
    /// `v̂ᵢᵀv̂ⱼ / (‖v̂ᵢ‖‖v̂ⱼ‖)` — inner-product-fashioned, included to show
    /// it underperforms true metrics (Table 5).
    Cosine,
}

impl Distance {
    /// All variants in Table 5 order.
    pub const ALL: [Distance; 4] =
        [Distance::Manhattan, Distance::SquaredEuclidean, Distance::Chebyshev, Distance::Cosine];

    /// Name used in experiment tables (the paper calls the squared
    /// Euclidean variant "Euclidean").
    pub fn name(&self) -> &'static str {
        match self {
            Distance::SquaredEuclidean => "Euclidean",
            Distance::Manhattan => "Manhattan",
            Distance::Chebyshev => "Chebyshev",
            Distance::Cosine => "Cosine",
        }
    }

    /// Builds the `B×1` distance column between two `B×k` nodes.
    pub fn build(&self, g: &mut Graph, a: Var, b: Var) -> Var {
        match self {
            Distance::SquaredEuclidean => {
                let diff = g.sub(a, b);
                let sq = g.square(diff);
                g.sum_rows(sq)
            }
            Distance::Manhattan => {
                let diff = g.sub(a, b);
                let abs = g.abs(diff);
                g.sum_rows(abs)
            }
            Distance::Chebyshev => {
                let diff = g.sub(a, b);
                let abs = g.abs(diff);
                g.max_rows(abs)
            }
            Distance::Cosine => {
                let prod = g.mul(a, b);
                let dot = g.sum_rows(prod);
                let a2 = g.square(a);
                let na = g.sum_rows(a2);
                let na = g.sqrt(na);
                let b2 = g.square(b);
                let nb = g.sum_rows(b2);
                let nb = g.sqrt(nb);
                let denom = g.mul(na, nb);
                let denom = g.add_scalar(denom, 1e-8);
                g.div(dot, denom)
            }
        }
    }

    /// Scalar reference implementation used by tests and the dense
    /// (non-autograd) evaluation paths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "Distance::eval: dimension mismatch");
        match self {
            Distance::SquaredEuclidean => a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum(),
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Distance::Chebyshev => a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max),
            Distance::Cosine => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
                let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
                dot / (na * nb + 1e-8)
            }
        }
    }

    /// General Minkowski distance `(Σ|Δ|^p)^{1/p}` (Section 3.5); the enum
    /// variants are its `p = 1 / 2 / ∞` special cases (squared Euclidean
    /// being the square of `p = 2`).
    pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
        assert!(p >= 1.0, "Minkowski distance requires p >= 1, got {p}");
        let sum: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs().powf(p)).sum();
        sum.powf(1.0 / p)
    }
}

/// The embedding transform `ψ` applied before the distance (Section 3.2).
#[derive(Debug, Clone)]
pub enum Transform {
    /// `ψ(v) = v`: recovers the plain (squared) Euclidean distance.
    Identity,
    /// `ψ(v) = v L` with learnable `L ∈ R^{k×k}`; the induced metric
    /// matrix `M = LLᵀ` is PSD by construction (paper's proof in 3.2.1).
    Mahalanobis {
        /// Handle of `L`.
        l: ParamId,
    },
    /// `ψ(v) = tanh(W_L(… tanh(W₁ v + b₁)) + b_L)` with dropout between
    /// layers (paper Eq. 7).
    Dnn {
        /// Layer weight handles (`k×k` each).
        weights: Vec<ParamId>,
        /// Layer bias handles (`1×k` each).
        biases: Vec<ParamId>,
        /// Dropout probability between layers.
        dropout: f64,
    },
}

impl Transform {
    /// Registers an identity transform (no parameters).
    pub fn identity() -> Self {
        Transform::Identity
    }

    /// Registers a Mahalanobis transform; `L` starts at the identity so
    /// training begins exactly at the Euclidean special case the paper
    /// generalises (Section 3.2.1).
    pub fn mahalanobis(params: &mut ParamSet, k: usize) -> Self {
        Transform::Mahalanobis { l: params.add("gml.L", Matrix::eye(k)) }
    }

    /// Registers an `n_layers`-deep DNN transform with tanh activations.
    ///
    /// Weights are Xavier-initialised: the paper's global `N(0, 0.01²)`
    /// init collapses a multi-layer tanh stack to near-zero outputs; its
    /// released implementation relies on the framework's default (Xavier)
    /// init for these layers, and we follow that.
    pub fn dnn(params: &mut ParamSet, k: usize, n_layers: usize, dropout: f64, rng: &mut StdRng) -> Self {
        let mut weights = Vec::with_capacity(n_layers);
        let mut biases = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            weights.push(params.add(format!("gml.W{l}"), xavier(rng, k, k)));
            biases.push(params.add(format!("gml.b{l}"), Matrix::zeros(1, k)));
        }
        Transform::Dnn { weights, biases, dropout }
    }

    /// Number of DNN layers (0 for identity/Mahalanobis).
    pub fn depth(&self) -> usize {
        match self {
            Transform::Dnn { weights, .. } => weights.len(),
            _ => 0,
        }
    }

    /// Applies the transform to a `B×k` node.
    pub fn build(&self, g: &mut Graph, params: &ParamSet, v: Var, training: bool, rng: &mut StdRng) -> Var {
        match self {
            Transform::Identity => v,
            Transform::Mahalanobis { l } => {
                let lm = g.param(params, *l);
                g.matmul(v, lm)
            }
            Transform::Dnn { weights, biases, dropout } => {
                let mut x = v;
                for (w_id, b_id) in weights.iter().zip(biases) {
                    let w = g.param(params, *w_id);
                    let b = g.param(params, *b_id);
                    let h = g.matmul(x, w);
                    let h = g.add_row_broadcast(h, b);
                    let h = g.tanh(h);
                    x = if training && *dropout > 0.0 { g.dropout(h, *dropout, rng) } else { h };
                }
                x
            }
        }
    }

    /// Scalar reference: applies the transform to one embedding row using
    /// the current parameter values (no dropout — evaluation semantics).
    pub fn eval(&self, params: &ParamSet, v: &[f64]) -> Vec<f64> {
        match self {
            Transform::Identity => v.to_vec(),
            Transform::Mahalanobis { l } => {
                let lm = params.get(*l);
                let k = lm.cols();
                let mut out = vec![0.0; k];
                for (i, &vi) in v.iter().enumerate() {
                    for c in 0..k {
                        out[c] += vi * lm[(i, c)];
                    }
                }
                out
            }
            Transform::Dnn { weights, biases, .. } => {
                let mut x = v.to_vec();
                for (w_id, b_id) in weights.iter().zip(biases) {
                    let w = params.get(*w_id);
                    let b = params.get(*b_id);
                    let k_out = w.cols();
                    let mut next = vec![0.0; k_out];
                    for (i, &xi) in x.iter().enumerate() {
                        for c in 0..k_out {
                            next[c] += xi * w[(i, c)];
                        }
                    }
                    for (n, bv) in next.iter_mut().zip(b.row(0)) {
                        *n = (*n + bv).tanh();
                    }
                    x = next;
                }
                x
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::seeded_rng;
    use proptest::prelude::*;

    fn vecs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
        let v = proptest::collection::vec(-3.0f64..3.0, 4);
        (v.clone(), v.clone(), v)
    }

    proptest! {
        #[test]
        fn squared_euclidean_axioms((a, b, _c) in vecs()) {
            let d = Distance::SquaredEuclidean;
            prop_assert!(d.eval(&a, &b) >= 0.0);
            prop_assert!(d.eval(&a, &a).abs() < 1e-12);
            prop_assert!((d.eval(&a, &b) - d.eval(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn true_metrics_satisfy_triangle_inequality((a, b, c) in vecs()) {
            // Manhattan, Euclidean (sqrt of squared), Chebyshev are metrics.
            for p in [1.0, 2.0, 5.0] {
                let ab = Distance::minkowski(&a, &b, p);
                let ac = Distance::minkowski(&a, &c, p);
                let cb = Distance::minkowski(&c, &b, p);
                prop_assert!(ab <= ac + cb + 1e-9, "p={p}: {ab} > {ac} + {cb}");
            }
            let ab = Distance::Chebyshev.eval(&a, &b);
            let ac = Distance::Chebyshev.eval(&a, &c);
            let cb = Distance::Chebyshev.eval(&c, &b);
            prop_assert!(ab <= ac + cb + 1e-9);
        }

        #[test]
        fn minkowski_special_cases((a, b, _c) in vecs()) {
            let m1 = Distance::minkowski(&a, &b, 1.0);
            prop_assert!((m1 - Distance::Manhattan.eval(&a, &b)).abs() < 1e-9);
            let m2 = Distance::minkowski(&a, &b, 2.0);
            prop_assert!((m2 * m2 - Distance::SquaredEuclidean.eval(&a, &b)).abs() < 1e-9);
            // p → ∞ approaches Chebyshev from above.
            let m64 = Distance::minkowski(&a, &b, 64.0);
            let cheb = Distance::Chebyshev.eval(&a, &b);
            prop_assert!(m64 >= cheb - 1e-9);
            prop_assert!((m64 - cheb).abs() < 0.2 * cheb.max(0.1), "p=64 {m64} vs cheb {cheb}");
        }

        #[test]
        fn graph_and_scalar_distances_agree((a, b, _c) in vecs()) {
            for dist in Distance::ALL {
                let mut g = Graph::new();
                let av = g.constant(Matrix::row_vector(&a));
                let bv = g.constant(Matrix::row_vector(&b));
                let d = dist.build(&mut g, av, bv);
                let got = g.value(d)[(0, 0)];
                let want = dist.eval(&a, &b);
                prop_assert!((got - want).abs() < 1e-9, "{dist:?}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = [1.0, 2.0, -1.5];
        assert!((Distance::Cosine.eval(&v, &v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mahalanobis_transform_starts_at_identity() {
        let mut params = ParamSet::new();
        let t = Transform::mahalanobis(&mut params, 3);
        let v = [0.5, -1.0, 2.0];
        let out = t.eval(&params, &v);
        assert_eq!(out, v.to_vec());
    }

    #[test]
    fn dnn_transform_graph_and_scalar_agree() {
        let mut rng = seeded_rng(5);
        let mut params = ParamSet::new();
        let t = Transform::dnn(&mut params, 4, 2, 0.3, &mut rng);
        assert_eq!(t.depth(), 2);
        let v = [0.4, -0.2, 1.1, 0.0];
        let scalar = t.eval(&params, &v);
        let mut g = Graph::new();
        let vv = g.constant(Matrix::row_vector(&v));
        let mut drng = seeded_rng(6);
        // Evaluation mode: dropout off.
        let out = t.build(&mut g, &params, vv, false, &mut drng);
        for (got, want) in g.value(out).row(0).iter().zip(&scalar) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn dnn_outputs_are_bounded_by_tanh() {
        let mut rng = seeded_rng(9);
        let mut params = ParamSet::new();
        let t = Transform::dnn(&mut params, 4, 1, 0.0, &mut rng);
        let v = [100.0, -100.0, 50.0, 0.0];
        let out = t.eval(&params, &v);
        assert!(out.iter().all(|x| x.abs() <= 1.0));
    }
}
