//! # gmlfm-core
//!
//! The paper's primary contribution: **Factorization Machines with
//! Generalized Metric Learning** (GML-FM).
//!
//! ## Model (paper Eq. 3)
//!
//! ```text
//! ŷ(x) = w₀ + Σᵢ wᵢxᵢ + Σᵢ Σ_{j>i} w_ij · D(vᵢ, vⱼ) · xᵢxⱼ
//! w_ij = hᵀ (vᵢ ⊙ vⱼ)                       (transformation weight, Eq. 2)
//! ```
//!
//! where `D` is a distance between *transformed* embeddings `v̂ = ψ(v)`:
//!
//! * [`Transform::Identity`] — plain squared Euclidean (TransFM's world,
//!   no intra-attribute correlations);
//! * [`Transform::Mahalanobis`] — `D = (vᵢ−vⱼ)ᵀ LLᵀ (vᵢ−vⱼ)`, positive
//!   semi-definite by construction (paper Eq. 4–6), capturing *linear*
//!   feature correlations → **GML-FM_md**;
//! * [`Transform::Dnn`] — `v̂ = tanh(W_L(…tanh(W₁v + b₁)) + b_L)`
//!   (paper Eq. 7/8), capturing *non-linear* correlations → **GML-FM_dnn**.
//!
//! The distance itself generalises per Section 3.5 ([`Distance`]):
//! squared Euclidean (default), Manhattan (p=1), Chebyshev (p=∞) and
//! cosine.
//!
//! ## Efficient evaluation (paper Section 3.3)
//!
//! [`efficient`] implements both the naive `O(k²n²)` double-loop
//! evaluation of the second-order term for dense real-valued inputs and
//! the paper's simplified `O(k²n)` forms (Eq. 10 for Mahalanobis, Eq. 11
//! for DNN). Property tests pin their exact equality; the
//! `efficiency_scaling` bench reproduces the claimed linear-vs-quadratic
//! scaling.
//!
//! ## Relation to vanilla FMs (paper Section 3.6)
//!
//! With `w_ij = 1`, `D` squared Euclidean, and all embeddings constrained
//! to equal norm, GML-FM reduces to a vanilla FM up to affine constants —
//! verified numerically in [`relation`].

pub mod distance;
pub mod efficient;
pub mod model;
pub mod persist;
pub mod relation;

pub use distance::{Distance, Transform};
pub use efficient::{DenseGmlFm, DenseTransform, DnnTransform};
pub use model::{GmlFm, GmlFmConfig, TransformKind};
pub use persist::{GmlFmSnapshot, PersistError};
