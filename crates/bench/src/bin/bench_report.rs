//! Serial-vs-parallel serving/eval throughput, machine-readable.
//!
//! Measures the three hot paths the `gmlfm-par` subsystem threads
//! through — chunked batch scoring, full-catalogue top-N ranking, and
//! leave-one-out frozen evaluation — at 1, 2 and 4 requested threads,
//! verifies the parallel outputs are bit-identical to serial, and
//! writes `BENCH_parallel.json` at the repository root so the perf
//! trajectory is tracked in-repo. A second section measures the
//! `gmlfm-service` request path — per-request overhead of the typed
//! protocol vs direct `FrozenModel` calls, batch fan-out, and hot-swap
//! latency while reader threads hammer the handle — and writes
//! `BENCH_service.json`.
//!
//! A third section measures **sharded-heap retrieval** against the old
//! full-sort top-N at catalog sizes 10k/100k/1M and `n ∈ {10, 100}`
//! (`BENCH_retrieval.json`): both paths score every candidate, but the
//! heap path selects in `O(C·log n)` with `O(threads·n)` memory where
//! the full sort pays `O(C·log C)` and an `O(C)` score buffer — the
//! separation the paper's Eq. 10/11 decoupled serving makes worth
//! measuring at million-item scale. Override the size list with
//! `GMLFM_BENCH_RETRIEVAL_ITEMS` (comma-separated item counts) for
//! quick smokes.
//!
//! A fourth section measures **IVF-indexed retrieval** against the
//! exact sharded-heap path at 100k/1M items (`BENCH_ann.json`,
//! override sizes with `GMLFM_BENCH_ANN_ITEMS`): index build time,
//! whole-catalogue top-10 throughput through the same
//! [`ScoringBackend`] dispatch that serves requests, and measured
//! recall@10 of the index's default `nprobe` against the exact top-10.
//! Scores the index returns are asserted bitwise-equal to exact
//! scores, so candidate recall is the *only* approximation. The model
//! is the trained shape ([`FrozenModel::synthetic_metric_damped`]):
//! item-id embeddings damped to half scale against the shared
//! attribute structure, because with fully iid random parameters most
//! of every score is per-item noise no candidate index (or
//! recommender) could exploit.
//!
//! Next to the index section sits the **scoring-kernel** section
//! (`BENCH_kernel.json`, sizes via `GMLFM_BENCH_KERNEL_ITEMS`): the
//! pre-kernel scalar accumulation vs the chunked block scan the serving
//! path now uses, plus the low-precision tables — `f32` approximate
//! full scan and `i8` probe + exact `f64` re-rank — as whole-catalogue
//! top-10 requests at 100k/1M items and 1/2/4 threads. Accuracy is
//! measured, not assumed: `f32` max-abs-error against exact scores,
//! recall@10 for every approximate path over a fixed user panel, and
//! every `i8`-path score asserted bitwise the exact ranker's.
//!
//! A fifth section drives the **network transport** end to end: the
//! same `ModelServer` behind a loopback `gmlfm-net` TCP server, hit by
//! 1/2/4 closed-loop client threads through the length-prefixed JSON
//! framing, recording sustained RPS and p50/p99/max latency per thread
//! count (`BENCH_net.json`; run length per thread count via
//! `GMLFM_BENCH_NET_SECS`, default 2 s).
//!
//! A sixth section drives the **online learning loop** end to end: a
//! live `OnlineServing` stack (ingest handle + background warm-start
//! trainer + eval gate) over a FactorizationMachine fixture, recording
//! ingest **freshness lag** (feed call → exclusion verified absent from
//! a ranking request) at p50/p99, serving RPS while retrain rounds are
//! continuously publishing vs a retrain-idle baseline, and the achieved
//! gated swap cadence (`BENCH_online.json`; window length via
//! `GMLFM_BENCH_ONLINE_SECS`, default 2 s).
//!
//! Every synthetic fixture — catalogues, instances, models, splits —
//! derives from one base seed, so runs are reproducible: set
//! `GMLFM_BENCH_SEED` (default 2024) to shift the whole report. The
//! seed is recorded in each JSON it writes.
//!
//! Run with `cargo run --release -p gmlfm-bench --bin bench_report`.
//! Thread counts above the machine's available parallelism still run
//! (blocks queue on the pool) but cannot speed up wall-clock; the
//! report records `available_parallelism` so a 1-core CI box's ~1x
//! numbers are legible as hardware-bound, not regression.

use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::{
    generate, generate_scale, loo_split, DatasetSpec, FieldKind, FieldMask, Instance, LooTestCase,
    ScaleConfig, Schema,
};
use gmlfm_eval::evaluate_topn_frozen_with;
use gmlfm_models::fm::FmConfig;
use gmlfm_models::FactorizationMachine;
use gmlfm_net::{run_closed_loop, ClientConfig, NetRequest, NetServer, ServerConfig as NetServerConfig};
use gmlfm_online::{OnlineConfig, OnlineServing};
use gmlfm_par::Parallelism;
use gmlfm_serve::{
    rank_cmp, scan_top_n_prec, score_chunked_par, sharded_top_n, sharded_top_n_blocks, Freeze, FrozenModel,
    ItemFeatureSource, IvfBuildOptions, IvfIndex, Precision,
};
use gmlfm_service::{
    BatchRequest, Catalog, IndexedModel, Interaction, ModelServer, ModelSnapshot, Request, ScoreRequest,
    ScoringBackend, SeenItems, TopNRequest,
};
use gmlfm_tensor::seeded_rng;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Thread counts the report compares.
const THREADS: [usize; 3] = [1, 2, 4];

/// Times `job` adaptively (≥ 0.2 s per measurement), returning the best
/// ops/second across three measurements.
fn throughput(ops_per_call: usize, mut job: impl FnMut()) -> f64 {
    job(); // warm
    let mut best = 0.0f64;
    for _ in 0..3 {
        let mut calls = 0usize;
        let start = Instant::now();
        while start.elapsed().as_secs_f64() < 0.2 {
            job();
            calls += 1;
        }
        let rate = (calls * ops_per_call) as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// A serving-scale frozen model: weighted squared-Euclidean metric
/// (the GML-FM_md shape) — the shared synthetic fixture.
fn serving_model(n: usize, k: usize, seed: u64) -> FrozenModel {
    FrozenModel::synthetic_metric(n, k, seed)
}

/// Base seed every synthetic fixture in the report derives from.
fn bench_seed() -> u64 {
    std::env::var("GMLFM_BENCH_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(2024)
}

fn json_threads(rates: &[(usize, f64)]) -> String {
    let fields: Vec<String> = rates.iter().map(|(t, r)| format!("\"{t}\": {r:.1}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn speedup(rates: &[(usize, f64)], hi: usize) -> f64 {
    let base = rates.iter().find(|(t, _)| *t == 1).map(|(_, r)| *r).unwrap_or(f64::NAN);
    let top = rates.iter().find(|(t, _)| *t == hi).map(|(_, r)| *r).unwrap_or(f64::NAN);
    top / base
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let seed = bench_seed();
    println!("bench_report: available_parallelism = {cores}, seed = {seed}");

    // -- 1. chunked batch scoring ------------------------------------
    let n_features = 4096;
    let model = serving_model(n_features, 16, seed);
    let mut rng = seeded_rng(seed.wrapping_add(1));
    use rand::Rng;
    let instances: Vec<Instance> = (0..40_000)
        .map(|_| {
            let mut feats: Vec<u32> = (0..4).map(|_| rng.gen_range(0..n_features as u32)).collect();
            feats.sort_unstable();
            feats.dedup();
            Instance::new(feats, 1.0)
        })
        .collect();
    let chunk = NonZeroUsize::new(512).expect("non-zero");
    let serial = score_chunked_par(&model, &instances, chunk, Parallelism::serial());
    let mut batch_rates = Vec::new();
    for t in THREADS {
        let par = Parallelism::threads(t);
        let got = score_chunked_par(&model, &instances, chunk, par);
        assert_eq!(got, serial, "parallel batch scoring diverged at {t} threads");
        let rate = throughput(instances.len(), || {
            std::hint::black_box(score_chunked_par(&model, &instances, chunk, par));
        });
        println!("batch_scoring   threads={t}: {rate:>12.0} instances/s");
        batch_rates.push((t, rate));
    }

    // -- 2. full-catalogue top-N ranking ------------------------------
    // One ranker per worker block of users; 2 000 candidate items each.
    let n_items = 2_000u32;
    let n_users = 64u32;
    let rank_users = |par: Parallelism| -> Vec<f64> {
        gmlfm_par::par_blocks(par, n_users as usize, |range| {
            let mut out = Vec::with_capacity(range.len() * n_items as usize);
            for user in range {
                let template = [user as u32 % 64, 64];
                let mut ranker = model.ranker(&template, &[1]);
                for item in 0..n_items {
                    out.push(ranker.score(&[64 + item % 3000]));
                }
            }
            out
        })
    };
    let serial_rank = rank_users(Parallelism::serial());
    let mut topn_rates = Vec::new();
    for t in THREADS {
        let par = Parallelism::threads(t);
        assert_eq!(rank_users(par), serial_rank, "parallel top-N diverged at {t} threads");
        let rate = throughput((n_users * n_items) as usize, || {
            std::hint::black_box(rank_users(par));
        });
        println!("topn_ranking    threads={t}: {rate:>12.0} candidates/s");
        topn_rates.push((t, rate));
    }

    // -- 3. leave-one-out frozen evaluation ---------------------------
    let dataset = generate(&DatasetSpec::AmazonAuto.config(seed.wrapping_add(2)).scaled(0.3));
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, 50, seed.wrapping_add(3));
    let gml =
        GmlFm::new(dataset.schema.total_dim(), &GmlFmConfig::mahalanobis(16).with_seed(seed.wrapping_add(4)));
    let frozen = gml.freeze();
    let serial_eval =
        evaluate_topn_frozen_with(&frozen, &dataset, &mask, &split.test, 10, Parallelism::serial());
    let mut eval_rates = Vec::new();
    for t in THREADS {
        let par = Parallelism::threads(t);
        let got = evaluate_topn_frozen_with(&frozen, &dataset, &mask, &split.test, 10, par);
        assert_eq!(got.per_user_hr, serial_eval.per_user_hr, "parallel eval diverged at {t} threads");
        assert_eq!(got.per_user_ndcg, serial_eval.per_user_ndcg);
        let rate = throughput(split.test.len(), || {
            std::hint::black_box(evaluate_topn_frozen_with(&frozen, &dataset, &mask, &split.test, 10, par));
        });
        println!("eval_topn       threads={t}: {rate:>12.0} test cases/s");
        eval_rates.push((t, rate));
    }

    // -- 4. service request-path overhead -----------------------------
    // The same frozen model behind a ModelServer with a synthetic
    // catalog: 64 users, 4032 items, schema dimension matching the
    // model's 4096 features.
    let schema =
        Schema::from_specs(&[("user", 64, FieldKind::User), ("item", n_features - 64, FieldKind::Item)]);
    let catalog = Catalog::new(
        vec![1],
        (0..64u32).map(|u| vec![u, 64]).collect(),
        (0..(n_features - 64) as u32).map(|i| vec![64 + i]).collect(),
    );
    let make_snapshot = || ModelSnapshot {
        schema: schema.clone(),
        frozen: model.clone(),
        catalog: Some(catalog.clone()),
        seen: None,
        index: None,
    };
    let server = ModelServer::new(make_snapshot()).expect("consistent snapshot");

    // Direct FrozenModel calls vs the validated request path, same feats.
    let probe: Vec<&Instance> = instances.iter().take(10_000).collect();
    let requests: Vec<ScoreRequest> =
        probe.iter().map(|inst| ScoreRequest::Feats(inst.feats.clone())).collect();
    for (req, inst) in requests.iter().zip(&probe) {
        let served = server.score(req).expect("in-range feats").value;
        assert_eq!(served, model.predict_feats(&inst.feats), "request path diverged from direct");
    }
    let direct_rate = throughput(probe.len(), || {
        for inst in &probe {
            std::hint::black_box(model.predict_feats(&inst.feats));
        }
    });
    println!("score_direct    {direct_rate:>12.0} scores/s (FrozenModel::predict_feats)");
    let request_rate = throughput(requests.len(), || {
        for req in &requests {
            std::hint::black_box(server.score(req).expect("in-range feats"));
        }
    });
    let overhead = direct_rate / request_rate;
    println!("score_request   {request_rate:>12.0} scores/s (ModelServer::score, {overhead:.2}x overhead)");
    let batch = BatchRequest::new(requests.iter().cloned().map(Request::Score).collect());
    let batch_rate = throughput(requests.len(), || {
        std::hint::black_box(server.batch(&batch));
    });
    println!("score_batch     {batch_rate:>12.0} scores/s (one BatchRequest across the pool)");
    let topn_req = TopNRequest::new(7, 10);
    let topn_request_rate = throughput(catalog.n_items(), || {
        std::hint::black_box(server.top_n(&topn_req).expect("user in catalog"));
    });
    println!("topn_request    {topn_request_rate:>12.0} candidates/s (ModelServer::top_n)");

    // -- 5. hot-swap latency under load -------------------------------
    // Reader threads hammer the handle while the main thread swaps
    // repeatedly; swap latency is what a deploy pipeline waits on, and
    // the readers prove it never blocks them.
    const SWAPS: usize = 50;
    let mut snapshots: Vec<ModelSnapshot> = (0..SWAPS).map(|_| make_snapshot()).collect();
    let stop = AtomicBool::new(false);
    let (swap_mean_us, swap_max_us, reader_scores) = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for reader in 0..2u32 {
            let server = server.clone();
            let stop = &stop;
            readers.push(s.spawn(move || {
                let mut count = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let resp = server.score(&ScoreRequest::pair(reader, 100)).expect("catalog request");
                    std::hint::black_box(resp.value);
                    count += 1;
                }
                count
            }));
        }
        let mut total_us = 0.0f64;
        let mut max_us = 0.0f64;
        for snap in snapshots.drain(..) {
            let t = Instant::now();
            server.swap(snap).expect("schema-identical swap");
            let us = t.elapsed().as_secs_f64() * 1e6;
            total_us += us;
            max_us = max_us.max(us);
        }
        stop.store(true, Ordering::Relaxed);
        let reader_scores: u64 = readers.into_iter().map(|r| r.join().expect("reader ok")).sum();
        (total_us / SWAPS as f64, max_us, reader_scores)
    });
    assert_eq!(server.generation(), SWAPS as u64 + 1);
    assert!(reader_scores > 0, "readers must make progress during swaps");
    println!(
        "swap_latency    mean {swap_mean_us:>8.1} us, max {swap_max_us:>8.1} us over {SWAPS} swaps \
         ({reader_scores} reader scores served meanwhile)"
    );

    let service_json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \
         \"note\": \"request path asserted value-identical to direct FrozenModel calls; \
         swap latency measured with 2 reader threads hammering the handle\",\n  \
         \"score\": {{\"unit\": \"scores/s\", \"n\": {n_probe}, \"direct\": {direct_rate:.1}, \
         \"request\": {request_rate:.1}, \"batch\": {batch_rate:.1}, \
         \"request_overhead\": {overhead:.3}}},\n  \
         \"topn_request\": {{\"unit\": \"candidates/s\", \"n_items\": {n_items}, \
         \"rate\": {topn_request_rate:.1}}},\n  \
         \"swap\": {{\"swaps\": {SWAPS}, \"mean_us\": {swap_mean_us:.1}, \"max_us\": {swap_max_us:.1}, \
         \"reader_threads\": 2, \"reader_scores_during_swaps\": {reader_scores}}}\n}}\n",
        n_probe = probe.len(),
        n_items = catalog.n_items(),
    );
    let service_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(service_path, &service_json).expect("write BENCH_service.json");
    println!("\nwrote {service_path}:\n{service_json}");

    // -- 6. sharded-heap retrieval vs full-sort top-N ------------------
    // Whole-catalogue ranking requests at 10k / 100k / 1M items: the
    // full-sort path (score all, sort all, truncate — the pre-redesign
    // hot path) against the sharded bounded-heap path now serving
    // `execute_topn`. Both score every candidate with the same rankers;
    // the difference under measurement is selection.
    let retrieval_sizes: Vec<usize> = std::env::var("GMLFM_BENCH_RETRIEVAL_ITEMS")
        .ok()
        .map(|raw| raw.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .filter(|sizes: &Vec<usize>| !sizes.is_empty())
        .unwrap_or_else(|| vec![10_000, 100_000, 1_000_000]);
    let mut retrieval_entries: Vec<String> = Vec::new();
    for &size in &retrieval_sizes {
        let dataset = generate_scale(&ScaleConfig::new(64, size, seed.wrapping_add(5)));
        let mask = FieldMask::all(&dataset.schema);
        let catalog = Catalog::from_dataset(&dataset, &mask);
        // k = 8 keeps the 1M-item embedding tables (~140 MB) laptop-sized.
        let model = serving_model(dataset.schema.total_dim(), 8, seed);
        let candidates: Vec<u32> = (0..size as u32).collect();
        let template = catalog.template(7).expect("bench user in range");
        for n in [10usize, 100] {
            for t in THREADS {
                let par = Parallelism::threads(t);
                let full_sort = || {
                    let scores = model.candidate_scores(&catalog, template, &candidates, par);
                    let mut scored: Vec<(u32, f64)> = candidates.iter().copied().zip(scores).collect();
                    scored.sort_by(rank_cmp);
                    scored.truncate(n);
                    scored
                };
                let sharded_heap = || model.select_top_n(&catalog, template, &candidates, n, par);
                assert_eq!(
                    sharded_heap(),
                    full_sort(),
                    "sharded heap diverged from full sort at {size} items, n={n}, {t} threads"
                );
                let full_rate = throughput(1, || {
                    std::hint::black_box(full_sort());
                });
                let heap_rate = throughput(1, || {
                    std::hint::black_box(sharded_heap());
                });
                let speedup = heap_rate / full_rate;
                println!(
                    "retrieval       items={size:>8} n={n:<4} threads={t}: \
                     full_sort {full_rate:>8.2} req/s, sharded_heap {heap_rate:>8.2} req/s \
                     ({speedup:.2}x)"
                );
                retrieval_entries.push(format!(
                    "{{\"n_items\": {size}, \"n\": {n}, \"threads\": {t}, \
                     \"full_sort_rps\": {full_rate:.3}, \"sharded_heap_rps\": {heap_rate:.3}, \
                     \"heap_speedup\": {speedup:.3}}}"
                ));
            }
        }
    }
    let retrieval_json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \
         \"note\": \"whole-catalogue top-N requests/s, best of 3; both paths score every candidate \
         with identical rankers and are asserted item-for-item equal — the measured difference is \
         O(C log C) full sort + O(C) score buffer vs O(C log n) sharded bounded heaps\",\n  \
         \"entries\": [\n    {}\n  ]\n}}\n",
        retrieval_entries.join(",\n    "),
    );
    let retrieval_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_retrieval.json");
    std::fs::write(retrieval_path, &retrieval_json).expect("write BENCH_retrieval.json");
    println!("\nwrote {retrieval_path}:\n{retrieval_json}");

    // -- 7. IVF index vs exact whole-catalogue top-N -------------------
    // The sublinear path: cluster probing with norm-bound pruning over
    // the packed HatQ linearization, dispatched through the same
    // `ScoringBackend::select_top_n_indexed` the request path uses.
    // Exact is the PR-5 sharded heap over all candidates. Recall@10 is
    // measured (not estimated) against the exact top-10 across a fixed
    // user panel; every score the index returns is asserted bitwise
    // equal to the exact score for that item.
    let ann_sizes: Vec<usize> = std::env::var("GMLFM_BENCH_ANN_ITEMS")
        .ok()
        .map(|raw| raw.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .filter(|sizes: &Vec<usize>| !sizes.is_empty())
        .unwrap_or_else(|| vec![100_000, 1_000_000]);
    let ann_n = 10usize;
    let ann_users: Vec<u32> = (0..32).collect();
    let mut ann_entries: Vec<String> = Vec::new();
    for &size in &ann_sizes {
        let dataset = generate_scale(&ScaleConfig::new(128, size, seed.wrapping_add(6)));
        let mask = FieldMask::all(&dataset.schema);
        let catalog = Catalog::from_dataset(&dataset, &mask);
        let item_field = dataset.schema.field_of_kind(FieldKind::Item).expect("item field");
        let item_off = dataset.schema.offset(item_field);
        // Trained-shape fixture: item-id embeddings at half the scale of
        // the shared attribute embeddings (see module docs).
        let model = FrozenModel::synthetic_metric_damped(
            dataset.schema.total_dim(),
            8,
            seed.wrapping_add(7),
            item_off..item_off + size,
            0.5,
        );
        let t = Instant::now();
        let index = IvfIndex::build(&model, &catalog, &IvfBuildOptions::default(), Parallelism::auto())
            .expect("weighted squared-Euclidean metric model is indexable");
        let build_s = t.elapsed().as_secs_f64();
        let backend = IndexedModel { frozen: &model, index: Some(&index) };
        let candidates: Vec<u32> = (0..size as u32).collect();
        let nprobe = index.default_nprobe();
        println!(
            "ann_index       items={size:>8}: {} clusters, default nprobe {nprobe}, built in {build_s:.2}s",
            index.n_clusters()
        );
        let mut hits = 0usize;
        for &user in &ann_users {
            let template = catalog.template(user).expect("bench user in range");
            let exact = model.select_top_n(&catalog, template, &candidates, ann_n, Parallelism::auto());
            let ivf = backend
                .select_top_n_indexed(
                    &catalog,
                    template,
                    ann_n,
                    None,
                    &[],
                    Precision::F64,
                    Parallelism::auto(),
                )
                .expect("whole-catalogue request above min_candidates is index-eligible");
            for (item, score) in &ivf {
                if let Some((_, exact_score)) = exact.iter().find(|(e, _)| e == item) {
                    assert_eq!(score, exact_score, "indexed score diverged from exact for item {item}");
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / (ann_users.len() * ann_n) as f64;
        let bench_template = catalog.template(7).expect("bench user in range");
        for t in THREADS {
            let par = Parallelism::threads(t);
            let exact_rps = throughput(1, || {
                std::hint::black_box(model.select_top_n(&catalog, bench_template, &candidates, ann_n, par));
            });
            let ivf_rps = throughput(1, || {
                std::hint::black_box(
                    backend
                        .select_top_n_indexed(&catalog, bench_template, ann_n, None, &[], Precision::F64, par)
                        .expect("index-eligible request"),
                );
            });
            let speedup = ivf_rps / exact_rps;
            println!(
                "ann_topn        items={size:>8} n={ann_n:<4} threads={t}: \
                 exact {exact_rps:>8.2} req/s, ivf {ivf_rps:>8.2} req/s \
                 ({speedup:.1}x, recall@10 {recall:.3})"
            );
            ann_entries.push(format!(
                "{{\"n_items\": {size}, \"n\": {ann_n}, \"threads\": {t}, \
                 \"clusters\": {clusters}, \"nprobe\": {nprobe}, \"build_s\": {build_s:.3}, \
                 \"exact_rps\": {exact_rps:.3}, \"ivf_rps\": {ivf_rps:.3}, \
                 \"speedup\": {speedup:.3}, \"recall_at_10\": {recall:.4}}}",
                clusters = index.n_clusters(),
            ));
        }
    }
    let ann_json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \
         \"note\": \"whole-catalogue top-10 requests/s, best of 3, through the serving dispatch \
         (ScoringBackend::select_top_n_indexed) at the index's default nprobe; exact is the sharded \
         bounded-heap scan of all candidates; recall@10 measured against the exact top-10 over {users} \
         users with returned scores asserted bitwise-equal to exact; model is synthetic_metric_damped \
         (item-id embeddings at half scale — the trained shape)\",\n  \
         \"entries\": [\n    {entries}\n  ]\n}}\n",
        users = ann_users.len(),
        entries = ann_entries.join(",\n    "),
    );
    let ann_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ann.json");
    std::fs::write(ann_path, &ann_json).expect("write BENCH_ann.json");
    println!("\nwrote {ann_path}:\n{ann_json}");

    // -- 7b. scoring kernels: scalar vs chunked vs f32 vs i8 -----------
    // The hot-loop restructure measured head to head. Scalar is the
    // pre-kernel per-item accumulation (`score_scalar`); chunked is the
    // block scan serving requests now take (`score_block` through
    // `sharded_top_n_blocks`); f32 and i8 are the low-precision table
    // scans (`scan_top_n_prec`), where i8 probes quantized and re-ranks
    // exactly so its returned scores stay bitwise the model's. The i8
    // IVF probe (quantized scan inside the cluster probe) is measured
    // for recall at the index's default nprobe, with the same bitwise
    // score assertion. Model and catalogue mirror the index section.
    let kernel_sizes: Vec<usize> = std::env::var("GMLFM_BENCH_KERNEL_ITEMS")
        .ok()
        .map(|raw| raw.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .filter(|sizes: &Vec<usize>| !sizes.is_empty())
        .unwrap_or_else(|| vec![100_000, 1_000_000]);
    let kernel_n = 10usize;
    let kernel_users: Vec<u32> = (0..32).collect();
    let mut kernel_entries: Vec<String> = Vec::new();
    for &size in &kernel_sizes {
        let dataset = generate_scale(&ScaleConfig::new(128, size, seed.wrapping_add(9)));
        let mask = FieldMask::all(&dataset.schema);
        let catalog = Catalog::from_dataset(&dataset, &mask);
        let item_field = dataset.schema.field_of_kind(FieldKind::Item).expect("item field");
        let item_off = dataset.schema.offset(item_field);
        // One `with_precision` call builds both the f32 and i8 tables;
        // the same model serves every precision below.
        let model = FrozenModel::synthetic_metric_damped(
            dataset.schema.total_dim(),
            8,
            seed.wrapping_add(10),
            item_off..item_off + size,
            0.5,
        )
        .with_precision(Precision::I8);
        let candidates: Vec<u32> = (0..size as u32).collect();
        let index = IvfIndex::build(&model, &catalog, &IvfBuildOptions::default(), Parallelism::auto())
            .expect("weighted squared-Euclidean metric model is indexable");
        let nprobe = index.default_nprobe();
        // Accuracy panel first: recall@10 against the exact top-10 per
        // user, f32 max-abs-error, and the i8 bitwise-score contract.
        let mut f32_hits = 0usize;
        let mut i8_hits = 0usize;
        let mut ivf_hits = 0usize;
        let mut f32_max_err = 0.0f64;
        for &user in &kernel_users {
            let template = catalog.template(user).expect("bench user in range");
            let exact = model.select_top_n(&catalog, template, &candidates, kernel_n, Parallelism::auto());
            let mut exact_ranker = model.ranker(template, catalog.item_slots());
            let shards = NonZeroUsize::new(4).expect("nonzero");
            let f32_top = scan_top_n_prec(
                &model,
                &catalog,
                &candidates,
                template,
                catalog.item_slots(),
                kernel_n,
                Precision::F32,
                shards,
                Parallelism::auto(),
            )
            .expect("f32 tables built");
            for (item, score) in &f32_top {
                let want = exact_ranker.score(catalog.features_of(*item));
                f32_max_err = f32_max_err.max((score - want).abs());
                if exact.iter().any(|(e, _)| e == item) {
                    f32_hits += 1;
                }
            }
            let i8_top = scan_top_n_prec(
                &model,
                &catalog,
                &candidates,
                template,
                catalog.item_slots(),
                kernel_n,
                Precision::I8,
                shards,
                Parallelism::auto(),
            )
            .expect("i8 tables built");
            for (item, score) in &i8_top {
                let want = exact_ranker.score(catalog.features_of(*item));
                assert_eq!(
                    score.to_bits(),
                    want.to_bits(),
                    "i8 re-rank must return the exact score for item {item}"
                );
                if exact.iter().any(|(e, _)| e == item) {
                    i8_hits += 1;
                }
            }
            let ivf_top = index.search_prec(
                &model,
                &catalog,
                template,
                catalog.item_slots(),
                kernel_n,
                nprobe,
                Parallelism::auto(),
                &|_| false,
                Precision::I8,
            );
            for (item, score) in &ivf_top {
                let want = exact_ranker.score(catalog.features_of(*item));
                assert_eq!(
                    score.to_bits(),
                    want.to_bits(),
                    "i8 IVF probe must return the exact score for item {item}"
                );
                if exact.iter().any(|(e, _)| e == item) {
                    ivf_hits += 1;
                }
            }
        }
        let denom = (kernel_users.len() * kernel_n) as f64;
        let f32_recall = f32_hits as f64 / denom;
        let i8_recall = i8_hits as f64 / denom;
        let ivf_recall = ivf_hits as f64 / denom;
        println!(
            "kernel_accuracy items={size:>8}: f32 recall@10 {f32_recall:.3} (max abs err {f32_max_err:.2e}), \
             i8 full-scan recall@10 {i8_recall:.3}, i8 ivf probe recall@10 {ivf_recall:.3} \
             (all i8 scores bitwise exact)"
        );
        let bench_template = catalog.template(7).expect("bench user in range");
        for t in THREADS {
            let par = Parallelism::threads(t);
            let shards = NonZeroUsize::new(t).expect("nonzero");
            let scalar_rps = throughput(1, || {
                std::hint::black_box(sharded_top_n(
                    &candidates,
                    kernel_n,
                    shards,
                    par,
                    || model.ranker(bench_template, catalog.item_slots()),
                    |ranker, item| ranker.score_scalar(catalog.features_of(item)),
                ));
            });
            let chunked_rps = throughput(1, || {
                std::hint::black_box(sharded_top_n_blocks(
                    &candidates,
                    kernel_n,
                    shards,
                    par,
                    || model.ranker(bench_template, catalog.item_slots()),
                    |ranker, ids, out| ranker.score_block(&catalog, ids, out),
                ));
            });
            let f32_rps = throughput(1, || {
                std::hint::black_box(
                    scan_top_n_prec(
                        &model,
                        &catalog,
                        &candidates,
                        bench_template,
                        catalog.item_slots(),
                        kernel_n,
                        Precision::F32,
                        shards,
                        par,
                    )
                    .expect("f32 tables built"),
                );
            });
            let i8_rps = throughput(1, || {
                std::hint::black_box(
                    scan_top_n_prec(
                        &model,
                        &catalog,
                        &candidates,
                        bench_template,
                        catalog.item_slots(),
                        kernel_n,
                        Precision::I8,
                        shards,
                        par,
                    )
                    .expect("i8 tables built"),
                );
            });
            let chunked_speedup = chunked_rps / scalar_rps;
            println!(
                "kernel_topn     items={size:>8} n={kernel_n:<4} threads={t}: \
                 scalar {scalar_rps:>7.2} req/s, chunked {chunked_rps:>7.2} req/s ({chunked_speedup:.2}x), \
                 f32 {f32_rps:>7.2} req/s, i8 {i8_rps:>7.2} req/s"
            );
            kernel_entries.push(format!(
                "{{\"n_items\": {size}, \"n\": {kernel_n}, \"threads\": {t}, \
                 \"scalar_rps\": {scalar_rps:.3}, \"chunked_rps\": {chunked_rps:.3}, \
                 \"chunked_speedup\": {chunked_speedup:.3}, \
                 \"f32_rps\": {f32_rps:.3}, \"i8_rps\": {i8_rps:.3}, \
                 \"f32_recall_at_10\": {f32_recall:.4}, \"f32_max_abs_err\": {f32_max_err:.3e}, \
                 \"i8_recall_at_10\": {i8_recall:.4}, \"i8_ivf_recall_at_10\": {ivf_recall:.4}, \
                 \"i8_ivf_nprobe\": {nprobe}}}"
            ));
        }
    }
    let kernel_json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \
         \"note\": \"whole-catalogue top-10 requests/s, best of 3; scalar is the per-item serial \
         accumulation, chunked is the block-kernel scan the serving path uses (bitwise-identical \
         results), f32 is the approximate low-precision full scan, i8 probes quantized then re-ranks \
         with the exact f64 ranker; every i8-path score asserted bitwise-equal to the model's, \
         recall@10 and f32 max-abs-error measured against the exact top-10 over {users} users; \
         model is synthetic_metric_damped as in the index section ({env_var} overrides sizes)\",\n  \
         \"entries\": [\n    {entries}\n  ]\n}}\n",
        users = kernel_users.len(),
        env_var = "GMLFM_BENCH_KERNEL_ITEMS",
        entries = kernel_entries.join(",\n    "),
    );
    let kernel_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(kernel_path, &kernel_json).expect("write BENCH_kernel.json");
    println!("\nwrote {kernel_path}:\n{kernel_json}");

    // -- 8. network serving over loopback ------------------------------
    // The whole stack end to end: the same ModelServer behind the
    // gmlfm-net TCP transport, driven by closed-loop clients (one
    // request in flight per thread, so latency is service latency, not
    // generator queueing). The request mix interleaves cheap single
    // scores with one whole-catalogue top-10 per cycle. Run length per
    // thread count is `GMLFM_BENCH_NET_SECS` seconds (default 2; CI
    // smokes set it lower).
    let net_secs: f64 = std::env::var("GMLFM_BENCH_NET_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(2.0);
    let net_server =
        NetServer::bind(std::sync::Arc::new(server.clone()), "127.0.0.1:0", NetServerConfig::default())
            .expect("bind loopback");
    let net_addr = net_server.local_addr();
    let net_mix: Vec<NetRequest> = (0..8u32)
        .map(|u| NetRequest::Score(ScoreRequest::pair(u, 100 + u)))
        .chain(std::iter::once(NetRequest::TopN(TopNRequest::new(7, 10))))
        .collect();
    let net_client_config = ClientConfig::default();
    let mut net_entries: Vec<String> = Vec::new();
    for t in THREADS {
        let stats = run_closed_loop(
            net_addr,
            &net_mix,
            t,
            std::time::Duration::from_secs_f64(net_secs),
            &net_client_config,
        );
        assert_eq!(stats.errors, 0, "loopback load run must not shed or fail requests: {stats:?}");
        println!(
            "net_serving     threads={t}: {rps:>10.1} req/s, p50 {p50:>6} us, p99 {p99:>6} us, \
             max {max:>6} us ({n} requests)",
            rps = stats.rps,
            p50 = stats.p50_us,
            p99 = stats.p99_us,
            max = stats.max_us,
            n = stats.requests,
        );
        net_entries.push(format!(
            "{{\"threads\": {t}, \"requests\": {n}, \"errors\": {errors}, \"rps\": {rps:.1}, \
             \"p50_us\": {p50}, \"p99_us\": {p99}, \"max_us\": {max}}}",
            n = stats.requests,
            errors = stats.errors,
            rps = stats.rps,
            p50 = stats.p50_us,
            p99 = stats.p99_us,
            max = stats.max_us,
        ));
    }
    let net_report = net_server.shutdown();
    assert_eq!(net_report.worker_panics, 0, "no handler thread may die to a panic: {net_report:?}");
    let net_json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \
         \"note\": \"closed-loop loopback TCP load: one in-flight request per client thread over the \
         length-prefixed JSON framing; mix is 8 single scores + 1 whole-catalogue top-10 per cycle; \
         {secs}s per thread count ({env_var} overrides); zero errors asserted\",\n  \
         \"duration_s\": {secs},\n  \"served\": {served},\n  \
         \"entries\": [\n    {entries}\n  ]\n}}\n",
        secs = net_secs,
        env_var = "GMLFM_BENCH_NET_SECS",
        served = net_report.served,
        entries = net_entries.join(",\n    "),
    );
    let net_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    std::fs::write(net_path, &net_json).expect("write BENCH_net.json");
    println!("\nwrote {net_path}:\n{net_json}");

    // -- 9. online loop: ingest freshness + serving through retrains ---
    // A live OnlineServing stack over an FM fixture: 64 users, 1000
    // items, three base interactions per user. One window measures
    // serving RPS with the trainer idle; a second feeds a continuous
    // interaction stream (retrain rounds publishing through the gate
    // the whole time) while measuring the same request mix, per-event
    // freshness lag (feed call returns → the item verified absent from
    // an exclude-seen ranking request), and the achieved swap cadence.
    let online_secs: f64 = std::env::var("GMLFM_BENCH_ONLINE_SECS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(2.0);
    const ON_USERS: usize = 64;
    const ON_ITEMS: usize = 1000;
    let on_schema =
        Schema::from_specs(&[("user", ON_USERS, FieldKind::User), ("item", ON_ITEMS, FieldKind::Item)]);
    let on_catalog = Catalog::new(
        vec![1],
        (0..ON_USERS as u32).map(|u| vec![u, ON_USERS as u32]).collect(),
        (0..ON_ITEMS as u32).map(|i| vec![ON_USERS as u32 + i]).collect(),
    );
    let mut on_base = Vec::new();
    let mut on_seen: Vec<Vec<u32>> = vec![Vec::new(); ON_USERS];
    for (u, seen_row) in on_seen.iter_mut().enumerate() {
        for j in 0..3 {
            let item = ((u * 7 + j * 13) % ON_ITEMS) as u32;
            on_base.push(Instance::new(vec![u as u32, (ON_USERS + item as usize) as u32], 1.0));
            seen_row.push(item);
        }
    }
    let mut on_fm = FactorizationMachine::new(
        ON_USERS + ON_ITEMS,
        FmConfig { k: 8, lr: 0.05, reg: 0.01, epochs: 2, seed: seed.wrapping_add(8) },
    );
    on_fm.fit_hogwild(&on_base, 1);
    let on_server = ModelServer::new(ModelSnapshot {
        schema: on_schema,
        frozen: Freeze::freeze(&on_fm),
        catalog: Some(on_catalog),
        seen: Some(SeenItems::new(on_seen)),
        index: None,
    })
    .expect("consistent snapshot");
    let on_holdout: Vec<LooTestCase> = (0..ON_USERS as u32)
        .map(|u| LooTestCase {
            user: u,
            pos_item: (u * 11 + 101) % ON_ITEMS as u32,
            negatives: (1..21).map(|j| (u * 11 + 101 + j * 37) % ON_ITEMS as u32).collect(),
        })
        .collect();
    let on_serving = OnlineServing::launch(
        on_server.clone(),
        Box::new(on_fm),
        on_base,
        on_holdout,
        OnlineConfig {
            min_events: 64,
            cadence: Duration::from_millis(30),
            poll: Duration::from_millis(2),
            // The bench measures loop mechanics, not model quality: the
            // permissive gate keeps every round publishing so "RPS
            // during retrain" really is during retrains.
            gate_tolerance: 1.0,
            negatives_per_event: 1,
            ..OnlineConfig::default()
        },
    )
    .expect("launch validates");
    let serve_mix = |window: f64| -> f64 {
        let start = Instant::now();
        let mut count = 0u64;
        while start.elapsed().as_secs_f64() < window {
            let user = (count % ON_USERS as u64) as u32;
            on_server.top_n(&TopNRequest::new(user, 10)).expect("ranking serves");
            on_server
                .score(&ScoreRequest::pair(user, (count % ON_ITEMS as u64) as u32))
                .expect("serves");
            count += 2;
        }
        count as f64 / start.elapsed().as_secs_f64()
    };
    let idle_rps = serve_mix((online_secs / 2.0).max(0.25));
    println!("online_idle     {idle_rps:>12.1} req/s (trainer launched, no events pending)");

    let (retrain_rps, freshness_us, feeds) = std::thread::scope(|s| {
        let feeder = {
            let handle = on_serving.handle().clone();
            let server = on_server.clone();
            s.spawn(move || {
                let mut lags_us: Vec<f64> = Vec::new();
                let start = Instant::now();
                let mut step = 0u64;
                while start.elapsed().as_secs_f64() < online_secs {
                    let user = (step % ON_USERS as u64) as u32;
                    let item = ((step * 17 + 5) % ON_ITEMS as u64) as u32;
                    let t = Instant::now();
                    handle.feed(&Interaction::new(user, item).id(step)).expect("feed validates");
                    // Freshness is verified, not assumed: an exclude-seen
                    // ranking request restricted to the fed item must come
                    // back empty.
                    let check = server
                        .top_n(&TopNRequest::new(user, 1).candidates(vec![item]))
                        .expect("ranking serves");
                    assert!(check.value.is_empty(), "fed item still recommendable");
                    lags_us.push(t.elapsed().as_secs_f64() * 1e6);
                    step += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                lags_us
            })
        };
        let rps = serve_mix(online_secs);
        let lags = feeder.join().expect("feeder ok");
        let n = lags.len();
        (rps, lags, n)
    });
    // Clamping nearest-rank percentile (gmlfm_bench::percentile): p99 on
    // a short run degrades to the max instead of indexing out of range.
    let percentile = gmlfm_bench::percentile;
    let mut sorted_lags = freshness_us.clone();
    sorted_lags.sort_by(|a, b| a.total_cmp(b));
    let fresh_p50 = percentile(&sorted_lags, 0.50);
    let fresh_p99 = percentile(&sorted_lags, 0.99);
    let fresh_max = sorted_lags.last().copied().unwrap_or(f64::NAN);
    let status = on_serving.trainer().status();
    let swap_cadence = status.published as f64 / online_secs;
    assert!(status.published >= 1, "the window must see at least one gated publish: {status:?}");
    println!(
        "online_retrain  {retrain_rps:>12.1} req/s during continuous retrains \
         ({:.2}x of idle); {} publishes in {online_secs}s ({swap_cadence:.1} swaps/s)",
        retrain_rps / idle_rps,
        status.published,
    );
    println!(
        "online_fresh    p50 {fresh_p50:>8.1} us, p99 {fresh_p99:>8.1} us, max {fresh_max:>8.1} us \
         feed->exclusion-verified over {feeds} events"
    );
    let final_status = on_serving.shutdown();
    let online_json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \
         \"note\": \"live OnlineServing stack over an FM fixture ({ON_USERS} users x {ON_ITEMS} items): \
         freshness lag is feed() returning plus an exclude-seen ranking request verifying the fed item \
         absent; retrain RPS is the top-n+score mix measured while the background trainer continuously \
         drains, warm-fits and publishes through the gate; gate tolerance is permissive so every round \
         publishes ({env_var} overrides the window)\",\n  \
         \"duration_s\": {online_secs},\n  \
         \"serving\": {{\"unit\": \"req/s\", \"idle\": {idle_rps:.1}, \"during_retrain\": {retrain_rps:.1}, \
         \"retrain_ratio\": {ratio:.3}}},\n  \
         \"freshness\": {{\"unit\": \"us\", \"events\": {feeds}, \"p50\": {fresh_p50:.1}, \
         \"p99\": {fresh_p99:.1}, \"max\": {fresh_max:.1}}},\n  \
         \"loop\": {{\"rounds\": {rounds}, \"published\": {published}, \"rejected\": {rejected}, \
         \"skipped_events\": {skipped}, \"swaps_per_s\": {swap_cadence:.2}, \
         \"pending_at_shutdown\": {pending}}}\n}}\n",
        env_var = "GMLFM_BENCH_ONLINE_SECS",
        ratio = retrain_rps / idle_rps,
        rounds = final_status.rounds,
        published = final_status.published,
        rejected = final_status.rejected,
        skipped = final_status.skipped_events,
        pending = final_status.pending,
    );
    let online_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_online.json");
    std::fs::write(online_path, &online_json).expect("write BENCH_online.json");
    println!("\nwrote {online_path}:\n{online_json}");

    // -- report -------------------------------------------------------
    let json = format!(
        "{{\n  \"available_parallelism\": {cores},\n  \"seed\": {seed},\n  \"gmlfm_threads_env\": {env},\n  \
         \"note\": \"throughput in ops/s, best of 3; parallel outputs asserted bit-identical to serial; \
         speedups are hardware-bound by available_parallelism\",\n  \
         \"batch_scoring\": {{\"unit\": \"instances/s\", \"n\": {n_inst}, \"threads\": {batch}, \"speedup_4v1\": {b4:.2}}},\n  \
         \"topn_ranking\": {{\"unit\": \"candidates/s\", \"n\": {n_cand}, \"threads\": {topn}, \"speedup_4v1\": {t4:.2}}},\n  \
         \"eval_topn_frozen\": {{\"unit\": \"cases/s\", \"n\": {n_cases}, \"threads\": {eval}, \"speedup_4v1\": {e4:.2}}}\n}}\n",
        env = match std::env::var(gmlfm_par::THREADS_ENV) {
            Ok(v) => format!("\"{v}\""),
            Err(_) => "null".to_string(),
        },
        n_inst = instances.len(),
        batch = json_threads(&batch_rates),
        b4 = speedup(&batch_rates, 4),
        n_cand = (n_users * n_items) as usize,
        topn = json_threads(&topn_rates),
        t4 = speedup(&topn_rates, 4),
        n_cases = split.test.len(),
        eval = json_threads(&eval_rates),
        e4 = speedup(&eval_rates, 4),
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(out_path, &json).expect("write BENCH_parallel.json");
    println!("\nwrote {out_path}:\n{json}");
}
