//! Shared fixtures for the Criterion benches: tiny, seeded datasets and
//! pre-built splits so each bench measures model work, not setup.

use gmlfm_data::{generate, loo_split, rating_split, Dataset, DatasetSpec, FieldMask, LooSplit, RatingSplit};

/// Scale used by all benches: big enough to exercise real code paths,
/// small enough that `cargo bench --workspace` stays in minutes.
pub const BENCH_SCALE: f64 = 0.15;

/// A dataset plus both protocol splits, ready for training benches.
pub struct Fixture {
    /// The generated dataset.
    pub dataset: Dataset,
    /// All-fields mask.
    pub mask: FieldMask,
    /// Rating-prediction split.
    pub rating: RatingSplit,
    /// Leave-one-out split (20 candidates to keep eval fast).
    pub loo: LooSplit,
}

/// Builds the standard bench fixture for a dataset spec.
pub fn fixture(spec: DatasetSpec) -> Fixture {
    let dataset = generate(&spec.config(2023).scaled(BENCH_SCALE));
    let mask = FieldMask::all(&dataset.schema);
    let rating = rating_split(&dataset, &mask, 2, 7);
    let loo = loo_split(&dataset, &mask, 2, 20, 8);
    Fixture { dataset, mask, rating, loo }
}

/// Nearest-rank percentile over an ascending-sorted sample, clamped on
/// both ends: `p` outside `[0, 1]` (or NaN) clamps into range, and the
/// computed rank clamps to the last element — so `p99` of a 2-element
/// sample is the maximum, never an out-of-range index, and a 1-element
/// sample answers every percentile with its only value. Empty samples
/// yield `NaN` (the report prints it as such rather than inventing a
/// latency).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    // NaN-safe: clamp on a non-NaN default rather than propagating.
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    let idx = (((sorted.len() - 1) as f64 * p).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_small_but_nonempty() {
        let f = fixture(DatasetSpec::AmazonAuto);
        assert!(!f.rating.train.is_empty());
        assert!(!f.loo.test.is_empty());
        assert!(f.rating.train.len() < 2500, "bench fixture should stay small");
    }

    #[test]
    fn percentile_on_a_single_sample_answers_every_p() {
        let one = [42.0];
        assert_eq!(percentile(&one, 0.0), 42.0);
        assert_eq!(percentile(&one, 0.5), 42.0);
        assert_eq!(percentile(&one, 0.99), 42.0);
        assert_eq!(percentile(&one, 1.0), 42.0);
    }

    #[test]
    fn percentile_on_two_samples_clamps_p99_to_the_max() {
        let two = [1.0, 2.0];
        assert_eq!(percentile(&two, 0.0), 1.0);
        // Nearest-rank on the 0-based index: 0.5 rounds up.
        assert_eq!(percentile(&two, 0.5), 2.0);
        assert_eq!(percentile(&two, 0.99), 2.0, "p99 of n=2 is the max, not an index panic");
        assert_eq!(percentile(&two, 1.0), 2.0);
    }

    #[test]
    fn percentile_on_99_samples_stays_in_range() {
        // n = 99 < 100: the p99 rank (98·0.99 = 97.02 → 97) must stay a
        // valid index and sit strictly above p50.
        let v: Vec<f64> = (1..=99).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.99), 98.0);
        assert_eq!(percentile(&v, 1.0), 99.0);
    }

    #[test]
    fn percentile_clamps_malformed_p_and_handles_empty() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -0.5), 1.0);
        assert_eq!(percentile(&v, 1.5), 3.0, "p > 1 clamps instead of indexing out of range");
        assert_eq!(percentile(&v, f64::NAN), 1.0);
        assert!(percentile(&[], 0.5).is_nan());
    }
}
