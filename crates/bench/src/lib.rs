//! Shared fixtures for the Criterion benches: tiny, seeded datasets and
//! pre-built splits so each bench measures model work, not setup.

use gmlfm_data::{generate, loo_split, rating_split, Dataset, DatasetSpec, FieldMask, LooSplit, RatingSplit};

/// Scale used by all benches: big enough to exercise real code paths,
/// small enough that `cargo bench --workspace` stays in minutes.
pub const BENCH_SCALE: f64 = 0.15;

/// A dataset plus both protocol splits, ready for training benches.
pub struct Fixture {
    /// The generated dataset.
    pub dataset: Dataset,
    /// All-fields mask.
    pub mask: FieldMask,
    /// Rating-prediction split.
    pub rating: RatingSplit,
    /// Leave-one-out split (20 candidates to keep eval fast).
    pub loo: LooSplit,
}

/// Builds the standard bench fixture for a dataset spec.
pub fn fixture(spec: DatasetSpec) -> Fixture {
    let dataset = generate(&spec.config(2023).scaled(BENCH_SCALE));
    let mask = FieldMask::all(&dataset.schema);
    let rating = rating_split(&dataset, &mask, 2, 7);
    let loo = loo_split(&dataset, &mask, 2, 20, 8);
    Fixture { dataset, mask, rating, loo }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_small_but_nonempty() {
        let f = fixture(DatasetSpec::AmazonAuto);
        assert!(!f.rating.train.is_empty());
        assert!(!f.loo.test.is_empty());
        assert!(f.rating.train.len() < 2500, "bench fixture should stay small");
    }
}
