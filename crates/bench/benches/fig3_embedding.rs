//! **Figure 3 regeneration bench**: how the GML-FM training-epoch cost
//! scales with the embedding size `k` (the figure sweeps k from 4 to 512;
//! the bench pins the cost curve's shape on a smaller range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmlfm_bench::fixture;
use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::DatasetSpec;
use gmlfm_train::{fit_regression, TrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let f = fixture(DatasetSpec::AmazonOffice);
    let n = f.dataset.schema.total_dim();
    let tc = TrainConfig { epochs: 1, patience: 0, ..TrainConfig::default() };

    let mut group = c.benchmark_group("fig3_embedding_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for k in [4usize, 16, 64, 128] {
        group.throughput(Throughput::Elements(f.rating.train.len() as u64));
        group.bench_with_input(BenchmarkId::new("gmlfm_dnn_epoch", k), &k, |b, &k| {
            b.iter(|| {
                let mut m = GmlFm::new(n, &GmlFmConfig::dnn(k, 1));
                black_box(fit_regression(&mut m, &f.rating.train, None, &tc))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
