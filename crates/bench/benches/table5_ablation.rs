//! **Table 5 regeneration bench**: per-variant training-epoch cost of the
//! GML-FM ablations — transform family, DNN depth (0–3) and distance
//! function — pinning the overheads the ablation table trades off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmlfm_bench::fixture;
use gmlfm_core::{Distance, GmlFm, GmlFmConfig};
use gmlfm_data::DatasetSpec;
use gmlfm_train::{fit_regression, TrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let f = fixture(DatasetSpec::MercariTicket);
    let n = f.dataset.schema.total_dim();
    let tc = TrainConfig { epochs: 1, patience: 0, ..TrainConfig::default() };

    let mut group = c.benchmark_group("table5_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let variants: Vec<(&str, GmlFmConfig)> = vec![
        ("euclidean_plain", GmlFmConfig::euclidean_plain(16)),
        ("mahalanobis", GmlFmConfig::mahalanobis(16)),
        ("dnn_layers_1", GmlFmConfig::dnn(16, 1)),
        ("dnn_layers_2", GmlFmConfig::dnn(16, 2)),
        ("dnn_layers_3", GmlFmConfig::dnn(16, 3)),
        ("manhattan", GmlFmConfig::dnn(16, 1).with_distance(Distance::Manhattan)),
        ("chebyshev", GmlFmConfig::dnn(16, 1).with_distance(Distance::Chebyshev)),
        ("cosine", GmlFmConfig::dnn(16, 1).with_distance(Distance::Cosine)),
    ];
    for (name, cfg) in variants {
        group.bench_with_input(BenchmarkId::new("train_epoch", name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut m = GmlFm::new(n, cfg);
                black_box(fit_regression(&mut m, &f.rating.train, None, &tc))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
