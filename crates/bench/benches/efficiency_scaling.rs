//! **Section 3.3 reproduction**: the naive `O(k²n²)` pairwise evaluation
//! of the GML-FM second-order term versus the paper's simplified `O(k²n)`
//! form, for both the Mahalanobis (Eq. 10) and DNN (Eq. 11) distances.
//!
//! Expected shape: naive timings grow ~4x per doubling of `n`, efficient
//! ~2x, so their ratio widens linearly in `n` — exactly the claim the
//! paper makes for its simplification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmlfm_core::{DenseGmlFm, DenseTransform, DnnTransform};
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use std::hint::black_box;
use std::time::Duration;

fn model(n: usize, k: usize, dnn: bool) -> DenseGmlFm {
    let mut rng = seeded_rng(n as u64);
    let transform = if dnn {
        DenseTransform::Dnn(DnnTransform {
            weights: vec![normal(&mut rng, k, k, 0.0, 0.4)],
            biases: vec![normal(&mut rng, 1, k, 0.0, 0.1)],
        })
    } else {
        let l = normal(&mut rng, k, k, 0.0, 0.3);
        DenseTransform::Mahalanobis(l.matmul_tn(&l))
    };
    DenseGmlFm {
        v: normal(&mut rng, n, k, 0.0, 0.3),
        h: normal(&mut rng, 1, k, 0.0, 0.3).into_vec(),
        transform,
    }
}

fn bench(c: &mut Criterion) {
    let k = 16;
    for (label, dnn) in [("mahalanobis_eq10", false), ("dnn_eq11", true)] {
        let mut group = c.benchmark_group(format!("efficiency_scaling/{label}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(800));
        for n in [64usize, 128, 256, 512] {
            let m = model(n, k, dnn);
            let mut rng = seeded_rng(7);
            let x: Vec<f64> = normal(&mut rng, 1, n, 0.0, 1.0).into_vec();
            group.bench_with_input(BenchmarkId::new("naive_k2n2", n), &n, |b, _| {
                b.iter(|| black_box(m.second_order_naive(black_box(&x))))
            });
            group.bench_with_input(BenchmarkId::new("efficient_k2n", n), &n, |b, _| {
                b.iter(|| black_box(m.second_order_efficient(black_box(&x))))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
