//! **Figures 5/6 regeneration bench**: exact t-SNE on case-study-sized
//! point sets (the per-user positive/negative item embeddings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use gmlfm_tsne::{tsne, TsneConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig56_tsne");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for n in [30usize, 60, 120] {
        let mut rng = seeded_rng(n as u64);
        let data = normal(&mut rng, n, 16, 0.0, 1.0);
        let cfg = TsneConfig { iterations: 150, ..TsneConfig::default() };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(tsne(&data, &cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
