//! **Figure 4 regeneration bench**: the cost of MAMO-lite's per-user
//! local adaptation and of GML-FM cold-user scoring — the two sides of
//! the cold-start comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use gmlfm_bench::fixture;
use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::{DatasetSpec, Instance};
use gmlfm_models::mamo::{MamoConfig, MamoTask};
use gmlfm_models::MamoLite;
use gmlfm_train::{fit_regression, Scorer, TrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let f = fixture(DatasetSpec::MovieLens);
    let d = &f.dataset;

    // Meta-train MAMO-lite once on user tasks from the loo training data.
    let profile_cards: Vec<usize> =
        d.user_attr_fields.iter().map(|&fi| d.schema.fields()[fi].cardinality).collect();
    let tasks: Vec<MamoTask> = f
        .loo
        .train_user_items
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(u, items)| MamoTask {
            profile: d.user_attrs[u].clone(),
            support: items.iter().map(|&i| (i as usize, 1.0)).collect(),
        })
        .collect();
    let mut mamo =
        MamoLite::new(d.n_items, &profile_cards, MamoConfig { epochs: 2, ..MamoConfig::default() });
    mamo.fit(&tasks);

    // Train GML-FM once.
    let mut gml = GmlFm::new(d.schema.total_dim(), &GmlFmConfig::dnn(16, 1));
    fit_regression(
        &mut gml,
        &f.loo.train,
        None,
        &TrainConfig { epochs: 2, patience: 0, ..TrainConfig::default() },
    );

    let case = &f.loo.test[0];
    let user = case.user as usize;
    let support: Vec<(usize, f64)> =
        f.loo.train_user_items[user].iter().map(|&i| (i as usize, 1.0)).collect();
    let query_items: Vec<usize> = case.negatives.iter().map(|&i| i as usize).collect();
    let instances: Vec<Instance> = case
        .negatives
        .iter()
        .map(|&i| d.instance_masked(case.user, i, 0.0, &f.mask))
        .collect();

    let mut group = c.benchmark_group("fig4_coldstart");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("mamo_adapt_and_score", |b| {
        b.iter(|| black_box(mamo.predict(&d.user_attrs[user], &support, &query_items)))
    });
    group.bench_function("gmlfm_score", |b| b.iter(|| black_box(gml.scores(&instances))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
