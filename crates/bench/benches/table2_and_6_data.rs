//! **Table 2 and Table 6 regeneration benches**: cost of generating each
//! calibrated dataset (Table 2) and of building attribute-masked
//! instances for the subset study (Table 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmlfm_bench::BENCH_SCALE;
use gmlfm_data::{generate, DatasetSpec, FieldKind, FieldMask};
use std::hint::black_box;
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_datagen");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for spec in DatasetSpec::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(spec.name()), &spec, |b, spec| {
            b.iter(|| black_box(generate(&spec.config(2023).scaled(BENCH_SCALE))))
        });
    }
    group.finish();
}

fn bench_masked_instances(c: &mut Criterion) {
    let dataset = generate(&DatasetSpec::MercariTicket.config(2023).scaled(BENCH_SCALE));
    let base = FieldMask::base(&dataset.schema);
    let masks = [
        ("base", base.clone()),
        ("base+cty", base.with_kind(&dataset.schema, FieldKind::Category)),
        ("base+all", FieldMask::all(&dataset.schema)),
    ];
    let mut group = c.benchmark_group("table6_attributes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, mask) in masks {
        group.bench_with_input(BenchmarkId::new("build_instances", name), &mask, |b, mask| {
            b.iter(|| {
                let mut acc = 0usize;
                for it in &dataset.interactions {
                    acc += black_box(dataset.instance_masked(it.user, it.item, 1.0, mask)).n_fields();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_masked_instances);
criterion_main!(benches);
