//! Substrate ablations called out in DESIGN.md: the autograd engine's
//! per-batch overhead vs the hand-derived FM path, and the core matmul /
//! gather kernels everything is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gmlfm_autograd::{Graph, ParamSet};
use gmlfm_bench::fixture;
use gmlfm_data::DatasetSpec;
use gmlfm_models::{fm::FmConfig, FactorizationMachine};
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use gmlfm_train::Scorer;
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/kernels");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut rng = seeded_rng(1);
    for k in [16usize, 64] {
        let a = normal(&mut rng, 256, k, 0.0, 1.0);
        let w = normal(&mut rng, k, k, 0.0, 1.0);
        group.throughput(Throughput::Elements((256 * k * k) as u64));
        group.bench_with_input(BenchmarkId::new("matmul_256xk_kxk", k), &k, |b, _| {
            b.iter(|| black_box(a.matmul(&w)))
        });
        let table = normal(&mut rng, 5000, k, 0.0, 1.0);
        let idx: Vec<usize> = (0..256).map(|i| (i * 19) % 5000).collect();
        group.bench_with_input(BenchmarkId::new("gather_256_rows", k), &k, |b, _| {
            b.iter(|| black_box(table.gather_rows(&idx)))
        });
    }
    group.finish();
}

/// Autograd tape overhead: forward+backward of a 2-layer MLP batch vs the
/// raw forward math.
fn bench_autograd_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/autograd");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let k = 16;
    let mut rng = seeded_rng(2);
    let mut params = ParamSet::new();
    let w1 = params.add("w1", normal(&mut rng, k, k, 0.0, 0.3));
    let b1 = params.add("b1", normal(&mut rng, 1, k, 0.0, 0.1));
    let w2 = params.add("w2", normal(&mut rng, k, 1, 0.0, 0.3));
    let x = normal(&mut rng, 256, k, 0.0, 1.0);
    let t = normal(&mut rng, 256, 1, 0.0, 1.0);

    group.bench_function("mlp_forward_backward_b256", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let tv = g.constant(t.clone());
            let w1v = g.param(&params, w1);
            let b1v = g.param(&params, b1);
            let w2v = g.param(&params, w2);
            let h = g.matmul(xv, w1v);
            let h = g.add_row_broadcast(h, b1v);
            let h = g.tanh(h);
            let pred = g.matmul(h, w2v);
            let loss = g.mse(pred, tv);
            black_box(g.backward(loss))
        })
    });
    group.bench_function("mlp_forward_only_raw", |b| {
        b.iter(|| {
            let mut h = x.matmul(params.get(w1));
            for r in 0..h.rows() {
                for (hv, bv) in h.row_mut(r).iter_mut().zip(params.get(b1).row(0)) {
                    *hv = (*hv + bv).tanh();
                }
            }
            black_box(h.matmul(params.get(w2)))
        })
    });
    group.finish();
}

/// Hand-derived FM SGD epoch vs autograd-based scoring on the same data:
/// the ablation justifying the dual implementation strategy.
fn bench_fm_paths(c: &mut Criterion) {
    let f = fixture(DatasetSpec::AmazonAuto);
    let n = f.dataset.schema.total_dim();
    let mut group = c.benchmark_group("substrate/fm_paths");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("fm_sgd_epoch_hand_derived", |b| {
        b.iter(|| {
            let mut m = FactorizationMachine::new(n, FmConfig { epochs: 1, ..FmConfig::default() });
            black_box(m.fit(&f.rating.train))
        })
    });
    let m = {
        let mut m = FactorizationMachine::new(n, FmConfig { epochs: 1, ..FmConfig::default() });
        m.fit(&f.rating.train);
        m
    };
    group.bench_function("fm_predict_test_set", |b| b.iter(|| black_box(m.scores(&f.rating.test))));
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_autograd_overhead, bench_fm_paths);
criterion_main!(benches);
