//! Frozen serving vs the autograd evaluation path, on the same workload
//! family as `efficiency_scaling`: trained GML-FM variants scoring sparse
//! instances and ranking leave-one-out candidate sets.
//!
//! Expected shape: the graph path pays tape construction + node storage
//! per chunk and an `O(m²)` pair loop per instance; the frozen path
//! evaluates the Eq. 10/11 decoupled sums directly (`O(m·k²)`, no
//! allocation beyond a few `k`-vectors) and the ranker amortises the
//! context side across candidates. The head-to-head summary printed at
//! the end measures the speedup the serving refactor claims (≥5x).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmlfm_bench::fixture;
use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::{DatasetSpec, Instance};
use gmlfm_eval::{evaluate_topn, evaluate_topn_frozen};
use gmlfm_serve::Freeze;
use gmlfm_train::{fit_regression, GraphModel, Scorer, TrainConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

struct Workload {
    model: GmlFm,
    fixture: gmlfm_bench::Fixture,
    test_instances: Vec<Instance>,
}

fn workload(cfg: &GmlFmConfig) -> Workload {
    let fixture = fixture(DatasetSpec::AmazonAuto);
    let mut model = GmlFm::new(fixture.dataset.schema.total_dim(), cfg);
    fit_regression(
        &mut model,
        &fixture.rating.train,
        None,
        &TrainConfig { epochs: 2, ..TrainConfig::default() },
    );
    let test_instances = fixture.rating.test.clone();
    Workload { model, fixture, test_instances }
}

fn bench_batch_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/batch_scoring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (name, cfg) in [("md", GmlFmConfig::mahalanobis(16)), ("dnn1", GmlFmConfig::dnn(16, 1))] {
        let w = workload(&cfg);
        let frozen = w.model.freeze();
        group.bench_with_input(BenchmarkId::new("graph_predict", name), &w.test_instances, |b, insts| {
            b.iter(|| black_box(w.model.predict(insts)))
        });
        group.bench_with_input(BenchmarkId::new("frozen_scores", name), &w.test_instances, |b, insts| {
            b.iter(|| black_box(frozen.scores(insts)))
        });
    }
    group.finish();
}

fn bench_topn_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/topn_ranking");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let w = workload(&GmlFmConfig::dnn(16, 1));
    let frozen = w.model.freeze();
    let f = &w.fixture;
    group.bench_function("graph_loo_eval", |b| {
        b.iter(|| black_box(evaluate_topn(&w.model, &f.dataset, &f.mask, &f.loo.test, 10)))
    });
    group.bench_function("frozen_loo_eval", |b| {
        b.iter(|| black_box(evaluate_topn_frozen(&frozen, &f.dataset, &f.mask, &f.loo.test, 10)))
    });
    group.finish();
}

/// Direct head-to-head on identical work, printing the measured speedups
/// (the number the acceptance criterion reads).
fn speedup_summary(_c: &mut Criterion) {
    let w = workload(&GmlFmConfig::dnn(16, 1));
    let frozen = w.model.freeze();
    let f = &w.fixture;

    fn time(mut job: impl FnMut()) -> f64 {
        job(); // warm
        let reps = 5;
        let t = Instant::now();
        for _ in 0..reps {
            job();
        }
        t.elapsed().as_secs_f64() / reps as f64
    }

    let graph_batch = time(|| {
        black_box(w.model.predict(&w.test_instances));
    });
    let frozen_batch = time(|| {
        black_box(frozen.scores(&w.test_instances));
    });
    let graph_rank = time(|| {
        black_box(evaluate_topn(&w.model, &f.dataset, &f.mask, &f.loo.test, 10));
    });
    let frozen_rank = time(|| {
        black_box(evaluate_topn_frozen(&frozen, &f.dataset, &f.mask, &f.loo.test, 10));
    });

    println!(
        "\n== frozen-vs-graph head-to-head ({} test instances, {} loo cases) ==",
        w.test_instances.len(),
        f.loo.test.len()
    );
    println!(
        "batch scoring : graph {:>12?}  frozen {:>12?}  speedup {:>6.1}x",
        Duration::from_secs_f64(graph_batch),
        Duration::from_secs_f64(frozen_batch),
        graph_batch / frozen_batch
    );
    println!(
        "top-n ranking : graph {:>12?}  frozen {:>12?}  speedup {:>6.1}x",
        Duration::from_secs_f64(graph_rank),
        Duration::from_secs_f64(frozen_rank),
        graph_rank / frozen_rank
    );
}

criterion_group!(benches, bench_batch_scoring, bench_topn_ranking, speedup_summary);
criterion_main!(benches);
