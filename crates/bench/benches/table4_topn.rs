//! **Table 4 regeneration bench**: train + leave-one-out ranking cost of
//! the top-n model families (BPR-MF pairwise SGD, NGCF propagation, NCF,
//! GML-FM) on the Amazon-Auto fixture.

use criterion::{criterion_group, criterion_main, Criterion};
use gmlfm_bench::fixture;
use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::DatasetSpec;
use gmlfm_eval::evaluate_topn;
use gmlfm_models::{mf::MfConfig, ncf::NcfConfig, BprMf, Ncf, Ngcf, PairCodec};
use gmlfm_train::{fit_regression, TrainConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let f = fixture(DatasetSpec::AmazonAuto);
    let n = f.dataset.schema.total_dim();
    let codec = PairCodec::from_schema(&f.dataset.schema);
    let tc = TrainConfig { epochs: 2, patience: 0, ..TrainConfig::default() };

    let mut group = c.benchmark_group("table4_topn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("bpr_mf", |b| {
        b.iter(|| {
            let mut m = BprMf::new(codec, MfConfig { epochs: 4, ..MfConfig::default() });
            m.fit(&f.loo.train_pairs, &f.loo.train_user_items);
            black_box(evaluate_topn(&m, &f.dataset, &f.mask, &f.loo.test, 10))
        })
    });
    group.bench_function("ngcf", |b| {
        b.iter(|| {
            let mut m = Ngcf::new(codec, MfConfig { epochs: 4, ..MfConfig::default() });
            m.fit(&f.loo.train_pairs, &f.loo.train_user_items);
            black_box(evaluate_topn(&m, &f.dataset, &f.mask, &f.loo.test, 10))
        })
    });
    group.bench_function("ncf", |b| {
        b.iter(|| {
            let mut m = Ncf::new(codec, &NcfConfig::default());
            fit_regression(&mut m, &f.loo.train, None, &tc);
            black_box(evaluate_topn(&m, &f.dataset, &f.mask, &f.loo.test, 10))
        })
    });
    group.bench_function("gmlfm_dnn", |b| {
        b.iter(|| {
            let mut m = GmlFm::new(n, &GmlFmConfig::dnn(16, 1));
            fit_regression(&mut m, &f.loo.train, None, &tc);
            black_box(evaluate_topn(&m, &f.dataset, &f.mask, &f.loo.test, 10))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
