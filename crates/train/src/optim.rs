//! Gradient-descent optimizers over a [`ParamSet`].

use gmlfm_autograd::{Gradients, ParamSet};
use gmlfm_tensor::Matrix;

/// A first-order optimizer: applies one update from accumulated gradients.
pub trait Optimizer {
    /// Applies one step. Parameters without a gradient entry are left
    /// untouched.
    fn step(&mut self, params: &mut ParamSet, grads: &Gradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (for schedules and sweeps).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Plain stochastic gradient descent (paper Eq. 14) with optional L2
/// weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    /// Decoupled L2 penalty coefficient applied as `p -= lr * wd * p`.
    pub weight_decay: f64,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet, grads: &Gradients) {
        let ids: Vec<_> = grads.iter().map(|(id, _)| id).collect();
        for id in ids {
            let g = grads.get(id).expect("id from iter");
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                params.get_mut(id).scale_inplace(decay);
            }
            params.get_mut(id).axpy(-self.lr, g);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, ICLR'15), the optimizer the paper uses for all
/// experiments. Moment buffers are allocated lazily per parameter on the
/// first step that touches it.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical floor inside the square root.
    pub eps: f64,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f64,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and the
    /// standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn slot(buf: &mut Vec<Option<Matrix>>, idx: usize, shape: (usize, usize)) -> &mut Matrix {
        if buf.len() <= idx {
            buf.resize(idx + 1, None);
        }
        buf[idx].get_or_insert_with(|| Matrix::zeros(shape.0, shape.1))
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = grads.iter().map(|(id, _)| id).collect();
        for id in ids {
            let g = grads.get(id).expect("id from iter");
            let shape = params.get(id).shape();
            let m = Self::slot(&mut self.m, id.index(), shape);
            for (mi, &gi) in m.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            }
            let v = Self::slot(&mut self.v, id.index(), shape);
            for (vi, &gi) in v.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            if self.weight_decay > 0.0 {
                let decay = 1.0 - self.lr * self.weight_decay;
                params.get_mut(id).scale_inplace(decay);
            }
            // Re-borrow both moments immutably for the update.
            let m = self.m[id.index()].as_ref().expect("m initialised above");
            let v = self.v[id.index()].as_ref().expect("v initialised above");
            let p = params.get_mut(id);
            for ((pi, mi), vi) in p.as_mut_slice().iter_mut().zip(m.as_slice()).zip(v.as_slice()) {
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_autograd::{Graph, ParamSet};

    /// Minimises `(w - 3)^2` and checks convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::filled(1, 1, 0.0));
        for _ in 0..steps {
            let mut g = Graph::new();
            let wv = g.param(&params, w);
            let target = g.constant(Matrix::filled(1, 1, 3.0));
            let diff = g.sub(wv, target);
            let loss = g.square(diff);
            let loss = g.sum_all(loss);
            let grads = g.backward(loss);
            opt.step(&mut params, &grads);
        }
        params.get(w).as_slice()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let w = quadratic_descent(&mut opt, 800);
        assert!((w - 3.0).abs() < 1e-4, "w = {w}");
        assert_eq!(opt.steps(), 800);
    }

    #[test]
    fn weight_decay_shrinks_parameters_with_zero_gradient() {
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::filled(1, 1, 10.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // Zero gradient that still touches the parameter: loss = 0 * w.
        let mut graph = Graph::new();
        let wv = graph.param(&params, w);
        let zero = graph.scale(wv, 0.0);
        let loss = graph.sum_all(zero);
        let grads = graph.backward(loss);
        opt.step(&mut params, &grads);
        let expected = 10.0 * (1.0 - 0.1 * 0.5);
        assert!((params.get(w).as_slice()[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.1);
        s.set_learning_rate(0.2);
        assert_eq!(s.learning_rate(), 0.2);
        let mut a = Adam::new(0.01);
        a.set_learning_rate(0.002);
        assert_eq!(a.learning_rate(), 0.002);
    }

    #[test]
    fn adam_outpaces_sgd_on_ill_conditioned_problem() {
        // loss = (10 w1 - 5)^2 + (0.1 w2 - 5)^2: curvature differs 100x.
        let run = |opt: &mut dyn Optimizer| {
            let mut params = ParamSet::new();
            let w = params.add("w", Matrix::zeros(1, 2));
            for _ in 0..300 {
                let mut g = Graph::new();
                let wv = g.param(&params, w);
                let scale = g.constant(Matrix::row_vector(&[10.0, 0.1]));
                let scaled = g.mul(wv, scale);
                let target = g.constant(Matrix::row_vector(&[5.0, 5.0]));
                let diff = g.sub(scaled, target);
                let sq = g.square(diff);
                let loss = g.sum_all(sq);
                let grads = g.backward(loss);
                opt.step(&mut params, &grads);
            }
            // Final loss:
            let w = params.get(w);
            (10.0 * w.as_slice()[0] - 5.0).powi(2) + (0.1 * w.as_slice()[1] - 5.0).powi(2)
        };
        let sgd_loss = run(&mut Sgd::new(0.004));
        let adam_loss = run(&mut Adam::new(0.25));
        assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
    }
}
