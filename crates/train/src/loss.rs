//! Scalar loss helpers for the hand-derived (non-autograd) models.
//!
//! The graph-based models compose their losses from autograd primitives;
//! the classic factorization models (MF, PMF, BPR-MF, FM) use these
//! closed-form value/derivative pairs in their custom SGD loops.

/// Squared error `(ŷ − y)²` and its derivative w.r.t. `ŷ` (paper Eq. 13).
#[inline]
pub fn squared(pred: f64, target: f64) -> (f64, f64) {
    let r = pred - target;
    (r * r, 2.0 * r)
}

/// BPR loss `−ln σ(x̂_uij)` for the pairwise score difference
/// `x̂_uij = ŷ(u,i) − ŷ(u,j)`, returning `(loss, dloss/dx̂)`.
///
/// Numerically stable for large |x̂|.
#[inline]
pub fn bpr(x_uij: f64) -> (f64, f64) {
    // loss = softplus(-x); dloss/dx = -sigmoid(-x) = sigmoid(x) - 1
    let loss = softplus(-x_uij);
    let grad = sigmoid(x_uij) - 1.0;
    (loss, grad)
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `ln(1 + e^x)`.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_value_and_grad() {
        let (l, g) = squared(2.5, 1.0);
        assert!((l - 2.25).abs() < 1e-12);
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bpr_matches_finite_difference() {
        for &x in &[-5.0, -0.5, 0.0, 0.7, 4.0] {
            let (_, g) = bpr(x);
            let eps = 1e-6;
            let num = (bpr(x + eps).0 - bpr(x - eps).0) / (2.0 * eps);
            assert!((g - num).abs() < 1e-8, "x={x}: {g} vs {num}");
        }
    }

    #[test]
    fn bpr_is_stable_at_extremes() {
        let (l_neg, g_neg) = bpr(-1000.0);
        assert!(l_neg.is_finite() && g_neg.is_finite());
        assert!((g_neg + 1.0).abs() < 1e-9, "gradient saturates at -1");
        let (l_pos, g_pos) = bpr(1000.0);
        assert!(l_pos.abs() < 1e-9 && g_pos.abs() < 1e-9);
    }

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-3.0, -1.0, 0.0, 2.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(50.0) - 50.0).abs() < 1e-9);
        assert!(softplus(-50.0) > 0.0);
        assert!(softplus(-50.0) < 1e-20);
        assert!((softplus(0.0) - 2f64.ln()).abs() < 1e-12);
    }
}
