//! Mini-batch regression trainer for autograd-based models.

use crate::batch::labels_column;
use crate::optim::{Adam, Optimizer};
use gmlfm_autograd::{Graph, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::seeded_rng;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use std::num::NonZeroUsize;

/// Number of instances scored per evaluation graph in
/// [`GraphModel::predict`], and the batching unit reused by the
/// `gmlfm-serve` frozen scoring path.
///
/// Chunking keeps each eval tape small (bounded peak memory) without
/// paying per-instance graph setup. Override per call with
/// [`GraphModel::predict_chunked`]. The type is [`NonZeroUsize`] so a
/// zero chunk size is unrepresentable rather than a runtime panic.
pub const EVAL_CHUNK_SIZE: NonZeroUsize = match NonZeroUsize::new(512) {
    Some(n) => n,
    None => unreachable!(),
};

/// A model trainable by [`fit_regression`]: it owns a [`ParamSet`] and can
/// build the prediction column for a batch of instances as an autograd
/// graph.
pub trait GraphModel {
    /// The model's trainable parameters.
    fn params(&self) -> &ParamSet;

    /// Mutable access for the optimizer and early-stopping snapshots.
    fn params_mut(&mut self) -> &mut ParamSet;

    /// Builds the `B x 1` prediction column for `batch`. `training`
    /// enables dropout; `rng` drives dropout masks.
    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var;

    /// Predicts scores in evaluation mode (dropout disabled), building one
    /// graph per [`EVAL_CHUNK_SIZE`] instances.
    fn predict(&self, instances: &[Instance]) -> Vec<f64> {
        self.predict_chunked(instances, EVAL_CHUNK_SIZE)
    }

    /// [`GraphModel::predict`] with an explicit chunk size (larger chunks
    /// trade peak memory for fewer graph setups). Taking [`NonZeroUsize`]
    /// makes the zero-chunk misuse a compile-time impossibility instead
    /// of a runtime panic.
    fn predict_chunked(&self, instances: &[Instance], chunk_size: NonZeroUsize) -> Vec<f64> {
        if instances.is_empty() {
            return Vec::new();
        }
        let mut rng = seeded_rng(0);
        let mut out = Vec::with_capacity(instances.len());
        let mut refs: Vec<&Instance> = Vec::with_capacity(chunk_size.get().min(instances.len()));
        for chunk in instances.chunks(chunk_size.get()) {
            refs.clear();
            refs.extend(chunk.iter());
            let mut g = Graph::new();
            let pred = self.forward_batch(&mut g, self.params(), &refs, false, &mut rng);
            out.extend_from_slice(g.value(pred).as_slice());
        }
        out
    }
}

/// Anything that can score instances; both evaluation tasks (RMSE on
/// held-out instances, leave-one-out ranking) consume this interface.
///
/// `scores` takes the instances by value slice (not `&[&Instance]`), so
/// evaluation protocols hand their owned test vectors straight through
/// without allocating a reference vector per call.
pub trait Scorer {
    /// Predicted scores, one per instance, in order.
    fn scores(&self, instances: &[Instance]) -> Vec<f64>;

    /// Convenience for a single instance.
    fn score_one(&self, instance: &Instance) -> f64 {
        self.scores(std::slice::from_ref(instance))[0]
    }
}

impl<T: GraphModel> Scorer for T {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        self.predict(instances)
    }
}

/// Hyper-parameters of the regression training loop.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Adam learning rate (paper tunes in {1e-4, 1e-3, 1e-2, 1e-1}).
    pub lr: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (256 in the paper).
    pub batch_size: usize,
    /// Decoupled L2 weight decay.
    pub weight_decay: f64,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    /// Seed for batch shuffling and dropout masks.
    pub seed: u64,
    /// Hogwild! worker count for the hand-derived SGD trainers (FM, MF,
    /// PMF, BPR-MF): `> 1` opts into lock-free parallel epochs over
    /// shared parameters. Off by default (`1` = serial, bit-for-bit
    /// reproducible). The autograd trainers in this module ignore it —
    /// their updates are dense batch steps, not sparse per-instance
    /// writes, so Hogwild's benign-race argument does not apply to them.
    pub hogwild_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.01,
            epochs: 20,
            batch_size: 256,
            weight_decay: 1e-5,
            patience: 3,
            seed: 17,
            hogwild_threads: 1,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_losses: Vec<f64>,
    /// Validation RMSE per epoch (empty when no validation set given).
    pub val_rmses: Vec<f64>,
    /// Best validation RMSE seen (infinity when no validation set).
    pub best_val_rmse: f64,
    /// Epochs actually run (may stop early).
    pub epochs_run: usize,
}

/// Trains a [`GraphModel`] on the squared loss (paper Eq. 13) with Adam,
/// restoring the best-validation parameters when a validation set is
/// provided.
pub fn fit_regression<M: GraphModel>(
    model: &mut M,
    train: &[Instance],
    val: Option<&[Instance]>,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!train.is_empty(), "fit_regression: empty training set");
    let mut rng = seeded_rng(cfg.seed);
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..train.len()).collect();

    let mut report = TrainReport {
        train_losses: Vec::with_capacity(cfg.epochs),
        val_rmses: Vec::new(),
        best_val_rmse: f64::INFINITY,
        epochs_run: 0,
    };
    let mut best_params: Option<ParamSet> = None;
    let mut stall = 0usize;

    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut n_batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let batch: Vec<&Instance> = chunk.iter().map(|&i| &train[i]).collect();
            let mut g = Graph::new();
            let pred = model.forward_batch(&mut g, model.params(), &batch, true, &mut rng);
            let target = g.constant(labels_column(&batch));
            let loss = g.mse(pred, target);
            epoch_loss += g.scalar(loss);
            n_batches += 1;
            let grads = g.backward(loss);
            opt.step(model.params_mut(), &grads);
        }
        report.train_losses.push(epoch_loss / n_batches.max(1) as f64);
        report.epochs_run += 1;

        if let Some(val) = val {
            let preds = model.predict(val);
            let rmse = rmse(&preds, val);
            report.val_rmses.push(rmse);
            if rmse < report.best_val_rmse - 1e-6 {
                report.best_val_rmse = rmse;
                best_params = Some(model.params().clone());
                stall = 0;
            } else {
                stall += 1;
                if cfg.patience > 0 && stall >= cfg.patience {
                    break;
                }
            }
        }
    }

    if let Some(best) = best_params {
        *model.params_mut() = best;
    }
    report
}

/// Trains a [`GraphModel`] with the Bayesian Personalized Ranking loss
/// over `(positive, negative)` instance pairs:
/// `L = −mean ln σ(ŷ(x⁺) − ŷ(x⁻))`.
///
/// This implements the extension the paper names as future work
/// (Section 7: "enhancing GML-FM with the Bayesian Personalized Ranking
/// approach") for *any* graph model, GML-FM included. `sample_negative`
/// is called once per positive per epoch, so negatives are resampled
/// every pass as in BPR-MF.
pub fn fit_bpr<M: GraphModel>(
    model: &mut M,
    positives: &[Instance],
    mut sample_negative: impl FnMut(&Instance, &mut StdRng) -> Instance,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!positives.is_empty(), "fit_bpr: empty positive set");
    let mut rng = seeded_rng(cfg.seed);
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..positives.len()).collect();
    let mut report = TrainReport {
        train_losses: Vec::with_capacity(cfg.epochs),
        val_rmses: Vec::new(),
        best_val_rmse: f64::INFINITY,
        epochs_run: 0,
    };
    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut n_batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let pos_batch: Vec<&Instance> = chunk.iter().map(|&i| &positives[i]).collect();
            let neg_owned: Vec<Instance> = pos_batch.iter().map(|p| sample_negative(p, &mut rng)).collect();
            let neg_batch: Vec<&Instance> = neg_owned.iter().collect();
            let mut g = Graph::new();
            let pos_scores = model.forward_batch(&mut g, model.params(), &pos_batch, true, &mut rng);
            let neg_scores = model.forward_batch(&mut g, model.params(), &neg_batch, true, &mut rng);
            let diff = g.sub(pos_scores, neg_scores);
            let log_lik = g.ln_sigmoid(diff);
            let mean = g.mean_all(log_lik);
            let loss = g.neg(mean);
            epoch_loss += g.scalar(loss);
            n_batches += 1;
            let grads = g.backward(loss);
            opt.step(model.params_mut(), &grads);
        }
        report.train_losses.push(epoch_loss / n_batches.max(1) as f64);
        report.epochs_run += 1;
    }
    report
}

fn rmse(preds: &[f64], instances: &[Instance]) -> f64 {
    let mse: f64 = preds.iter().zip(instances).map(|(p, i)| (p - i.label).powi(2)).sum::<f64>()
        / preds.len().max(1) as f64;
    mse.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_autograd::ParamId;
    use gmlfm_tensor::init::normal;

    /// A linear model over one-hot features: ŷ = Σ w[feat].
    struct LinearToy {
        params: ParamSet,
        w: ParamId,
    }

    impl LinearToy {
        fn new(n_features: usize, seed: u64) -> Self {
            let mut rng = seeded_rng(seed);
            let mut params = ParamSet::new();
            let w = params.add("w", normal(&mut rng, n_features, 1, 0.0, 0.01));
            Self { params, w }
        }
    }

    impl GraphModel for LinearToy {
        fn params(&self) -> &ParamSet {
            &self.params
        }
        fn params_mut(&mut self) -> &mut ParamSet {
            &mut self.params
        }
        fn forward_batch(
            &self,
            g: &mut Graph,
            params: &ParamSet,
            batch: &[&Instance],
            _training: bool,
            _rng: &mut StdRng,
        ) -> Var {
            let w = g.param(params, self.w);
            let cols = crate::batch::field_index_columns(batch);
            let mut acc: Option<Var> = None;
            for col in &cols {
                let gathered = g.gather_rows(w, col); // B x 1
                acc = Some(match acc {
                    Some(a) => g.add(a, gathered),
                    None => gathered,
                });
            }
            acc.expect("non-empty batch")
        }
    }

    fn toy_data(n: usize, seed: u64) -> Vec<Instance> {
        // Ground truth: feature 0..4 are worth +1, features 5..9 worth -1.
        let mut rng = seeded_rng(seed);
        use rand::Rng;
        (0..n)
            .map(|_| {
                let a = rng.gen_range(0..5u32);
                let b = rng.gen_range(5..10u32);
                let keep_a = rng.gen_bool(0.5);
                if keep_a {
                    Instance::new(vec![a, a], 2.0) // two positive features
                } else {
                    Instance::new(vec![a, b], 0.0) // one of each
                }
            })
            .collect()
    }

    #[test]
    fn trainer_fits_linear_toy() {
        let train = toy_data(400, 1);
        let val = toy_data(100, 2);
        let mut model = LinearToy::new(10, 3);
        let cfg = TrainConfig {
            lr: 0.05,
            epochs: 60,
            batch_size: 32,
            weight_decay: 0.0,
            patience: 0,
            seed: 4,
            ..TrainConfig::default()
        };
        let report = fit_regression(&mut model, &train, Some(&val), &cfg);
        assert!(report.best_val_rmse < 0.3, "val rmse {}", report.best_val_rmse);
        // Training loss decreased substantially.
        assert!(report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.5));
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let train = toy_data(200, 5);
        let val = toy_data(50, 6);
        let mut model = LinearToy::new(10, 7);
        let cfg = TrainConfig {
            lr: 0.2,
            epochs: 200,
            batch_size: 64,
            weight_decay: 0.0,
            patience: 3,
            seed: 8,
            ..TrainConfig::default()
        };
        let report = fit_regression(&mut model, &train, Some(&val), &cfg);
        assert!(report.epochs_run < 200, "expected early stop, ran {}", report.epochs_run);
    }

    #[test]
    fn predict_is_deterministic_in_eval_mode() {
        let train = toy_data(100, 9);
        let mut model = LinearToy::new(10, 10);
        let cfg = TrainConfig { epochs: 3, ..TrainConfig::default() };
        let _ = fit_regression(&mut model, &train, None, &cfg);
        let a = model.predict(&train);
        let b = model.predict(&train);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_is_rejected() {
        let mut model = LinearToy::new(4, 1);
        let _ = fit_regression(&mut model, &[], None, &TrainConfig::default());
    }

    #[test]
    fn bpr_training_learns_to_rank_good_features_higher() {
        use rand::Rng;
        // Positives contain features 0..5, negatives 5..10; BPR should
        // push w[0..5] above w[5..10].
        let positives: Vec<Instance> = {
            let mut rng = seeded_rng(1);
            (0..200)
                .map(|_| Instance::new(vec![rng.gen_range(0..5u32), rng.gen_range(0..5u32)], 1.0))
                .collect()
        };
        let mut model = LinearToy::new(10, 2);
        let cfg = TrainConfig {
            lr: 0.05,
            epochs: 30,
            batch_size: 32,
            weight_decay: 0.0,
            patience: 0,
            seed: 3,
            ..TrainConfig::default()
        };
        let report = fit_bpr(
            &mut model,
            &positives,
            |_pos, rng| Instance::new(vec![rng.gen_range(5..10u32), rng.gen_range(5..10u32)], -1.0),
            &cfg,
        );
        assert!(
            report.train_losses.last().unwrap() < &report.train_losses[0],
            "losses {:?}",
            report.train_losses
        );
        // Rank check: any positive-feature instance scores above any
        // negative-feature instance.
        let good = Instance::new(vec![1, 3], 1.0);
        let bad = Instance::new(vec![6, 8], -1.0);
        let scores = model.predict(&[good, bad]);
        assert!(scores[0] > scores[1], "scores {scores:?}");
    }

    #[test]
    #[should_panic(expected = "empty positive set")]
    fn bpr_rejects_empty_positives() {
        let mut model = LinearToy::new(4, 1);
        let _ = fit_bpr(&mut model, &[], |p, _| p.clone(), &TrainConfig::default());
    }
}
