//! Field-major batching: turning sparse instances into per-field index
//! columns for embedding gathers.

use gmlfm_data::Instance;
use gmlfm_tensor::Matrix;

/// Transposes a batch of instances into per-field index columns:
/// `result[f][b]` is the global feature index of field `f` in instance
/// `b`. Every graph model gathers its embeddings this way.
///
/// # Panics
/// Panics when instances disagree on the number of fields (all instances
/// of a dataset/mask share a field count by construction).
pub fn field_index_columns(batch: &[&Instance]) -> Vec<Vec<usize>> {
    let Some(first) = batch.first() else { return Vec::new() };
    let m = first.n_fields();
    let mut cols = vec![Vec::with_capacity(batch.len()); m];
    for inst in batch {
        assert_eq!(
            inst.n_fields(),
            m,
            "field_index_columns: ragged batch ({} vs {m} fields)",
            inst.n_fields()
        );
        for (f, &idx) in inst.feats.iter().enumerate() {
            cols[f].push(idx as usize);
        }
    }
    cols
}

/// Labels of a batch as a `B x 1` column.
pub fn labels_column(batch: &[&Instance]) -> Matrix {
    Matrix::from_vec(batch.len(), 1, batch.iter().map(|i| i.label).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_transpose_the_batch() {
        let a = Instance::new(vec![0, 5, 9], 1.0);
        let b = Instance::new(vec![1, 6, 9], -1.0);
        let batch = [&a, &b];
        let cols = field_index_columns(&batch);
        assert_eq!(cols, vec![vec![0, 1], vec![5, 6], vec![9, 9]]);
        let labels = labels_column(&batch);
        assert_eq!(labels.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn empty_batch_yields_no_columns() {
        let cols = field_index_columns(&[]);
        assert!(cols.is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged batch")]
    fn ragged_batches_are_rejected() {
        let a = Instance::new(vec![0, 5], 1.0);
        let b = Instance::new(vec![1], -1.0);
        let _ = field_index_columns(&[&a, &b]);
    }
}
