//! # gmlfm-train
//!
//! Optimisation and training loops shared by every model in the
//! workspace.
//!
//! * [`optim`] — SGD and Adam over a [`gmlfm_autograd::ParamSet`]. The
//!   paper trains all models with Adam (Section 4.4) after initialising
//!   parameters from `N(0, 0.01²)`; the plain SGD update of Eq. 14 is also
//!   provided and benchmarked.
//! * [`loss`] — scalar squared-error (Eq. 13) and BPR loss helpers for the
//!   hand-derived (non-autograd) models.
//! * [`trainer`] — a mini-batch regression trainer for [`GraphModel`]s
//!   (models that build an autograd graph per batch), with validation
//!   early stopping.
//! * [`batch`] — field-major batching utilities turning a slice of sparse
//!   instances into per-field index vectors for embedding gathers.

pub mod batch;
pub mod loss;
pub mod optim;
pub mod trainer;

pub use batch::{field_index_columns, labels_column};
pub use optim::{Adam, Optimizer, Sgd};
pub use trainer::{fit_bpr, fit_regression, GraphModel, Scorer, TrainConfig, TrainReport, EVAL_CHUNK_SIZE};
