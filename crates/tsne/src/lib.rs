//! # gmlfm-tsne
//!
//! Exact t-SNE (van der Maaten & Hinton, JMLR'08) for the paper's case
//! study (Figures 5 and 6): projecting the item-ID embeddings of FM, NFM,
//! TransFM and GML-FM to 2-D to compare how well positive items cluster.
//!
//! The point counts in the case study are small (a user's positive items
//! plus equally many sampled negatives, ≈ tens to low hundreds), so the
//! exact `O(N²)` formulation is used — no Barnes-Hut tree needed.
//! Perplexity calibration is the standard per-point binary search over
//! the Gaussian bandwidth; the embedding is optimised with momentum
//! gradient descent and early exaggeration.

use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbours).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum after the early-exaggeration phase.
    pub momentum: f64,
    /// Multiplier on P during the first quarter of iterations.
    pub early_exaggeration: f64,
    /// RNG seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 15.0,
            iterations: 400,
            learning_rate: 100.0,
            momentum: 0.8,
            early_exaggeration: 4.0,
            seed: 59,
        }
    }
}

/// Embeds `data` (`N×d`) into 2-D. Deterministic in `config.seed`.
///
/// # Panics
/// Panics when fewer than 4 points are given (perplexity calibration is
/// meaningless below that).
pub fn tsne(data: &Matrix, config: &TsneConfig) -> Matrix {
    let n = data.rows();
    assert!(n >= 4, "tsne: need at least 4 points, got {n}");
    let p = joint_probabilities(data, config.perplexity.min((n - 1) as f64 / 3.0));

    let mut rng = seeded_rng(config.seed);
    let mut y = normal(&mut rng, n, 2, 0.0, 1e-4);
    let mut velocity = Matrix::zeros(n, 2);
    let exaggeration_end = config.iterations / 4;

    for iter in 0..config.iterations {
        let exaggeration = if iter < exaggeration_end { config.early_exaggeration } else { 1.0 };
        let momentum = if iter < exaggeration_end { 0.5 } else { config.momentum };
        let grad = gradient(&p, &y, exaggeration);
        for i in 0..n {
            for d in 0..2 {
                velocity[(i, d)] = momentum * velocity[(i, d)] - config.learning_rate * grad[(i, d)];
                y[(i, d)] += velocity[(i, d)];
            }
        }
        center(&mut y);
    }
    y
}

/// Symmetrised, normalised joint probabilities `P` with per-point
/// bandwidths calibrated to the target perplexity.
fn joint_probabilities(data: &Matrix, perplexity: f64) -> Matrix {
    let n = data.rows();
    let d2 = pairwise_sq_distances(data);
    let target_entropy = perplexity.ln();
    let mut p = Matrix::zeros(n, n);
    for i in 0..n {
        // Binary search the precision beta = 1/(2σ²) for row i.
        let (mut beta, mut beta_min, mut beta_max) = (1.0f64, f64::NEG_INFINITY, f64::INFINITY);
        let mut row = vec![0.0; n];
        for _ in 0..64 {
            let mut sum = 0.0;
            for j in 0..n {
                row[j] = if j == i { 0.0 } else { (-beta * d2[(i, j)]).exp() };
                sum += row[j];
            }
            let sum = sum.max(1e-300);
            // Shannon entropy of the conditional distribution.
            let mut entropy = 0.0;
            for (j, rv) in row.iter().enumerate() {
                if j != i && *rv > 0.0 {
                    let pj = rv / sum;
                    entropy -= pj * pj.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_infinite() { beta * 2.0 } else { 0.5 * (beta + beta_max) };
            } else {
                beta_max = beta;
                beta = if beta_min.is_infinite() { beta / 2.0 } else { 0.5 * (beta + beta_min) };
            }
        }
        let sum: f64 = row.iter().sum::<f64>().max(1e-300);
        for j in 0..n {
            p[(i, j)] = row[j] / sum;
        }
    }
    // Symmetrise and normalise: P = (P + Pᵀ) / 2N, floored for stability.
    let mut joint = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            joint[(i, j)] = ((p[(i, j)] + p[(j, i)]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    joint
}

/// KL-divergence gradient with Student-t low-dimensional affinities.
fn gradient(p: &Matrix, y: &Matrix, exaggeration: f64) -> Matrix {
    let n = y.rows();
    // q_ij ∝ (1 + ||y_i − y_j||²)^-1.
    let mut num = Matrix::zeros(n, n);
    let mut z = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let dx = y[(i, 0)] - y[(j, 0)];
            let dy = y[(i, 1)] - y[(j, 1)];
            let t = 1.0 / (1.0 + dx * dx + dy * dy);
            num[(i, j)] = t;
            z += t;
        }
    }
    let z = z.max(1e-300);
    let mut grad = Matrix::zeros(n, 2);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let q = (num[(i, j)] / z).max(1e-12);
            let coeff = 4.0 * (exaggeration * p[(i, j)] - q) * num[(i, j)];
            grad[(i, 0)] += coeff * (y[(i, 0)] - y[(j, 0)]);
            grad[(i, 1)] += coeff * (y[(i, 1)] - y[(j, 1)]);
        }
    }
    grad
}

fn pairwise_sq_distances(data: &Matrix) -> Matrix {
    let n = data.rows();
    let mut d2 = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i + 1..n {
            let dist: f64 = data.row(i).iter().zip(data.row(j)).map(|(a, b)| (a - b) * (a - b)).sum();
            d2[(i, j)] = dist;
            d2[(j, i)] = dist;
        }
    }
    d2
}

fn center(y: &mut Matrix) {
    let n = y.rows() as f64;
    for d in 0..2 {
        let mean: f64 = (0..y.rows()).map(|i| y[(i, d)]).sum::<f64>() / n;
        for i in 0..y.rows() {
            y[(i, d)] -= mean;
        }
    }
}

/// Mean silhouette-style separation score of a 2-D embedding with binary
/// labels: mean inter-group distance divided by mean intra-group
/// distance. Greater than 1 means the groups separate — the quantitative
/// proxy this reproduction uses for "positive items cluster together" in
/// Figures 5/6.
pub fn separation_score(y: &Matrix, labels: &[bool]) -> f64 {
    assert_eq!(y.rows(), labels.len(), "separation_score: label count mismatch");
    let mut intra = (0.0, 0usize);
    let mut inter = (0.0, 0usize);
    for i in 0..y.rows() {
        for j in i + 1..y.rows() {
            let dx = y[(i, 0)] - y[(j, 0)];
            let dy = y[(i, 1)] - y[(j, 1)];
            let d = (dx * dx + dy * dy).sqrt();
            if labels[i] == labels[j] {
                intra = (intra.0 + d, intra.1 + 1);
            } else {
                inter = (inter.0 + d, inter.1 + 1);
            }
        }
    }
    let intra_mean = intra.0 / intra.1.max(1) as f64;
    let inter_mean = inter.0 / inter.1.max(1) as f64;
    if intra_mean > 0.0 {
        inter_mean / intra_mean
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::seeded_rng;

    /// Two well-separated Gaussian blobs in 8-D.
    fn blobs(n_per: usize, separation: f64, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = seeded_rng(seed);
        let mut data = Matrix::zeros(2 * n_per, 8);
        let mut labels = Vec::with_capacity(2 * n_per);
        for i in 0..2 * n_per {
            let offset = if i < n_per { 0.0 } else { separation };
            let noise = normal(&mut rng, 1, 8, 0.0, 0.5);
            for d in 0..8 {
                data[(i, d)] = offset + noise[(0, d)];
            }
            labels.push(i >= n_per);
        }
        (data, labels)
    }

    #[test]
    fn tsne_separates_well_separated_blobs() {
        let (data, labels) = blobs(20, 8.0, 1);
        let cfg = TsneConfig { iterations: 300, ..TsneConfig::default() };
        let y = tsne(&data, &cfg);
        assert_eq!(y.shape(), (40, 2));
        assert!(y.is_finite());
        let score = separation_score(&y, &labels);
        assert!(score > 1.5, "separation {score}");
    }

    #[test]
    fn tsne_is_deterministic() {
        let (data, _) = blobs(10, 5.0, 2);
        let cfg = TsneConfig { iterations: 100, ..TsneConfig::default() };
        let a = tsne(&data, &cfg);
        let b = tsne(&data, &cfg);
        assert!(gmlfm_tensor::approx_eq(&a, &b, 0.0));
    }

    #[test]
    fn overlapping_blobs_have_lower_separation_than_distant_ones() {
        let cfg = TsneConfig { iterations: 250, ..TsneConfig::default() };
        let (near_data, near_labels) = blobs(15, 0.2, 3);
        let (far_data, far_labels) = blobs(15, 10.0, 3);
        let near = separation_score(&tsne(&near_data, &cfg), &near_labels);
        let far = separation_score(&tsne(&far_data, &cfg), &far_labels);
        assert!(far > near, "far {far} should exceed near {near}");
    }

    #[test]
    fn embedding_is_centered() {
        let (data, _) = blobs(8, 4.0, 4);
        let y = tsne(&data, &TsneConfig { iterations: 50, ..TsneConfig::default() });
        let mean_x: f64 = (0..y.rows()).map(|i| y[(i, 0)]).sum::<f64>() / y.rows() as f64;
        assert!(mean_x.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 4 points")]
    fn too_few_points_are_rejected() {
        let data = Matrix::zeros(3, 2);
        let _ = tsne(&data, &TsneConfig::default());
    }

    #[test]
    fn separation_score_of_identical_groups_is_about_one() {
        let mut rng = seeded_rng(5);
        let y = normal(&mut rng, 60, 2, 0.0, 1.0);
        let labels: Vec<bool> = (0..60).map(|i| i % 2 == 0).collect();
        let s = separation_score(&y, &labels);
        assert!((s - 1.0).abs() < 0.15, "score {s}");
    }
}
