//! Regression suite for the interleaving checker: the real protocols
//! pass *exhaustively* at sizes larger than the CI-facing suite runs,
//! and each planted-bug variant is *found* — with a schedule that
//! replays the failure deterministically. A model checker whose failure
//! path is never exercised proves nothing by passing; these tests are
//! the teeth.

use gmlfm_analyze::models::{
    FreeOnSwapSlotModel, LatchModel, LostWakeupLatchModel, RacyModel, SlotModel, TornSlotModel,
};
use gmlfm_analyze::sched::{check, Model, Stats, Verdict};

const BUDGET: usize = 2_000_000;

fn expect_pass<M: Model>(model: &M, what: &str) -> Stats {
    match check(model, BUDGET) {
        Verdict::Pass(stats) => stats,
        other => panic!("{what}: expected exhaustive pass, got {other:?}"),
    }
}

/// The reported schedule must reproduce the failure from a fresh clone
/// of the model — stepping it through the schedule either trips the
/// same mid-flight invariant or leaves a final state that fails.
fn expect_fail_with_replay<M: Model>(model: &M, what: &str) -> String {
    let (schedule, error) = match check(model, BUDGET) {
        Verdict::Fail { schedule, error } => (schedule, error),
        other => panic!("{what}: expected the planted bug to be found, got {other:?}"),
    };
    let mut replay = model.clone();
    let mut tripped = false;
    for &tid in &schedule {
        if replay.step(tid).is_err() {
            tripped = true;
            break;
        }
    }
    // Deadlock findings replay as "schedule ends with threads stuck";
    // invariant findings replay as a step error or final-check failure.
    let stuck_at_end = (0..replay.thread_count()).any(|t| !replay.done(t) && !replay.enabled(t));
    assert!(
        tripped || stuck_at_end || replay.check_final().is_err(),
        "{what}: schedule {schedule:?} did not replay failure `{error}`"
    );
    error
}

// --- ModelServer swap/read slot --------------------------------------

#[test]
fn slot_protocol_passes_exhaustively_at_regression_size() {
    // 2 readers × 3 reads against 3 swaps: 12 steps, C(12;6,3,3) = 18480
    // interleavings, every one visited.
    let stats = expect_pass(&SlotModel::new(2, 3, 3), "slot swap/read");
    assert_eq!(stats.schedules, 18_480, "the space must be covered exhaustively");
}

#[test]
fn torn_generation_read_is_found_and_replays() {
    let error = expect_fail_with_replay(&TornSlotModel::new(2, 2, 2), "torn publication");
    assert!(error.contains("torn read"), "{error}");
}

#[test]
fn free_on_swap_use_after_free_is_found() {
    let error = expect_fail_with_replay(&FreeOnSwapSlotModel::new(2, 2, 2), "free-on-swap");
    assert!(error.contains("use-after-free"), "{error}");
}

#[test]
fn retention_is_what_fixes_free_on_swap() {
    // Same thread structure, same step granularity; the only difference
    // between these two models is the append-only retention table — so
    // the pass/fail split isolates retention as the load-bearing piece.
    expect_pass(&SlotModel::new(1, 1, 1), "retained slot");
    expect_fail_with_replay(&FreeOnSwapSlotModel::new(1, 1, 1), "freed slot");
}

// --- pool completion latch -------------------------------------------

#[test]
fn latch_terminates_under_every_schedule() {
    expect_pass(&LatchModel::new(2, 3), "latch 2 workers / 3 jobs");
    expect_pass(&LatchModel::new(3, 2), "latch 3 workers / 2 jobs");
}

#[test]
fn latch_help_draining_runs_every_job_exactly_once() {
    // check_final asserts completed == jobs on every schedule, including
    // the ones where the waiter helps; an exhaustive pass IS the claim.
    expect_pass(&LatchModel::new(1, 3), "latch with a helping waiter");
}

#[test]
fn lost_wakeup_park_is_found_as_a_deadlock() {
    let error = expect_fail_with_replay(&LostWakeupLatchModel::new(1, 1), "lost wakeup");
    assert!(error.contains("deadlock"), "{error}");
    // Also at a size where helping interleaves with the stale check.
    expect_fail_with_replay(&LostWakeupLatchModel::new(2, 2), "lost wakeup, 2 workers");
}

#[test]
fn recheck_under_lock_is_what_fixes_the_lost_wakeup() {
    // Identical structure except the atomicity of (recheck, park):
    // holding the completion lock across the recheck is the fix.
    expect_pass(&LatchModel::new(1, 1), "locked recheck");
    expect_fail_with_replay(&LostWakeupLatchModel::new(1, 1), "unlocked check");
}

// --- RacySlice accumulation ------------------------------------------

#[test]
fn cas_fetch_add_is_lossless_under_every_schedule() {
    expect_pass(&RacyModel::new(2, 3), "CAS 2 threads × 3 adds");
    expect_pass(&RacyModel::new(3, 2), "CAS 3 threads × 2 adds");
}

#[test]
fn load_store_add_loses_an_update_and_replays() {
    let error = expect_fail_with_replay(&RacyModel::lossy(2, 1), "lossy add");
    assert!(error.contains("lost update"), "{error}");
}

// --- checker discipline ----------------------------------------------

#[test]
fn budget_exhaustion_is_never_reported_as_a_pass() {
    // A correct model under a starved budget must NOT pass.
    match check(&SlotModel::new(2, 2, 2), 10) {
        Verdict::BudgetExceeded { budget } => assert_eq!(budget, 10),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn failing_schedules_are_deterministic_run_to_run() {
    let a = check(&RacyModel::lossy(2, 1), BUDGET);
    let b = check(&RacyModel::lossy(2, 1), BUDGET);
    assert_eq!(a, b, "the checker must be schedule-deterministic");
}
