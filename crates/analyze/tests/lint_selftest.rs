//! Fires / doesn't-fire fixture pairs for each lint — the self-test
//! that keeps the lint driver honest in both directions. Every rule
//! gets (a) a minimal violation it MUST flag and (b) a near-miss it
//! MUST NOT flag, with the near-misses drawn from the constructs that
//! break substring greps: `unsafe` inside strings and comments, raw
//! strings, lifetimes vs char literals, `unwrap_or_else`, import lists.

use gmlfm_analyze::lints::{lint_file, FileReport, LintScope};

fn all_scopes() -> LintScope {
    LintScope {
        panic_freedom: true,
        no_hash_collections: true,
        no_available_parallelism: true,
        ordering_justification: true,
    }
}

fn lint(src: &str) -> FileReport {
    lint_file(src, all_scopes())
}

fn fires(report: &FileReport, lint: &str) -> bool {
    report.findings.iter().any(|f| f.lint == lint)
}

// --- L1: undocumented unsafe -----------------------------------------

#[test]
fn l1_fires_on_each_undocumented_unsafe_form() {
    for src in [
        "fn f(p: *const u8) -> u8 { unsafe { *p } }",
        "unsafe fn g() {}",
        "struct X; unsafe impl Sync for X {}",
        "unsafe trait Zeroable {}",
    ] {
        let report = lint(src);
        assert!(fires(&report, "L1"), "must fire on: {src}");
        assert_eq!(report.unsafe_sites.len(), 1, "one site in: {src}");
        assert!(report.unsafe_sites[0].justification.is_empty());
    }
}

#[test]
fn l1_accepts_trailing_and_preceding_safety_comments() {
    let trailing = "fn f(p: *const u8) -> u8 { unsafe { *p } } // SAFETY: caller checked p";
    assert!(!fires(&lint(trailing), "L1"));

    let above = "
// SAFETY: p is non-null by construction.
unsafe fn g(p: *const u8) {}
";
    assert!(!fires(&lint(above), "L1"));

    let through_attribute = "
// SAFETY: the buffer outlives the borrow.
#[inline]
unsafe fn h() {}
";
    assert!(!fires(&lint(through_attribute), "L1"));
}

#[test]
fn l1_blank_line_breaks_the_justification_block() {
    let src = "
// SAFETY: stale — refers to something else entirely.

unsafe fn g() {}
";
    assert!(fires(&lint(src), "L1"));
}

#[test]
fn l1_ignores_unsafe_in_strings_and_comments() {
    let src = r##"
// this mentions unsafe { } but is a comment
fn f() -> &'static str { "unsafe { code }" }
fn g() -> &'static str { r#"unsafe impl Sync"# }
"##;
    let report = lint(src);
    assert!(!fires(&report, "L1"), "{:?}", report.findings);
    assert!(report.unsafe_sites.is_empty());
}

#[test]
fn l1_inventories_documented_sites_with_their_text() {
    let src = "
// SAFETY: index is bounds-checked by the caller.
unsafe { slice.get_unchecked(i) }
";
    let report = lint(src);
    assert_eq!(report.unsafe_sites.len(), 1);
    assert_eq!(report.unsafe_sites[0].kind, "block");
    assert_eq!(report.unsafe_sites[0].justification, "index is bounds-checked by the caller.");
}

// --- L2: panic freedom -----------------------------------------------

#[test]
fn l2_fires_on_unwrap_expect_and_panicking_macros() {
    for src in [
        "fn f(x: Option<i32>) -> i32 { x.unwrap() }",
        "fn f(x: Option<i32>) -> i32 { x.expect(\"present\") }",
        "fn f() { panic!(\"boom\") }",
        "fn f() { todo!() }",
        "fn f() { unimplemented!() }",
        "fn f(x: u8) { match x { 0 => {}, _ => unreachable!() } }",
    ] {
        assert!(fires(&lint(src), "L2"), "must fire on: {src}");
    }
}

#[test]
fn l2_near_misses_do_not_fire() {
    for src in [
        // Fallible-with-default variants are the *fix*, not a violation.
        "fn f(x: Option<i32>) -> i32 { x.unwrap_or(0) }",
        "fn f(x: Option<i32>) -> i32 { x.unwrap_or_else(|| 0) }",
        "fn f(x: Option<i32>) -> i32 { x.unwrap_or_default() }",
        // Field/ident mentions, not method calls.
        "struct S { unwrap: bool } fn f(s: S) -> bool { s.unwrap }",
        // Assertions check invariants; they stay allowed.
        "fn f(n: usize) { assert!(n > 0); debug_assert!(n < 10); }",
        // Strings and comments.
        "fn f() -> &'static str { \"call .unwrap() and panic!\" } // unwrap() here too",
        // `expect` in a doc comment.
        "/// Callers may expect( this to hold.\nfn f() {}",
    ] {
        let report = lint(src);
        assert!(!fires(&report, "L2"), "must not fire on: {src} — {:?}", report.findings);
    }
}

#[test]
fn l2_is_suspended_inside_cfg_test_modules_only() {
    let src = "
fn hot(x: Option<i32>) -> i32 { x.unwrap() }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!(\"fine in tests\"); }
}
";
    let report = lint(src);
    let l2_lines: Vec<usize> = report.findings.iter().filter(|f| f.lint == "L2").map(|f| f.line).collect();
    // Exactly the hot-path unwrap on line 2; nothing from the test mod.
    assert_eq!(l2_lines, vec![2], "{:?}", report.findings);
}

// --- L3: determinism -------------------------------------------------

#[test]
fn l3_fires_on_hash_collections_outside_tests() {
    let src = "use std::collections::HashMap; fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
    assert!(fires(&lint(src), "L3"));
    assert!(fires(&lint("fn f(s: std::collections::HashSet<u32>) {}"), "L3"));
}

#[test]
fn l3_allows_btree_collections_and_test_hashmaps() {
    let clean = "use std::collections::BTreeMap; fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }";
    assert!(!fires(&lint(clean), "L3"));
    let test_only = "
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }
}
";
    assert!(!fires(&lint(test_only), "L3"));
}

#[test]
fn l3_fires_on_available_parallelism_even_in_tests() {
    // The uncached-thread-count rule is about *any* second read site
    // existing; a test calling it still bypasses the cached accessor.
    let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
    assert!(fires(&lint(src), "L3"));
}

#[test]
fn l3_scope_flags_gate_each_rule() {
    let hash_src = "fn f(m: std::collections::HashMap<u32, u32>) {}";
    let off = LintScope { no_hash_collections: false, ..all_scopes() };
    assert!(!fires(&lint_file(hash_src, off), "L3"));
}

// --- L4: ordering justification --------------------------------------

#[test]
fn l4_fires_on_bare_ordering_and_accepts_justified_uses() {
    let bare = "fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Acquire) }";
    assert!(fires(&lint(bare), "L4"));

    let trailing =
        "fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Acquire) } // ORDERING: pairs with store";
    assert!(!fires(&lint(trailing), "L4"));

    let above = "
fn f(a: &AtomicUsize) -> usize {
    // ORDERING: Acquire pairs with the writer's Release store.
    a.load(Ordering::Acquire)
}
";
    assert!(!fires(&lint(above), "L4"));
}

#[test]
fn l4_import_lists_and_qualified_imports_pass() {
    for src in [
        "use std::sync::atomic::{AtomicUsize, Ordering};",
        "use std::sync::atomic::Ordering;",
        "use core::cmp::Ordering;",
    ] {
        let report = lint(src);
        assert!(!fires(&report, "L4"), "must not fire on: {src} — {:?}", report.findings);
    }
}

#[test]
fn l4_flags_a_line_once_even_with_two_orderings() {
    // compare_exchange takes two orderings on one line; one diagnostic.
    let src =
        "fn f(a: &AtomicUsize) { let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed); }";
    let report = lint(src);
    assert_eq!(report.findings.iter().filter(|f| f.lint == "L4").count(), 1);
}

// --- diagnostics -----------------------------------------------------

#[test]
fn findings_carry_one_indexed_lines() {
    let src = "fn ok() {}\nfn bad(x: Option<i32>) -> i32 { x.unwrap() }\n";
    let report = lint(src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].line, 2);
}
