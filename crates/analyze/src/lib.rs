//! `gmlfm-analyze` — the workspace's correctness tooling: a token-level
//! lint suite for the invariants `rustc` and clippy don't know about,
//! plus a bounded deterministic model checker for the unsafe
//! concurrency protocols. Std-only by design: the analyzer gates CI, so
//! it builds before — and independently of — everything it checks.
//!
//! Four lints (see [`lints`] for the rules, [`scope_for`] for which
//! files each applies to):
//!
//! * **L1 undocumented-unsafe** — every `unsafe` block/fn/impl needs a
//!   `// SAFETY:` comment; the sites feed the committed `UNSAFETY.md`
//!   audit table ([`inventory`]).
//! * **L2 panic-freedom** — no `unwrap`/`expect`/`panic!`-family in the
//!   serving hot paths (`gmlfm-service`, `gmlfm-serve`'s scoring/
//!   retrieval files, `gmlfm-net`'s frame/wire codecs and connection
//!   loops, and `gmlfm-online`'s ingest + trainer loop): a malformed
//!   request — or a hostile byte stream, or a degenerate event batch —
//!   must surface as a typed error, never tear down a worker.
//! * **L3 determinism** — no `HashMap`/`HashSet` where iteration order
//!   reaches deterministic outputs; `available_parallelism()` only
//!   inside the one cached accessor, so shard boundaries can't move
//!   mid-computation.
//! * **L4 atomic-ordering discipline** — every `Ordering::…` in the
//!   concurrency core carries a `// ORDERING:` justification naming its
//!   pairing.
//!
//! The model checker ([`sched`]) exhaustively enumerates thread
//! interleavings of the three unsafe protocols ([`models`]): the
//! `ModelServer` hot-swap slot, the pool's completion latch with
//! help-draining, and `RacySlice`'s CAS accumulation. Deliberately
//! broken hazard variants prove the checker can fail — a suite whose
//! failure path is untested is a rubber stamp.

pub mod inventory;
pub mod lexer;
pub mod lints;
pub mod models;
pub mod sched;

use lints::{FileReport, LintScope};
use sched::Verdict;
use std::path::{Path, PathBuf};

/// The workspace root, resolved from this crate's own manifest dir
/// (`crates/analyze` → up two levels). Keeps the tool runnable from any
/// CWD via `cargo run -p gmlfm-analyze`.
pub fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.ancestors().nth(2).unwrap_or(manifest).to_path_buf()
}

/// All first-party `.rs` files, sorted by path for deterministic output.
/// Scans `src/`, `crates/`, `examples/`, `tests/`; `vendor/` (offline
/// dependency stand-ins, not ours to lint) and `target/` are outside the
/// roots, and hidden directories are skipped.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "crates", "examples", "tests"] {
        collect_rs(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `gmlfm-serve` files on the request scoring/retrieval hot path (its
/// offline freezing half is allowed to be assertive about model shape).
const SERVE_HOT_PATH: [&str; 7] = [
    "crates/serve/src/frozen.rs",
    "crates/serve/src/rank.rs",
    "crates/serve/src/topn.rs",
    "crates/serve/src/index.rs",
    "crates/serve/src/batch.rs",
    "crates/serve/src/kernel.rs",
    "crates/serve/src/lowp.rs",
];

/// `gmlfm-net` files on the serving hot path: the frame codec, the
/// wire codec, and the connection/accept loops. A hostile byte stream
/// or a doomed socket must surface as a typed error or a clean close —
/// a panic here tears down a live connection handler. (The client and
/// load generator run on the caller's side of the wire and may be
/// assertive about harness misuse.)
const NET_HOT_PATH: [&str; 3] =
    ["crates/net/src/frame.rs", "crates/net/src/wire.rs", "crates/net/src/server.rs"];

/// `gmlfm-online` files on the serving hot path: the ingest endpoint
/// (validation + overlay fold + bounded log) runs inside the request
/// path, and the trainer loop must survive any event stream — a panic
/// there silently kills the retrain thread and the loop goes stale.
const ONLINE_HOT_PATH: [&str; 3] =
    ["crates/online/src/handle.rs", "crates/online/src/log.rs", "crates/online/src/trainer.rs"];

/// The one accessor allowed to call `available_parallelism()` (it
/// caches), and the benchmark report that prints machine facts.
const AVAILABLE_PARALLELISM_ALLOWLIST: [&str; 2] =
    ["crates/par/src/lib.rs", "crates/bench/src/bin/bench_report.rs"];

/// Which lints apply to a file, from its repo-relative forward-slash
/// path. L1 (undocumented unsafe) always applies and is not listed here.
pub fn scope_for(rel: &str) -> LintScope {
    LintScope {
        panic_freedom: rel.starts_with("crates/service/src/")
            || SERVE_HOT_PATH.contains(&rel)
            || NET_HOT_PATH.contains(&rel)
            || ONLINE_HOT_PATH.contains(&rel),
        no_hash_collections: rel.starts_with("crates/serve/src/")
            || rel.starts_with("crates/online/src/")
            || rel == "crates/par/src/lib.rs"
            || rel == "crates/service/src/exec.rs",
        no_available_parallelism: !AVAILABLE_PARALLELISM_ALLOWLIST.contains(&rel),
        ordering_justification: rel == "crates/par/src/pool.rs"
            || rel == "crates/par/src/hogwild.rs"
            || rel == "crates/service/src/server.rs"
            || rel == "crates/net/src/server.rs"
            || rel == "crates/net/src/frame.rs"
            || rel == "crates/online/src/trainer.rs",
    }
}

/// One linted file: repo-relative path plus its report.
#[derive(Debug)]
pub struct LintedFile {
    pub rel: String,
    pub report: FileReport,
}

/// Lints every workspace source file under its path-resolved scope.
/// Unreadable files are skipped (they can't be part of the build).
pub fn run_lints(root: &Path) -> Vec<LintedFile> {
    workspace_sources(root)
        .iter()
        .filter_map(|path| {
            let rel = path.strip_prefix(root).ok()?.to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(path).ok()?;
            let report = lints::lint_file(&src, scope_for(&rel));
            Some(LintedFile { rel, report })
        })
        .collect()
}

/// Projects the lint run down to the `unsafe` inventory (files with at
/// least one site, in scan order).
pub fn unsafe_inventory(files: &[LintedFile]) -> Vec<inventory::FileInventory> {
    files
        .iter()
        .filter(|f| !f.report.unsafe_sites.is_empty())
        .map(|f| inventory::FileInventory { path: f.rel.clone(), sites: f.report.unsafe_sites.clone() })
        .collect()
}

/// One protocol model's checked outcome.
#[derive(Debug)]
pub struct ProtocolCheck {
    pub name: &'static str,
    /// True for the real protocols; false for the hazard variants,
    /// which the checker is *required* to fail (calibration: a checker
    /// that can't find the planted bug proves nothing by passing).
    pub expect_pass: bool,
    pub verdict: Verdict,
}

impl ProtocolCheck {
    /// The verdict matches the expectation (and is never a budget blowout).
    pub fn ok(&self) -> bool {
        match &self.verdict {
            Verdict::Pass(_) => self.expect_pass,
            Verdict::Fail { .. } => !self.expect_pass,
            Verdict::BudgetExceeded { .. } => false,
        }
    }
}

/// Runs the interleaving suite: the three real protocols (must pass
/// exhaustively) and four planted-bug variants (must fail). Model sizes
/// are fixed small so the full space fits a CI-friendly budget; the
/// regression tests run larger instances.
pub fn run_interleave_suite(budget: usize) -> Vec<ProtocolCheck> {
    vec![
        ProtocolCheck {
            name: "slot-swap/read (ModelServer)",
            expect_pass: true,
            verdict: sched::check(&models::SlotModel::new(2, 2, 2), budget),
        },
        ProtocolCheck {
            name: "completion latch + help-drain (pool Scope)",
            expect_pass: true,
            verdict: sched::check(&models::LatchModel::new(2, 2), budget),
        },
        ProtocolCheck {
            name: "CAS fetch_add (RacySlice)",
            expect_pass: true,
            verdict: sched::check(&models::RacyModel::new(2, 2), budget),
        },
        ProtocolCheck {
            name: "hazard: torn generation/snapshot publication",
            expect_pass: false,
            verdict: sched::check(&models::TornSlotModel::new(1, 1, 1), budget),
        },
        ProtocolCheck {
            name: "hazard: free-on-swap (no retention table)",
            expect_pass: false,
            verdict: sched::check(&models::FreeOnSwapSlotModel::new(1, 1, 1), budget),
        },
        ProtocolCheck {
            name: "hazard: park on stale check (lost wakeup)",
            expect_pass: false,
            verdict: sched::check(&models::LostWakeupLatchModel::new(1, 1), budget),
        },
        ProtocolCheck {
            name: "hazard: non-atomic load/store add",
            expect_pass: false,
            verdict: sched::check(&models::RacyModel::lossy(2, 1), budget),
        },
    ]
}

/// Schedule budget for the CI-facing suite. The largest fixed model
/// (the latch with its retry interleavings) explores well under this;
/// hitting it means a model grew, which should be an explicit decision.
pub const CI_SCHEDULE_BUDGET: usize = 500_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_resolution_matches_the_documented_map() {
        assert!(scope_for("crates/service/src/exec.rs").panic_freedom);
        assert!(scope_for("crates/serve/src/rank.rs").panic_freedom);
        assert!(!scope_for("crates/serve/src/freeze.rs").panic_freedom);
        assert!(!scope_for("crates/train/src/lib.rs").panic_freedom);
        assert!(scope_for("crates/serve/src/topn.rs").no_hash_collections);
        assert!(!scope_for("crates/engine/src/pipeline.rs").no_hash_collections);
        assert!(!scope_for("crates/par/src/lib.rs").no_available_parallelism);
        assert!(scope_for("crates/par/src/pool.rs").no_available_parallelism);
        assert!(scope_for("crates/par/src/hogwild.rs").ordering_justification);
        assert!(!scope_for("crates/serve/src/frozen.rs").ordering_justification);
        // The network serving hot path: codec + connection loops are
        // panic-free; the files with atomics justify every ordering.
        assert!(scope_for("crates/net/src/frame.rs").panic_freedom);
        assert!(scope_for("crates/net/src/wire.rs").panic_freedom);
        assert!(scope_for("crates/net/src/server.rs").panic_freedom);
        assert!(!scope_for("crates/net/src/client.rs").panic_freedom);
        assert!(!scope_for("crates/net/src/loadgen.rs").panic_freedom);
        assert!(scope_for("crates/net/src/server.rs").ordering_justification);
        assert!(scope_for("crates/net/src/frame.rs").ordering_justification);
        assert!(!scope_for("crates/net/src/wire.rs").ordering_justification);
        // The online loop's hot path: ingest + trainer are panic-free,
        // the whole crate is hash-free (BTreeSet for the dedup ids),
        // and the trainer justifies every atomic ordering.
        assert!(scope_for("crates/online/src/handle.rs").panic_freedom);
        assert!(scope_for("crates/online/src/log.rs").panic_freedom);
        assert!(scope_for("crates/online/src/trainer.rs").panic_freedom);
        assert!(!scope_for("crates/online/src/gate.rs").panic_freedom);
        assert!(scope_for("crates/online/src/trainer.rs").no_hash_collections);
        assert!(scope_for("crates/online/src/log.rs").no_hash_collections);
        assert!(scope_for("crates/online/src/trainer.rs").ordering_justification);
        assert!(!scope_for("crates/online/src/handle.rs").ordering_justification);
    }

    #[test]
    fn workspace_scan_finds_this_file_and_skips_vendor() {
        let root = workspace_root();
        let files = workspace_sources(&root);
        assert!(
            files.iter().any(|p| p.ends_with("crates/analyze/src/lib.rs")),
            "scan must include first-party sources"
        );
        assert!(
            !files.iter().any(|p| p.to_string_lossy().contains("/vendor/")),
            "scan must not descend into vendor/"
        );
        // Deterministic order.
        let again = workspace_sources(&root);
        assert_eq!(files, again);
    }

    #[test]
    fn the_tree_is_clean_under_the_suite() {
        // The repo's own gate, as a unit test: no lint findings anywhere.
        let files = run_lints(&workspace_root());
        let findings: Vec<String> = files
            .iter()
            .flat_map(|f| {
                f.report
                    .findings
                    .iter()
                    .map(move |d| format!("{}:{}: {}: {}", f.rel, d.line, d.lint, d.message))
            })
            .collect();
        assert!(findings.is_empty(), "lint findings:\n{}", findings.join("\n"));
    }

    #[test]
    fn interleave_suite_is_calibrated() {
        for check in run_interleave_suite(CI_SCHEDULE_BUDGET) {
            assert!(
                check.ok(),
                "{}: expected {} but got {:?}",
                check.name,
                if check.expect_pass { "pass" } else { "fail" },
                check.verdict
            );
        }
    }
}
