//! Interleaving models of the workspace's three unsafe concurrency
//! protocols, checked exhaustively by [`crate::sched`].
//!
//! Each model mirrors one protocol step for step at the granularity of
//! its shared-memory operations:
//!
//! * [`SlotModel`] — `gmlfm-service`'s `ModelServer` hot-swap slot:
//!   writer allocates a `(generation, snapshot)` state, retains it in
//!   the append-only table, publishes it through one atomic pointer;
//!   readers pin with one atomic load. Checked: no reader ever observes
//!   a torn generation/snapshot pairing, no pinned state is freed, and
//!   generations are monotone per reader.
//! * [`LatchModel`] — `gmlfm-par`'s scope completion latch: workers pop
//!   queued jobs and decrement the pending count under the lock; the
//!   waiting scope helps drain the queue and rechecks the count under
//!   the same lock before parking. Checked: the scope always
//!   terminates (no lost wakeup) and every job runs exactly once.
//! * [`RacyModel`] — `gmlfm-par`'s `RacySlice::fetch_add` CAS loop on a
//!   dense cell. Checked: no delta is lost under any schedule.
//!
//! Each has a deliberately broken **hazard variant** reintroducing the
//! bug its real counterpart's structure rules out — torn publication
//! through split cells, parking on a stale check outside the lock, a
//! load/store `add` on a contended cell. The regression tests assert
//! the checker *finds* those (so "the models pass" stays falsifiable),
//! and the passing models document *why* the real structure is the fix.

use crate::sched::Model;

// ---------------------------------------------------------------------
// ModelServer swap/read slot
// ---------------------------------------------------------------------

/// What one retained state holds: the generation and a "snapshot" value
/// stamped to match it at allocation (standing in for the model
/// pointer; any torn pairing shows up as a mismatch).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct SlotState {
    generation: u64,
    snapshot: u64,
}

/// The correct protocol: states are immutable after construction,
/// retained forever (append-only table), and published through a single
/// atomic `current` index — so a reader's one-load pin is atomic with
/// respect to everything the state carries.
#[derive(Clone)]
pub struct SlotModel {
    /// The retained-state table (`Slot::states` — append-only).
    states: Vec<SlotState>,
    /// The atomic `current` pointer, as an index into `states`.
    current: usize,
    /// Writer: swaps remaining, and the allocation staged between the
    /// alloc step and the publish step (swap is two shared-memory
    /// steps, exactly like `Box::into_raw` + `AtomicPtr::store`).
    swaps_left: usize,
    staged: Option<usize>,
    /// Per-reader: reads remaining and the last generation observed
    /// (for the monotonicity invariant).
    reads_left: Vec<usize>,
    last_gen: Vec<u64>,
}

impl SlotModel {
    /// `readers` reader threads doing `reads` pins each, against one
    /// writer doing `swaps` hot-swaps. Thread 0 is the writer.
    pub fn new(readers: usize, reads: usize, swaps: usize) -> Self {
        Self {
            states: vec![SlotState { generation: 1, snapshot: 1 }],
            current: 0,
            swaps_left: swaps,
            staged: None,
            reads_left: vec![reads; readers],
            last_gen: vec![0; readers],
        }
    }
}

impl Model for SlotModel {
    fn thread_count(&self) -> usize {
        1 + self.reads_left.len()
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.swaps_left == 0 && self.staged.is_none()
        } else {
            self.reads_left[tid - 1] == 0
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            match self.staged.take() {
                // Alloc step: build the immutable state and retain it.
                None => {
                    let generation = self.states[self.current].generation + 1;
                    self.states.push(SlotState { generation, snapshot: generation });
                    self.staged = Some(self.states.len() - 1);
                }
                // Publish step: one atomic store of `current`.
                Some(idx) => {
                    self.current = idx;
                    self.swaps_left -= 1;
                }
            }
            return Ok(());
        }
        // Reader pin: ONE atomic load of `current`, then reads of the
        // pointed-to state. Merged into one step because the state is
        // immutable once reachable through `current` — there is no
        // second shared-memory access whose timing could matter.
        let r = tid - 1;
        let state = self.states.get(self.current).copied().ok_or("reader pinned a freed state")?;
        if state.snapshot != state.generation {
            return Err(format!(
                "torn read: generation {} paired with snapshot {}",
                state.generation, state.snapshot
            ));
        }
        if state.generation < self.last_gen[r] {
            return Err(format!(
                "generation went backwards: {} after {}",
                state.generation, self.last_gen[r]
            ));
        }
        self.last_gen[r] = state.generation;
        self.reads_left[r] -= 1;
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let want = 1 + self.states.len() - 1;
        let got = self.states[self.current].generation as usize;
        if got == want {
            Ok(())
        } else {
            Err(format!("final generation {got}, expected {want}"))
        }
    }
}

/// Hazard variant: generation and snapshot published through two
/// *separate* shared cells with two separate stores (what you would get
/// by keeping a `generation: AtomicU64` next to the pointer instead of
/// inside the retained state). A reader's two loads can straddle a
/// writer's two stores — the torn pairing the one-pointer protocol
/// makes unrepresentable.
#[derive(Clone)]
pub struct TornSlotModel {
    gen_cell: u64,
    snapshot_cell: u64,
    swaps_left: usize,
    /// Writer mid-swap: generation stored, snapshot store pending.
    gen_stored: bool,
    reads_left: Vec<usize>,
    /// Reader mid-read: the generation it loaded first.
    pinned_gen: Vec<Option<u64>>,
}

impl TornSlotModel {
    pub fn new(readers: usize, reads: usize, swaps: usize) -> Self {
        Self {
            gen_cell: 1,
            snapshot_cell: 1,
            swaps_left: swaps,
            gen_stored: false,
            reads_left: vec![reads; readers],
            pinned_gen: vec![None; readers],
        }
    }
}

impl Model for TornSlotModel {
    fn thread_count(&self) -> usize {
        1 + self.reads_left.len()
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.swaps_left == 0 && !self.gen_stored
        } else {
            self.reads_left[tid - 1] == 0
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            if !self.gen_stored {
                self.gen_cell += 1;
                self.gen_stored = true;
            } else {
                self.snapshot_cell = self.gen_cell;
                self.gen_stored = false;
                self.swaps_left -= 1;
            }
            return Ok(());
        }
        let r = tid - 1;
        match self.pinned_gen[r].take() {
            None => self.pinned_gen[r] = Some(self.gen_cell),
            Some(generation) => {
                let snapshot = self.snapshot_cell;
                if snapshot != generation {
                    return Err(format!(
                        "torn read: generation {generation} paired with snapshot {snapshot}"
                    ));
                }
                self.reads_left[r] -= 1;
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Hazard variant: the writer frees the previous state on swap instead
/// of retaining it (no append-only table). A reader that pinned the old
/// state dereferences freed memory — the use-after-free the retention
/// table exists to prevent.
#[derive(Clone)]
pub struct FreeOnSwapSlotModel {
    /// `live[idx]` — whether state `idx` is still allocated.
    live: Vec<bool>,
    states: Vec<SlotState>,
    current: usize,
    swaps_left: usize,
    reads_left: Vec<usize>,
    /// Reader mid-read: the index it pinned (pin and deref are two
    /// steps here, as they are for any real reader that does more than
    /// one instruction's work with the snapshot).
    pinned: Vec<Option<usize>>,
}

impl FreeOnSwapSlotModel {
    pub fn new(readers: usize, reads: usize, swaps: usize) -> Self {
        Self {
            live: vec![true],
            states: vec![SlotState { generation: 1, snapshot: 1 }],
            current: 0,
            swaps_left: swaps,
            reads_left: vec![reads; readers],
            pinned: vec![None; readers],
        }
    }
}

impl Model for FreeOnSwapSlotModel {
    fn thread_count(&self) -> usize {
        1 + self.reads_left.len()
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.swaps_left == 0
        } else {
            self.reads_left[tid - 1] == 0
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid == 0 {
            // Swap-and-free as one writer step: publish the new state,
            // free the old one. (Splitting it would only add schedules;
            // the hazard needs just one reader pinned across the free.)
            let old = self.current;
            let generation = self.states[old].generation + 1;
            self.states.push(SlotState { generation, snapshot: generation });
            self.live.push(true);
            self.current = self.states.len() - 1;
            self.live[old] = false;
            self.swaps_left -= 1;
            return Ok(());
        }
        let r = tid - 1;
        match self.pinned[r].take() {
            None => self.pinned[r] = Some(self.current),
            Some(idx) => {
                if !self.live[idx] {
                    return Err(format!("use-after-free: reader dereferenced freed state {idx}"));
                }
                self.reads_left[r] -= 1;
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Scope completion latch with help-draining
// ---------------------------------------------------------------------

/// Where the waiting scope is in its wait loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaiterState {
    /// About to check the pending count (top of the loop).
    Checking,
    /// Helped itself to a queued job; completion step pending.
    Helping,
    /// Parked on the condvar; runnable only after a notify.
    Parked,
    /// Pending count observed zero — the scope returned.
    Done,
    /// (Hazard variant only) decided to park from a stale check made
    /// outside the lock; the park step itself is still to come.
    DecidedPark,
}

/// Per-worker progress.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WorkerState {
    /// Looking at the queue.
    Idle,
    /// Popped a job; completion (decrement + notify) pending.
    Running,
}

/// The correct protocol, mirroring `Scope::wait` + `ScopeState::run`:
///
/// * workers pop a job (queue op) and complete it (pending decrement +
///   notify, one step — the real code does both under the scope lock);
/// * the waiter checks pending, helps drain the queue when it can, and
///   otherwise *rechecks pending and parks in one atomic step* — the
///   model of "condvar wait under the same mutex the completing worker
///   holds for its decrement + notify". That atomicity is exactly what
///   the lock buys, and exactly what [`LostWakeupLatchModel`] gives up.
///
/// The real `wait` additionally uses a 1 ms `wait_timeout`, a belt over
/// these braces; the model shows the braces alone suffice.
#[derive(Clone)]
pub struct LatchModel {
    /// Jobs queued and not yet popped.
    queue: usize,
    /// Jobs spawned and not yet completed (the latch).
    pending: usize,
    workers: Vec<WorkerState>,
    waiter: WaiterState,
    /// Total completions (each job must run exactly once).
    completed: usize,
    jobs: usize,
}

impl LatchModel {
    /// `workers` pool workers draining `jobs` pre-queued jobs, plus the
    /// waiting scope as the last thread.
    pub fn new(workers: usize, jobs: usize) -> Self {
        Self {
            queue: jobs,
            pending: jobs,
            workers: vec![WorkerState::Idle; workers],
            waiter: WaiterState::Checking,
            completed: 0,
            jobs,
        }
    }

    /// A worker's completion: decrement under the lock, notify when the
    /// latch hits zero (waking a parked waiter). One step — the real
    /// decrement and notify both run under the scope mutex.
    fn complete(&mut self) {
        self.pending -= 1;
        self.completed += 1;
        if self.pending == 0 && self.waiter == WaiterState::Parked {
            self.waiter = WaiterState::Checking;
        }
    }
}

impl Model for LatchModel {
    fn thread_count(&self) -> usize {
        self.workers.len() + 1
    }

    fn done(&self, tid: usize) -> bool {
        if tid < self.workers.len() {
            self.workers[tid] == WorkerState::Idle && self.queue == 0
        } else {
            self.waiter == WaiterState::Done
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if tid < self.workers.len() {
            !self.done(tid)
        } else {
            self.waiter != WaiterState::Parked && self.waiter != WaiterState::Done
        }
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        if tid < self.workers.len() {
            match self.workers[tid] {
                WorkerState::Idle => {
                    // Pop (the queue mutex makes this atomic).
                    if self.queue > 0 {
                        self.queue -= 1;
                        self.workers[tid] = WorkerState::Running;
                    }
                }
                WorkerState::Running => {
                    self.complete();
                    self.workers[tid] = WorkerState::Idle;
                }
            }
            return Ok(());
        }
        match self.waiter {
            WaiterState::Checking => {
                if self.pending == 0 {
                    self.waiter = WaiterState::Done;
                } else if self.queue > 0 {
                    // Help: pop a job to run inline.
                    self.queue -= 1;
                    self.waiter = WaiterState::Helping;
                } else {
                    // Lock; recheck; park — atomic, because the real
                    // condvar wait holds the same mutex the completing
                    // worker's decrement + notify runs under.
                    if self.pending == 0 {
                        self.waiter = WaiterState::Done;
                    } else {
                        self.waiter = WaiterState::Parked;
                    }
                }
            }
            WaiterState::Helping => {
                self.complete();
                self.waiter = WaiterState::Checking;
            }
            state => return Err(format!("waiter stepped in unexpected state {state:?}")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if self.waiter != WaiterState::Done {
            return Err(format!("scope did not terminate (waiter {:?})", self.waiter));
        }
        if self.completed != self.jobs {
            return Err(format!("{} completions for {} jobs", self.completed, self.jobs));
        }
        Ok(())
    }
}

/// Hazard variant: the waiter decides to park from a pending check made
/// *outside* the lock, then parks in a separate step — the classic lost
/// wakeup. The last completion's notify can land in the window between
/// the stale check and the park; the waiter then sleeps forever, which
/// the checker reports as a deadlock.
#[derive(Clone)]
pub struct LostWakeupLatchModel {
    inner: LatchModel,
}

impl LostWakeupLatchModel {
    pub fn new(workers: usize, jobs: usize) -> Self {
        Self { inner: LatchModel::new(workers, jobs) }
    }
}

impl Model for LostWakeupLatchModel {
    fn thread_count(&self) -> usize {
        self.inner.thread_count()
    }

    fn done(&self, tid: usize) -> bool {
        self.inner.done(tid)
    }

    fn enabled(&self, tid: usize) -> bool {
        self.inner.enabled(tid)
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        let workers = self.inner.workers.len();
        if tid < workers {
            return self.inner.step(tid);
        }
        match self.inner.waiter {
            WaiterState::Checking => {
                if self.inner.pending == 0 {
                    self.inner.waiter = WaiterState::Done;
                } else if self.inner.queue > 0 {
                    self.inner.queue -= 1;
                    self.inner.waiter = WaiterState::Helping;
                } else {
                    // BUG: commit to parking on the value read here,
                    // without holding the lock for the park itself.
                    self.inner.waiter = WaiterState::DecidedPark;
                }
            }
            WaiterState::DecidedPark => {
                // BUG: park unconditionally; a notify that fired since
                // the check is lost.
                self.inner.waiter = WaiterState::Parked;
            }
            WaiterState::Helping => {
                self.inner.complete();
                self.inner.waiter = WaiterState::Checking;
            }
            state => return Err(format!("waiter stepped in unexpected state {state:?}")),
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        self.inner.check_final()
    }
}

// ---------------------------------------------------------------------
// RacySlice dense-cell accumulation
// ---------------------------------------------------------------------

/// The lossless CAS loop of `RacySlice::fetch_add`: each thread adds 1
/// to one shared cell `adds` times; a read step seeds the expected
/// value, a CAS step either commits `expected + 1` or reseeds from the
/// current value and retries. Every delta must land under every
/// schedule. (The search is finite: a CAS can only fail when another
/// thread's CAS succeeded since the read, and successes are bounded.)
#[derive(Clone)]
pub struct RacyModel {
    cell: u64,
    adds_left: Vec<usize>,
    /// Per-thread staged read (`cur` in the real loop); `None` between
    /// operations.
    staged: Vec<Option<u64>>,
    total: usize,
    /// True = the correct CAS protocol; false = the hazard variant's
    /// plain load/store `add`, which loses concurrent deltas.
    cas: bool,
}

impl RacyModel {
    /// `threads` threads, `adds` lossless increments each.
    pub fn new(threads: usize, adds: usize) -> Self {
        Self {
            cell: 0,
            adds_left: vec![adds; threads],
            staged: vec![None; threads],
            total: threads * adds,
            cas: true,
        }
    }

    /// Hazard variant: the same schedule space driven through
    /// `RacySlice::add`'s non-atomic load + store pair — correct only
    /// in the sparse-collision regime, and provably lossy here.
    pub fn lossy(threads: usize, adds: usize) -> Self {
        Self { cas: false, ..Self::new(threads, adds) }
    }
}

impl Model for RacyModel {
    fn thread_count(&self) -> usize {
        self.adds_left.len()
    }

    fn done(&self, tid: usize) -> bool {
        self.adds_left[tid] == 0
    }

    fn step(&mut self, tid: usize) -> Result<(), String> {
        match self.staged[tid] {
            None => self.staged[tid] = Some(self.cell),
            Some(expected) => {
                if !self.cas {
                    // Unconditional store: the racing-add bug.
                    self.cell = expected + 1;
                    self.staged[tid] = None;
                    self.adds_left[tid] -= 1;
                } else if self.cell == expected {
                    // CAS success.
                    self.cell = expected + 1;
                    self.staged[tid] = None;
                    self.adds_left[tid] -= 1;
                } else {
                    // CAS failure: reseed and retry (the `Err(now)` arm).
                    self.staged[tid] = Some(self.cell);
                }
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if self.cell as usize == self.total {
            Ok(())
        } else {
            Err(format!("lost update: {} deltas landed of {}", self.cell, self.total))
        }
    }
}
