//! A bounded, deterministic model checker for thread interleavings —
//! the loom idea (exhaustively enumerate schedules of an explicit state
//! machine) vendored down to the ~150 lines this workspace needs.
//!
//! A protocol under test is expressed as a [`Model`]: a cloneable state
//! machine whose threads advance one *atomic step* at a time. The
//! checker runs a depth-first search over every schedule (every
//! sequence of "which thread steps next" choices), cloning the state at
//! each branch point. A step may fail (an invariant observed mid-flight
//! was violated), and the final state is checked once every thread is
//! done. The search is:
//!
//! * **exhaustive** within the model's bounds — every interleaving of
//!   the declared steps is visited, so a bug that needs a specific
//!   3-thread timing *will* be found, unlike stress tests that merely
//!   make it likely;
//! * **deterministic** — no clocks, no real threads, no randomness; a
//!   failure replays from its schedule every time;
//! * **bounded** — models take size parameters, and the checker takes a
//!   schedule budget so CI time stays predictable. Exceeding the budget
//!   is reported as its own verdict, never silently passed.
//!
//! What this checks is the *protocol* (the ordering of loads, stores,
//! and CAS operations), not the compiled code: the models in
//! [`crate::models`] mirror the unsafe cores of `gmlfm-par` and
//! `gmlfm-service` step for step, under sequential consistency. That is
//! deliberately stronger than the declared orderings — see each model's
//! docs for why the checked interleavings still cover the failure modes
//! the weaker orderings admit (torn publication, lost wakeups, dropped
//! updates), which are reorderings *of these same steps*.

/// An explicit-state concurrent protocol: `thread_count` threads, each
/// advanced by [`Model::step`] until [`Model::done`].
pub trait Model: Clone {
    /// Number of threads in the model (fixed for a given instance).
    fn thread_count(&self) -> usize;

    /// Whether thread `tid` has finished all its steps.
    fn done(&self, tid: usize) -> bool;

    /// Whether thread `tid` can take a step *now* (false models a
    /// blocked thread — e.g. parked on a condvar awaiting a notify).
    /// Must be true whenever the thread has a non-blocking step left;
    /// a thread that is not `done` and never becomes `enabled` again is
    /// reported as a deadlock.
    fn enabled(&self, tid: usize) -> bool {
        !self.done(tid)
    }

    /// Advances thread `tid` by one atomic step. Returns `Err` when the
    /// step observes a violated invariant (the checker reports it with
    /// the schedule that led here).
    fn step(&mut self, tid: usize) -> Result<(), String>;

    /// Invariants of the final state, once every thread is done.
    fn check_final(&self) -> Result<(), String>;
}

/// Exploration statistics for a passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Complete schedules explored (root-to-leaf paths).
    pub schedules: usize,
    /// Total steps executed across all schedules.
    pub steps: usize,
}

/// Outcome of checking one model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every schedule within budget ran to completion and passed.
    Pass(Stats),
    /// Some schedule failed; `schedule` is the thread-id sequence that
    /// reproduces it deterministically.
    Fail { schedule: Vec<usize>, error: String },
    /// The schedule budget was exhausted before the space was covered.
    /// Treated as a configuration error by callers — shrink the model
    /// or raise the budget; never report it as a pass.
    BudgetExceeded { budget: usize },
}

impl Verdict {
    /// True only for [`Verdict::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass(_))
    }
}

/// Exhaustively explores every interleaving of `model`, up to `budget`
/// complete schedules.
pub fn check<M: Model>(model: &M, budget: usize) -> Verdict {
    let mut explorer = Explorer { budget, stats: Stats { schedules: 0, steps: 0 }, schedule: Vec::new() };
    match explorer.dfs(model.clone()) {
        Ok(()) if explorer.stats.schedules > budget => Verdict::BudgetExceeded { budget },
        Ok(()) => Verdict::Pass(explorer.stats),
        Err(Exhausted::Budget) => Verdict::BudgetExceeded { budget },
        Err(Exhausted::Failed(error)) => Verdict::Fail { schedule: explorer.schedule, error },
    }
}

enum Exhausted {
    Budget,
    Failed(String),
}

struct Explorer {
    budget: usize,
    stats: Stats,
    /// On failure: the schedule prefix that reproduces it (maintained
    /// during DFS, left in place when an error propagates up).
    schedule: Vec<usize>,
}

impl Explorer {
    fn dfs<M: Model>(&mut self, state: M) -> Result<(), Exhausted> {
        let n = state.thread_count();
        let runnable: Vec<usize> = (0..n).filter(|&t| !state.done(t) && state.enabled(t)).collect();
        if runnable.is_empty() {
            if (0..n).all(|t| state.done(t)) {
                // A complete schedule.
                self.stats.schedules += 1;
                if self.stats.schedules > self.budget {
                    return Err(Exhausted::Budget);
                }
                return state.check_final().map_err(Exhausted::Failed);
            }
            // Not all done, none enabled: a deadlock is a finding, not
            // an exploration dead end.
            let stuck: Vec<usize> = (0..n).filter(|&t| !state.done(t)).collect();
            return Err(Exhausted::Failed(format!("deadlock: threads {stuck:?} blocked forever")));
        }
        for tid in runnable {
            let mut next = state.clone();
            self.schedule.push(tid);
            self.stats.steps += 1;
            match next.step(tid) {
                Ok(()) => self.dfs(next)?,
                Err(error) => return Err(Exhausted::Failed(error)),
            }
            self.schedule.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads each increment a "non-atomic" counter via a
    /// read-then-write pair of steps: the classic lost update. The
    /// checker must find the interleaving where both read before either
    /// writes.
    #[derive(Clone)]
    struct LostUpdate {
        value: u32,
        /// Per-thread: None = not read yet; Some(v) = read v, write
        /// pending; u32::MAX sentinel via `wrote` flag below.
        read: [Option<u32>; 2],
        wrote: [bool; 2],
    }

    impl Model for LostUpdate {
        fn thread_count(&self) -> usize {
            2
        }
        fn done(&self, tid: usize) -> bool {
            self.wrote[tid]
        }
        fn step(&mut self, tid: usize) -> Result<(), String> {
            match self.read[tid] {
                None => self.read[tid] = Some(self.value),
                Some(v) => {
                    self.value = v + 1;
                    self.wrote[tid] = true;
                }
            }
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            if self.value == 2 {
                Ok(())
            } else {
                Err(format!("lost update: final value {} != 2", self.value))
            }
        }
    }

    #[test]
    fn finds_the_lost_update_interleaving() {
        let model = LostUpdate { value: 0, read: [None; 2], wrote: [false; 2] };
        match check(&model, 1_000) {
            Verdict::Fail { schedule, error } => {
                assert!(error.contains("lost update"), "{error}");
                // Replay: the reported schedule must reproduce the bug.
                let mut replay = model.clone();
                for &tid in &schedule {
                    replay.step(tid).unwrap();
                }
                assert!(replay.check_final().is_err(), "schedule {schedule:?} must replay the failure");
            }
            other => panic!("expected a failure, got {other:?}"),
        }
    }

    /// The same counter with an atomic single-step increment passes.
    #[derive(Clone)]
    struct AtomicUpdate {
        value: u32,
        stepped: [bool; 3],
    }

    impl Model for AtomicUpdate {
        fn thread_count(&self) -> usize {
            3
        }
        fn done(&self, tid: usize) -> bool {
            self.stepped[tid]
        }
        fn step(&mut self, tid: usize) -> Result<(), String> {
            self.value += 1;
            self.stepped[tid] = true;
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            (self.value == 3).then_some(()).ok_or_else(|| "missed increment".into())
        }
    }

    #[test]
    fn atomic_steps_pass_and_count_schedules() {
        match check(&AtomicUpdate { value: 0, stepped: [false; 3] }, 1_000) {
            Verdict::Pass(stats) => {
                // 3 threads × 1 step each → 3! = 6 interleavings.
                assert_eq!(stats.schedules, 6);
            }
            other => panic!("expected a pass, got {other:?}"),
        }
    }

    /// A thread that is never enabled while another must still finish is
    /// a deadlock, and the checker says so.
    #[derive(Clone)]
    struct Stuck {
        first_done: bool,
    }

    impl Model for Stuck {
        fn thread_count(&self) -> usize {
            2
        }
        fn done(&self, tid: usize) -> bool {
            tid == 0 && self.first_done
        }
        fn enabled(&self, tid: usize) -> bool {
            tid == 0 && !self.first_done
        }
        fn step(&mut self, tid: usize) -> Result<(), String> {
            assert_eq!(tid, 0);
            self.first_done = true;
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn deadlocks_are_reported_not_skipped() {
        match check(&Stuck { first_done: false }, 1_000) {
            Verdict::Fail { error, .. } => assert!(error.contains("deadlock"), "{error}"),
            other => panic!("expected a deadlock finding, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_its_own_verdict() {
        assert_eq!(
            check(&AtomicUpdate { value: 0, stepped: [false; 3] }, 3),
            Verdict::BudgetExceeded { budget: 3 }
        );
    }
}
