//! CLI for the workspace correctness tooling.
//!
//! ```text
//! cargo run -p gmlfm-analyze -- check              # lints + UNSAFETY.md freshness + interleave suite (CI gate)
//! cargo run -p gmlfm-analyze -- lint               # lints only
//! cargo run -p gmlfm-analyze -- unsafety [--write] # print or write UNSAFETY.md
//! cargo run -p gmlfm-analyze -- interleave         # model-check the unsafe protocols
//! ```
//!
//! Exit code 0 = clean; 1 = findings / stale inventory / checker
//! failure; 2 = usage error.

use gmlfm_analyze::sched::Verdict;
use gmlfm_analyze::{
    inventory, run_interleave_suite, run_lints, unsafe_inventory, workspace_root, CI_SCHEDULE_BUDGET,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("check") => check(),
        Some("lint") => lint(),
        Some("unsafety") => unsafety(args.iter().any(|a| a == "--write")),
        Some("interleave") => interleave(),
        _ => {
            eprintln!("usage: gmlfm-analyze <check|lint|unsafety [--write]|interleave>");
            ExitCode::from(2)
        }
    }
}

/// Prints findings in `file:line: Lx: message` form; returns the count.
fn report_lints() -> usize {
    let files = run_lints(&workspace_root());
    let mut count = 0usize;
    for file in &files {
        for finding in &file.report.findings {
            println!("{}:{}: {}: {}", file.rel, finding.line, finding.lint, finding.message);
            count += 1;
        }
    }
    count
}

fn lint() -> ExitCode {
    let count = report_lints();
    if count == 0 {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("lint: {count} finding(s)");
        ExitCode::FAILURE
    }
}

fn unsafety(write: bool) -> ExitCode {
    let root = workspace_root();
    let files = run_lints(&root);
    let rendered = inventory::render(&unsafe_inventory(&files));
    if write {
        let path = inventory::unsafety_path(&root);
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
        ExitCode::SUCCESS
    } else {
        print!("{rendered}");
        ExitCode::SUCCESS
    }
}

/// Runs the interleaving suite and prints one line per protocol;
/// returns the number of miscalibrated outcomes.
fn report_interleave() -> usize {
    let mut bad = 0usize;
    for check in run_interleave_suite(CI_SCHEDULE_BUDGET) {
        let status = match (&check.verdict, check.ok()) {
            (Verdict::Pass(stats), true) => {
                format!("ok (pass: {} schedules, {} steps)", stats.schedules, stats.steps)
            }
            (Verdict::Fail { schedule, error }, true) => {
                format!("ok (found as required: {error}; schedule {schedule:?})")
            }
            (Verdict::Pass(_), false) => "MISCALIBRATED: planted bug not found".to_string(),
            (Verdict::Fail { schedule, error }, false) => {
                format!("FAILED: {error}; schedule {schedule:?}")
            }
            (Verdict::BudgetExceeded { budget }, _) => {
                format!("BUDGET EXCEEDED at {budget} schedules — shrink the model or raise the budget")
            }
        };
        if !check.ok() {
            bad += 1;
        }
        println!("interleave: {} — {status}", check.name);
    }
    bad
}

fn interleave() -> ExitCode {
    if report_interleave() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The CI gate: lints, inventory freshness, interleave suite. Runs all
/// three even when an early one fails, so CI output shows everything.
fn check() -> ExitCode {
    let root = workspace_root();
    let mut failed = false;

    let findings = report_lints();
    if findings > 0 {
        println!("check: lints — {findings} finding(s)");
        failed = true;
    } else {
        println!("check: lints — clean");
    }

    let files = run_lints(&root);
    let rendered = inventory::render(&unsafe_inventory(&files));
    match inventory::check_fresh(&root, &rendered) {
        Ok(()) => println!("check: UNSAFETY.md — fresh"),
        Err(e) => {
            println!("check: UNSAFETY.md — {e}");
            failed = true;
        }
    }

    let bad = report_interleave();
    if bad > 0 {
        println!("check: interleave — {bad} protocol(s) off expectation");
        failed = true;
    } else {
        println!("check: interleave — all protocols as expected");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
