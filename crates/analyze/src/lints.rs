//! The four workspace lints, evaluated over the [`crate::lexer`] token
//! stream of each source file.
//!
//! | id | rule |
//! |----|------|
//! | L1 | every `unsafe` block/fn/impl carries a `// SAFETY:` comment |
//! | L2 | no `unwrap`/`expect`/panicking macros on serving hot paths |
//! | L3 | no `HashMap`/`HashSet`, no uncached `available_parallelism`, in deterministic-output code |
//! | L4 | every `Ordering::*` use in the concurrency core carries a `// ORDERING:` comment |
//!
//! Scope is path-based and centralised in [`lint_file`]'s caller (see
//! [`crate::run_lints`]); this module implements the per-file token
//! rules, all of which share two pieces of local structure: the
//! *justification comment* rule (a trailing same-line comment or a
//! contiguous `//` block directly above) and *test-region exclusion*
//! (`#[cfg(test)] mod … { … }` spans, where the panic-freedom rules do
//! not apply).

use crate::lexer::{lex, Token, TokenKind};

/// One lint finding, formatted as `file:line: Lx: message` by the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `L1` … `L4`.
    pub lint: &'static str,
    /// 1-indexed source line.
    pub line: usize,
    pub message: String,
}

/// One inventoried `unsafe` site (the machine-readable side of L1, fed
/// into `UNSAFETY.md` by [`crate::inventory`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    /// 1-indexed line of the `unsafe` keyword.
    pub line: usize,
    /// `block`, `fn`, `impl`, or `trait`.
    pub kind: &'static str,
    /// First line of the SAFETY comment, `// SAFETY:` prefix stripped
    /// (empty when the site is undocumented — an L1 finding).
    pub justification: String,
}

/// Which rules apply to one file; resolved from its path by the caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintScope {
    /// L2: ban `unwrap`/`expect`/`panic!`-family in non-test code.
    pub panic_freedom: bool,
    /// L3: ban `HashMap`/`HashSet` in non-test code.
    pub no_hash_collections: bool,
    /// L3: ban `available_parallelism` anywhere in the file.
    pub no_available_parallelism: bool,
    /// L4: require `// ORDERING:` on every `Ordering::…` use.
    pub ordering_justification: bool,
}

/// Output of linting one file: diagnostics plus the unsafe inventory
/// (the latter collected for *every* file — L1 is workspace-wide).
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Lints one file's source under `scope`. L1 always runs; the scoped
/// rules run when their flag is set.
pub fn lint_file(src: &str, scope: LintScope) -> FileReport {
    let tokens = lex(src);
    let test_lines = test_region_lines(&tokens);
    let mut report = FileReport::default();

    l1_undocumented_unsafe(&tokens, &mut report);
    if scope.panic_freedom {
        l2_panic_freedom(&tokens, &test_lines, &mut report);
    }
    if scope.no_hash_collections {
        l3_hash_collections(&tokens, &test_lines, &mut report);
    }
    if scope.no_available_parallelism {
        l3_available_parallelism(&tokens, &mut report);
    }
    if scope.ordering_justification {
        l4_ordering_justification(&tokens, &test_lines, &mut report);
    }
    report
}

/// Line spans covered by `#[cfg(test)] mod … { … }` regions, where the
/// panic-freedom and determinism rules don't apply (tests assert by
/// panicking; that's their job).
fn test_region_lines(tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<(usize, &TokenKind)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_) | TokenKind::BlockComment(_)))
        .map(|(i, t)| (i, &t.kind))
        .collect();
    let mut spans = Vec::new();
    let mut s = 0usize;
    while s < sig.len() {
        // Match `# [ cfg ( test ) ] mod name {`, tolerating further
        // attributes between the `]` and the `mod`.
        if !is_cfg_test_attr(&sig, s) {
            s += 1;
            continue;
        }
        // Skip to past this attribute's closing `]` (index s+6).
        let mut i = s + 7;
        // Allow more attributes (e.g. `#[allow(…)]`) before `mod`.
        while matches!(sig.get(i).map(|(_, k)| *k), Some(TokenKind::Punct('#'))) {
            i += 1;
            let mut depth = 0usize;
            while let Some((_, k)) = sig.get(i) {
                match k {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        let is_mod = matches!(sig.get(i).map(|(_, k)| *k), Some(TokenKind::Ident(w)) if w == "mod");
        if !is_mod {
            s += 1;
            continue;
        }
        // Find the module's opening brace, then its matching close.
        let mut j = i + 1;
        while let Some((_, k)) = sig.get(j) {
            if matches!(k, TokenKind::Punct('{') | TokenKind::Punct(';')) {
                break;
            }
            j += 1;
        }
        if matches!(sig.get(j).map(|(_, k)| *k), Some(TokenKind::Punct('{'))) {
            let open_line = tokens[sig[j].0].line;
            let mut depth = 0usize;
            let mut close_line = open_line;
            let mut k_idx = j;
            while let Some((ti, k)) = sig.get(k_idx) {
                match k {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            close_line = tokens[*ti].line;
                            break;
                        }
                    }
                    _ => {}
                }
                k_idx += 1;
            }
            spans.push((open_line, close_line));
            s = k_idx.max(s + 1);
        } else {
            s += 1;
        }
    }
    spans
}

/// `sig[s..]` starts with exactly `# [ cfg ( test ) ]`.
fn is_cfg_test_attr(sig: &[(usize, &TokenKind)], s: usize) -> bool {
    let want: [&dyn Fn(&TokenKind) -> bool; 7] = [
        &|k| matches!(k, TokenKind::Punct('#')),
        &|k| matches!(k, TokenKind::Punct('[')),
        &|k| matches!(k, TokenKind::Ident(w) if w == "cfg"),
        &|k| matches!(k, TokenKind::Punct('(')),
        &|k| matches!(k, TokenKind::Ident(w) if w == "test"),
        &|k| matches!(k, TokenKind::Punct(')')),
        &|k| matches!(k, TokenKind::Punct(']')),
    ];
    want.iter()
        .enumerate()
        .all(|(off, pred)| sig.get(s + off).is_some_and(|(_, k)| pred(k)))
}

fn in_spans(line: usize, spans: &[(usize, usize)]) -> bool {
    spans.iter().any(|&(a, b)| (a..=b).contains(&line))
}

/// Whether a token at `idx` has a justification comment: a marker-bearing
/// comment on the same line (trailing) or a contiguous comment block
/// ending on the immediately preceding code-free lines.
fn has_justification(tokens: &[Token], idx: usize, marker: &str) -> bool {
    let line = tokens[idx].line;
    // Trailing same-line comment.
    let trailing = tokens.iter().any(|t| {
        t.line == line
            && matches!(&t.kind, TokenKind::LineComment(text) | TokenKind::BlockComment(text)
                if text.contains(marker))
    });
    if trailing {
        return true;
    }
    // Contiguous comment block directly above: walk up line by line;
    // every line until the marker must be a comment-only line.
    let mut want = line.saturating_sub(1);
    while want > 0 {
        let on_line: Vec<&Token> = tokens.iter().filter(|t| t.line == want).collect();
        if on_line.is_empty() {
            // Blank line (or a line fully inside a multi-line construct)
            // breaks contiguity.
            return false;
        }
        let all_comments = on_line.iter().all(|t| {
            matches!(t.kind, TokenKind::LineComment(_) | TokenKind::BlockComment(_))
                // An attribute line (`#[inline]`) between comment and
                // item keeps contiguity: `// SAFETY:` above `#[inline]`
                // above `unsafe fn` is documented.
                || matches!(t.kind, TokenKind::Punct('#') | TokenKind::Punct('[') | TokenKind::Punct(']')
                    | TokenKind::Punct('(') | TokenKind::Punct(')') | TokenKind::Ident(_))
                    && line_is_attribute(on_line.as_slice())
        });
        if !all_comments {
            return false;
        }
        if on_line.iter().any(|t| {
            matches!(&t.kind, TokenKind::LineComment(text) | TokenKind::BlockComment(text)
                if text.contains(marker))
        }) {
            return true;
        }
        want -= 1;
    }
    false
}

/// A line whose first token is `#` is an attribute line.
fn line_is_attribute(on_line: &[&Token]) -> bool {
    matches!(on_line.first().map(|t| &t.kind), Some(TokenKind::Punct('#')))
}

/// The first line of the justification comment block for `idx`, marker
/// prefix stripped — what the unsafe inventory records.
fn justification_text(tokens: &[Token], idx: usize, marker: &str) -> Option<String> {
    let line = tokens[idx].line;
    let extract = |text: &str| -> Option<String> {
        let at = text.find(marker)?;
        Some(text[at + marker.len()..].trim().trim_end_matches("*/").trim().to_string())
    };
    // Trailing first, then the block above (mirrors has_justification).
    for t in tokens.iter().filter(|t| t.line == line) {
        if let TokenKind::LineComment(text) | TokenKind::BlockComment(text) = &t.kind {
            if let Some(j) = extract(text) {
                return Some(j);
            }
        }
    }
    let mut want = line.saturating_sub(1);
    while want > 0 {
        let on_line: Vec<&Token> = tokens.iter().filter(|t| t.line == want).collect();
        if on_line.is_empty() {
            return None;
        }
        for t in &on_line {
            if let TokenKind::LineComment(text) | TokenKind::BlockComment(text) = &t.kind {
                if let Some(j) = extract(text) {
                    return Some(j);
                }
            }
        }
        if !on_line
            .iter()
            .all(|t| matches!(t.kind, TokenKind::LineComment(_) | TokenKind::BlockComment(_)))
            && !line_is_attribute(on_line.as_slice())
        {
            return None;
        }
        want -= 1;
    }
    None
}

/// Significant-token view: indices of non-comment tokens.
fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_) | TokenKind::BlockComment(_)))
        .map(|(i, _)| i)
        .collect()
}

fn ident_at<'t>(tokens: &'t [Token], sig: &[usize], pos: usize) -> Option<&'t str> {
    match &tokens[*sig.get(pos)?].kind {
        TokenKind::Ident(w) => Some(w),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], sig: &[usize], pos: usize) -> Option<char> {
    match &tokens[*sig.get(pos)?].kind {
        TokenKind::Punct(c) => Some(*c),
        _ => None,
    }
}

/// L1: every `unsafe` keyword introduces a block, fn, impl, or trait;
/// each needs a `SAFETY:` comment. Also records the inventory.
fn l1_undocumented_unsafe(tokens: &[Token], report: &mut FileReport) {
    let sig = significant(tokens);
    for (pos, &idx) in sig.iter().enumerate() {
        if !matches!(&tokens[idx].kind, TokenKind::Ident(w) if w == "unsafe") {
            continue;
        }
        // Classify from the next significant token.
        let kind = match (ident_at(tokens, &sig, pos + 1), punct_at(tokens, &sig, pos + 1)) {
            (_, Some('{')) => "block",
            (Some("fn"), _) => "fn",
            (Some("impl"), _) => "impl",
            (Some("trait"), _) => "trait",
            (Some("extern"), _) => "fn",
            // `unsafe` in other positions (e.g. a fn-pointer type) needs
            // no justification of its own.
            _ => continue,
        };
        let justification = justification_text(tokens, idx, "SAFETY:").unwrap_or_default();
        if !has_justification(tokens, idx, "SAFETY:") {
            report.findings.push(Finding {
                lint: "L1",
                line: tokens[idx].line,
                message: format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment (same line or the comment block directly above)"
                ),
            });
        }
        report
            .unsafe_sites
            .push(UnsafeSite { line: tokens[idx].line, kind, justification });
    }
}

/// L2: `.unwrap(` / `.expect(` method calls and `panic!`-family macros
/// outside test regions.
fn l2_panic_freedom(tokens: &[Token], test_lines: &[(usize, usize)], report: &mut FileReport) {
    const BANNED_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];
    let sig = significant(tokens);
    for (pos, &idx) in sig.iter().enumerate() {
        let TokenKind::Ident(word) = &tokens[idx].kind else { continue };
        let line = tokens[idx].line;
        if in_spans(line, test_lines) {
            continue;
        }
        // `.unwrap(` / `.expect(` — exact ident, preceded by `.`,
        // followed by `(` (so `unwrap_or_else` and field names pass).
        if (word == "unwrap" || word == "expect")
            && pos > 0
            && punct_at(tokens, &sig, pos - 1) == Some('.')
            && punct_at(tokens, &sig, pos + 1) == Some('(')
        {
            report.findings.push(Finding {
                lint: "L2",
                line,
                message: format!(
                    "`.{word}()` on a serving hot path — return a typed error or restructure so infallibility is in the types"
                ),
            });
        }
        // `panic!(` family — ident followed by `!`. `assert!`/
        // `debug_assert!` stay allowed: they check invariants rather
        // than mark unfinished or "can't happen" paths.
        if BANNED_MACROS.contains(&word.as_str()) && punct_at(tokens, &sig, pos + 1) == Some('!') {
            report.findings.push(Finding {
                lint: "L2",
                line,
                message: format!(
                    "`{word}!` on a serving hot path — handle the case or encode it in the types"
                ),
            });
        }
    }
}

/// L3a: `HashMap`/`HashSet` in code feeding deterministic outputs
/// (iteration order is randomised per process — results would differ
/// run to run).
fn l3_hash_collections(tokens: &[Token], test_lines: &[(usize, usize)], report: &mut FileReport) {
    for t in tokens {
        let TokenKind::Ident(word) = &t.kind else { continue };
        if (word == "HashMap" || word == "HashSet") && !in_spans(t.line, test_lines) {
            report.findings.push(Finding {
                lint: "L3",
                line: t.line,
                message: format!(
                    "`{word}` in deterministic-output code — iteration order is per-process random; use BTreeMap/BTreeSet or a Vec"
                ),
            });
        }
    }
}

/// L3b: `available_parallelism` outside the one cached accessor —
/// anywhere else, the thread count read can change between calls and
/// shift shard boundaries mid-computation.
fn l3_available_parallelism(tokens: &[Token], report: &mut FileReport) {
    for t in tokens {
        if matches!(&t.kind, TokenKind::Ident(w) if w == "available_parallelism") {
            report.findings.push(Finding {
                lint: "L3",
                line: t.line,
                message: "`available_parallelism()` outside the cached `Parallelism::auto()` accessor — thread counts must be read once and carried as a value".into(),
            });
        }
    }
}

/// L4: each line using `Ordering::…` needs an `ORDERING:` comment
/// (trailing, or in the contiguous comment block above).
fn l4_ordering_justification(tokens: &[Token], test_lines: &[(usize, usize)], report: &mut FileReport) {
    let sig = significant(tokens);
    let mut flagged_lines = Vec::new();
    for (pos, &idx) in sig.iter().enumerate() {
        if !matches!(&tokens[idx].kind, TokenKind::Ident(w) if w == "Ordering") {
            continue;
        }
        // `Ordering` followed by `::` — a use site, not an import list
        // entry (`use …::{…, Ordering};`) or a bare mention.
        if punct_at(tokens, &sig, pos + 1) != Some(':') || punct_at(tokens, &sig, pos + 2) != Some(':') {
            continue;
        }
        let line = tokens[idx].line;
        if in_spans(line, test_lines) || flagged_lines.contains(&line) {
            continue;
        }
        flagged_lines.push(line);
        if !has_justification(tokens, idx, "ORDERING:") {
            report.findings.push(Finding {
                lint: "L4",
                line,
                message: "`Ordering::…` without a `// ORDERING:` justification (same line or the comment block directly above)".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_all(src: &str) -> FileReport {
        lint_file(
            src,
            LintScope {
                panic_freedom: true,
                no_hash_collections: true,
                no_available_parallelism: true,
                ordering_justification: true,
            },
        )
    }

    #[test]
    fn documented_unsafe_passes_and_is_inventoried() {
        let src = "
// SAFETY: the pointer is valid for the borrow's duration.
unsafe { ptr.read() }
";
        let report = lint_all(src);
        assert!(report.findings.iter().all(|f| f.lint != "L1"), "{:?}", report.findings);
        assert_eq!(report.unsafe_sites.len(), 1);
        assert_eq!(report.unsafe_sites[0].kind, "block");
        assert!(report.unsafe_sites[0].justification.starts_with("the pointer is valid"));
    }

    #[test]
    fn undocumented_unsafe_fires() {
        let report = lint_all("unsafe { ptr.read() }");
        assert!(report.findings.iter().any(|f| f.lint == "L1"));
    }

    #[test]
    fn unsafe_impl_and_fn_are_classified() {
        let src = "
// SAFETY: all access is atomic.
unsafe impl Sync for X {}
// SAFETY: caller upholds the aliasing contract.
unsafe fn read_it() {}
";
        let report = lint_all(src);
        assert!(report.findings.iter().all(|f| f.lint != "L1"), "{:?}", report.findings);
        let kinds: Vec<&str> = report.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["impl", "fn"]);
    }

    #[test]
    fn test_modules_are_exempt_from_l2_but_not_l1() {
        let src = "
fn hot() -> i32 { 1 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { super::hot(); Some(1).unwrap(); panic!(\"assert style\"); }
}
";
        let report = lint_all(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn unwrap_variants_do_not_false_positive() {
        let src = "fn f(x: Option<i32>) -> i32 { x.unwrap_or(0) + x.unwrap_or_else(|| 1) }";
        let report = lint_all(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn ordering_import_line_is_not_a_use_site() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};";
        let report = lint_all(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn unjustified_ordering_fires_and_justified_passes() {
        let bad = "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }";
        assert!(lint_all(bad).findings.iter().any(|f| f.lint == "L4"));
        let good = "
fn f(a: &AtomicBool) {
    // ORDERING: Release pairs with the reader's Acquire.
    a.store(true, Ordering::Release);
}
";
        assert!(lint_all(good).findings.is_empty(), "{:?}", lint_all(good).findings);
    }
}
