//! A minimal token-level Rust lexer — just enough structure for the
//! lint pass to tell *code* apart from comments and string literals.
//!
//! The lints in this crate key off identifiers (`unsafe`, `unwrap`,
//! `HashMap`), macro bangs (`panic!`), and paths (`Ordering::Acquire`).
//! A plain substring grep misfires on all of them: `"unsafe"` inside a
//! string, `unwrap` in a doc comment, `panic` in a test name. The lexer
//! resolves exactly the constructs that cause those misfires:
//!
//! * line comments (`//`, and the `///` / `//!` doc forms) and block
//!   comments (`/* */`, nested, per the Rust grammar);
//! * string literals (`"…"` with escapes), raw strings (`r"…"`,
//!   `r#"…"#` at any hash depth), byte and byte-raw strings;
//! * char literals, disambiguated from lifetimes (`'a'` vs `'a`);
//! * identifiers/keywords, numbers, and single-char punctuation.
//!
//! It is *not* a parser: no expression structure, no type grammar.
//! Every lint that needs structure (test-module exclusion, "is this
//! ident a method call") works from local token patterns, which is
//! exactly as much syntax as the rules require.

/// One lexed token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-indexed line of the token's first character.
    pub line: usize,
}

/// What a token is; carries text only where a lint inspects it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// `// …` comment text, including the slashes (doc comments too).
    LineComment(String),
    /// `/* … */` comment text, including the delimiters.
    BlockComment(String),
    /// String literal of any flavour (escaped, raw, byte); text dropped.
    Str,
    /// Char literal (`'x'`, `'\n'`); text dropped.
    Char,
    /// Lifetime (`'a`, `'static`); text dropped.
    Lifetime,
    /// Numeric literal; text dropped.
    Num,
    /// Any other single character (`.`, `(`, `:`, `!`, `{`, …).
    Punct(char),
}

/// Lexes a whole source file into a token stream. Unterminated
/// constructs (an unclosed string or block comment) consume the rest of
/// the input rather than erroring: the lints degrade to "no findings in
/// the tail", which is the right failure mode for a linter over code
/// that `rustc` itself will reject.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1 }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                '/' if self.peek(1) == Some('/') => {
                    let text = self.take_line_comment();
                    out.push(Token { kind: TokenKind::LineComment(text), line });
                }
                '/' if self.peek(1) == Some('*') => {
                    let text = self.take_block_comment();
                    out.push(Token { kind: TokenKind::BlockComment(text), line });
                }
                '"' => {
                    self.take_string();
                    out.push(Token { kind: TokenKind::Str, line });
                }
                'r' | 'b' if self.at_raw_or_byte_string() => {
                    self.take_raw_or_byte_string();
                    out.push(Token { kind: TokenKind::Str, line });
                }
                '\'' => {
                    let kind = self.take_char_or_lifetime();
                    out.push(Token { kind, line });
                }
                c if c.is_alphabetic() || c == '_' => {
                    let text = self.take_ident();
                    out.push(Token { kind: TokenKind::Ident(text), line });
                }
                c if c.is_ascii_digit() => {
                    self.take_number();
                    out.push(Token { kind: TokenKind::Num, line });
                }
                c if c.is_whitespace() => {
                    self.bump();
                }
                c => {
                    self.bump();
                    out.push(Token { kind: TokenKind::Punct(c), line });
                }
            }
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn take_line_comment(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    fn take_block_comment(&mut self) -> String {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// Consumes a `"…"` literal (opening quote under the cursor),
    /// honouring `\"` and `\\` escapes.
    fn take_string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Whether the cursor sits at the start of a raw/byte string prefix:
    /// `r"`, `r#`, `b"`, `br"`, `br#`, `rb` is not Rust. A plain
    /// identifier starting with `r`/`b` (e.g. `result`) is rejected by
    /// requiring the quote/hash to follow immediately.
    fn at_raw_or_byte_string(&self) -> bool {
        match self.peek(0) {
            Some('r') => matches!(self.peek(1), Some('"') | Some('#')) && self.raw_hashes_then_quote(1),
            Some('b') => match self.peek(1) {
                Some('"') => true,
                Some('r') => matches!(self.peek(2), Some('"') | Some('#')) && self.raw_hashes_then_quote(2),
                _ => false,
            },
            _ => false,
        }
    }

    /// From `start` (just past the `r`), true when zero or more `#`s are
    /// followed by `"` — i.e. this really is a raw string, not `r#fn`
    /// (a raw identifier).
    fn raw_hashes_then_quote(&self, start: usize) -> bool {
        let mut i = start;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn take_raw_or_byte_string(&mut self) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        if self.peek(0) == Some('r') {
            self.bump();
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            self.bump(); // opening quote
                         // Scan to `"` followed by `hashes` `#`s.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            // b"…" — same escape rules as a plain string.
            self.take_string();
        }
    }

    /// `'x'` / `'\n'` → [`TokenKind::Char`]; `'a` / `'static` →
    /// [`TokenKind::Lifetime`]. The grammar's actual rule: a lifetime is
    /// a quote followed by an identifier *not* closed by another quote.
    fn take_char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume `\x`, then to the quote.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                TokenKind::Char
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    TokenKind::Char
                } else {
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // `'('`-style single-char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            None => TokenKind::Char,
        }
    }

    fn take_ident(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }

    fn take_number(&mut self) {
        // Greedy over digit-ish chars; `1.5` splits at the dot, which is
        // fine — no lint inspects numbers.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "unsafe unwrap()"; // unsafe in a comment
            /* unwrap() in a block
               comment */
            let b = r#"panic!("still a string")"#;
            let c = b"unsafe";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unsafe" || i == "unwrap" || i == "panic"), "{ids:?}");
    }

    #[test]
    fn real_code_tokens_survive() {
        let ids = idents("unsafe { x.unwrap() }");
        assert_eq!(ids, vec!["unsafe", "x", "unwrap"]);
    }

    #[test]
    fn lifetimes_do_not_eat_the_following_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()), "{ids:?}");
        let toks = lex("let c = 'x'; let l: &'static str = \"s\";");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Char));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn nested_block_comments_close_at_the_outer_level() {
        let ids = idents("/* a /* nested */ still comment */ real_code");
        assert_eq!(ids, vec!["real_code"]);
    }

    #[test]
    fn line_numbers_are_one_indexed_and_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<(String, usize)> = toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some((s, t.line)),
                _ => None,
            })
            .collect();
        assert_eq!(lines, vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let ids = idents("let r#fn = 1; other");
        assert!(ids.contains(&"fn".to_string()) || ids.contains(&"other".to_string()));
        // The `#` must not have swallowed the rest of the file.
        assert!(ids.contains(&"other".to_string()));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings_early() {
        let ids = idents(r#"let s = "a \" unsafe \" b"; tail"#);
        assert_eq!(ids, vec!["let", "s", "tail"]);
    }
}
