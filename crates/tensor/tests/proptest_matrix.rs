//! Property tests for the algebraic laws the matrix substrate must obey.

use gmlfm_tensor::{approx_eq, Matrix};
use proptest::prelude::*;

const DIM: usize = 4;
const TOL: f64 = 1e-9;

fn matrix() -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, DIM * DIM).prop_map(|data| Matrix::from_vec(DIM, DIM, data))
}

proptest! {
    #[test]
    fn addition_is_commutative(a in matrix(), b in matrix()) {
        prop_assert!(approx_eq(&(&a + &b), &(&b + &a), TOL));
    }

    #[test]
    fn addition_is_associative(a in matrix(), b in matrix(), c in matrix()) {
        let left = &(&a + &b) + &c;
        let right = &a + &(&b + &c);
        prop_assert!(approx_eq(&left, &right, TOL));
    }

    #[test]
    fn matmul_is_associative(a in matrix(), b in matrix(), c in matrix()) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        // Magnitudes reach ~DIM^2 * 1000, so compare with scaled tolerance.
        let scale = left.max_abs().max(1.0);
        prop_assert!(approx_eq(&left, &right, 1e-9 * scale));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(), b in matrix(), c in matrix()) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        let scale = left.max_abs().max(1.0);
        prop_assert!(approx_eq(&left, &right, 1e-9 * scale));
    }

    #[test]
    fn transpose_of_product_reverses_order(a in matrix(), b in matrix()) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        let scale = left.max_abs().max(1.0);
        prop_assert!(approx_eq(&left, &right, 1e-9 * scale));
    }

    #[test]
    fn identity_is_neutral(a in matrix()) {
        let eye = Matrix::eye(DIM);
        prop_assert!(approx_eq(&a.matmul(&eye), &a, TOL));
        prop_assert!(approx_eq(&eye.matmul(&a), &a, TOL));
    }

    #[test]
    fn frobenius_norm_is_subadditive(a in matrix(), b in matrix()) {
        prop_assert!((&a + &b).norm() <= a.norm() + b.norm() + TOL);
    }

    #[test]
    fn dot_is_bilinear(a in matrix(), b in matrix(), alpha in -5.0f64..5.0) {
        let scaled = a.scale(alpha);
        prop_assert!((scaled.dot(&b) - alpha * a.dot(&b)).abs() < 1e-7);
    }

    #[test]
    fn gram_matrices_are_psd(a in matrix()) {
        let gram = a.matmul_tn(&a);
        prop_assert!(gmlfm_tensor::linalg::is_positive_semi_definite(&gram, 1e-7));
    }

    #[test]
    fn axpy_matches_operator_form(a in matrix(), b in matrix(), alpha in -5.0f64..5.0) {
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let via_ops = &a + &b.scale(alpha);
        prop_assert!(approx_eq(&via_axpy, &via_ops, TOL));
    }
}
