//! Row-major dense matrix and its arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A dense, row-major `f64` matrix.
///
/// This is the single numeric container used throughout the workspace.
/// Cheap to clone for the small shapes used by FM-family models, and all
/// hot-path operations offer in-place variants so training loops can reuse
/// workhorse buffers.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8usize;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>10.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer of {} entries cannot fill a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must share a length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "from_rows: row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n x 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Copies row `r` into a fresh `1 x cols` matrix.
    pub fn row_matrix(&self, r: usize) -> Matrix {
        Matrix::from_vec(1, self.cols, self.row(r).to_vec())
    }

    /// Extracts column `c` as a plain vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul: {}x{} * {}x{} mismatched inner dimension",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner traversal contiguous for both
        // `rhs` and `out`, which matters for the k x k layer products in the
        // DNN distance function.
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = rhs.row(kk);
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materialising the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_tn: {}x{} ᵀ* {}x{} mismatched rows",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let o_row = out.row_mut(i);
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * rhsᵀ` without materialising the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_nt: {}x{} *ᵀ {}x{} mismatched cols",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` entry-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Applies `f` entry-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape matrices entry-wise.
    pub fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(rhs, "zip_with");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += alpha * rhs` (BLAS axpy), in place.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        self.assert_same_shape(rhs, "axpy");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `alpha`, in place.
    pub fn scale_inplace(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Returns `alpha * self`.
    pub fn scale(&self, alpha: f64) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Dot product of two same-shape matrices viewed as flat vectors.
    pub fn dot(&self, rhs: &Matrix) -> f64 {
        self.assert_same_shape(rhs, "dot");
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Largest absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Row-wise sums as an `rows x 1` column vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, 1);
        for r in 0..self.rows {
            out[(r, 0)] = self.row(r).iter().sum();
        }
        out
    }

    /// Column-wise sums as a `1 x cols` row vector.
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat: row mismatch {} vs {}", self.rows, rhs.rows);
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Vertical concatenation `[self ; rhs]`.
    pub fn vcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vcat: col mismatch {} vs {}", self.cols, rhs.cols);
        let mut data = Vec::with_capacity((self.rows + rhs.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix::from_vec(self.rows + rhs.rows, self.cols, data)
    }

    /// Gathers the given rows into a new matrix (embedding lookup).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (r, &idx) in indices.iter().enumerate() {
            assert!(idx < self.rows, "gather_rows: index {idx} out of {} rows", self.rows);
            out.row_mut(r).copy_from_slice(self.row(idx));
        }
        out
    }

    /// True when no entry is NaN or infinite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn assert_same_shape(&self, rhs: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "{op}: shape {}x{} vs {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {}x{}", self.rows, self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of {}x{}", self.rows, self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        self.axpy(-1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn constructors_produce_expected_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::eye(3)[(1, 1)], 1.0);
        assert_eq!(Matrix::eye(3)[(0, 1)], 0.0);
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Matrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
        assert_eq!(Matrix::filled(2, 2, 7.0).sum(), 28.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample(); // 2x3
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]); // 3x2
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_tn_and_nt_match_explicit_transpose() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -0.25, 3.0]]);
        let tn = a.matmul_tn(&b);
        let tn_explicit = a.transpose().matmul(&b);
        assert!(crate::approx_eq(&tn, &tn_explicit, 1e-12));
        let nt = a.matmul_nt(&b);
        let nt_explicit = a.matmul(&b.transpose());
        assert!(crate::approx_eq(&nt, &nt_explicit, 1e-12));
    }

    #[test]
    fn transpose_is_involutive() {
        let a = sample();
        assert!(crate::approx_eq(&a.transpose().transpose(), &a, 0.0));
    }

    #[test]
    fn hadamard_and_dot_agree() {
        let a = sample();
        let b = Matrix::filled(2, 3, 2.0);
        assert_eq!(a.hadamard(&b).sum(), a.dot(&b));
        assert_eq!(a.dot(&b), 42.0);
    }

    #[test]
    fn row_and_col_accessors() {
        let a = sample();
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2), vec![3.0, 6.0]);
        assert_eq!(a.row_matrix(0).shape(), (1, 3));
    }

    #[test]
    fn reductions() {
        let a = sample();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.sum_rows().as_slice(), &[6.0, 15.0]);
        assert_eq!(a.sum_cols().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.max_abs(), 6.0);
        assert!((a.norm_sq() - 91.0).abs() < 1e-12);
    }

    #[test]
    fn concat_and_gather() {
        let a = sample();
        let h = a.hcat(&a);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let v = a.vcat(&a);
        assert_eq!(v.shape(), (4, 3));
        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(g.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(g.row(2), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn inplace_ops() {
        let mut a = sample();
        let b = Matrix::filled(2, 3, 1.0);
        a.axpy(2.0, &b);
        assert_eq!(a[(0, 0)], 3.0);
        a.scale_inplace(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        a.fill_zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn operator_overloads() {
        let a = sample();
        let b = Matrix::filled(2, 3, 1.0);
        let sum = &a + &b;
        assert_eq!(sum[(1, 2)], 7.0);
        let diff = &sum - &b;
        assert!(crate::approx_eq(&diff, &a, 0.0));
        let scaled = &a * 3.0;
        assert_eq!(scaled[(0, 1)], 6.0);
        let neg = -&a;
        assert_eq!(neg[(0, 0)], -1.0);
        let mut c = a.clone();
        c += &b;
        c -= &b;
        assert!(crate::approx_eq(&c, &a, 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_mismatch() {
        let a = sample();
        let _ = a.matmul(&sample());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a = sample();
        assert!(a.is_finite());
        a[(0, 0)] = f64::NAN;
        assert!(!a.is_finite());
    }
}
