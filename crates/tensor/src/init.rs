//! Seeded random initialisation used by every model in the workspace.
//!
//! The paper initialises all parameters from a normal distribution with
//! mean 0 and standard deviation 0.01 (Section 4.4); [`normal`] with
//! `std = 0.01` reproduces that. Xavier/Glorot uniform initialisation is
//! provided for the deep baselines (NCF / DeepFM MLP towers) where a
//! 0.01-std normal would stall training.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG from a `u64` seed; the only RNG constructor the
/// workspace uses, so every experiment is bit-reproducible.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a `rows x cols` matrix with i.i.d. `N(mean, std²)` entries using a
/// Box-Muller transform (avoids pulling in `rand_distr`).
pub fn normal(rng: &mut StdRng, rows: usize, cols: usize, mean: f64, std: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| mean + std * standard_normal(rng))
}

/// One draw from the standard normal distribution.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    // Box-Muller; u1 is kept away from 0 so the log is finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Uniform `[-limit, limit)` matrix.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, limit: f64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Xavier/Glorot uniform limit `sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_limit(fan_in: usize, fan_out: usize) -> f64 {
    (6.0 / (fan_in + fan_out) as f64).sqrt()
}

/// Xavier-uniform initialised `fan_in x fan_out` matrix.
pub fn xavier(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    uniform(rng, fan_in, fan_out, xavier_limit(fan_in, fan_out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = normal(&mut seeded_rng(7), 4, 4, 0.0, 1.0);
        let b = normal(&mut seeded_rng(7), 4, 4, 0.0, 1.0);
        assert!(crate::approx_eq(&a, &b, 0.0));
        let c = normal(&mut seeded_rng(8), 4, 4, 0.0, 1.0);
        assert!(!crate::approx_eq(&a, &c, 1e-6));
    }

    #[test]
    fn normal_has_requested_moments() {
        let m = normal(&mut seeded_rng(42), 200, 200, 1.5, 2.0);
        let n = m.len() as f64;
        let mean = m.sum() / n;
        let var = m.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn uniform_respects_limit() {
        let m = uniform(&mut seeded_rng(1), 50, 50, 0.3);
        assert!(m.as_slice().iter().all(|v| (-0.3..0.3).contains(v)));
    }

    #[test]
    fn xavier_limit_formula() {
        assert!((xavier_limit(3, 3) - 1.0).abs() < 1e-12);
    }
}
