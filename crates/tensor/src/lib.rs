//! # gmlfm-tensor
//!
//! Dense `f64` matrix substrate for the GML-FM reproduction.
//!
//! Every model in this workspace (factorization machines, metric-learning
//! FMs, MLP baselines) is small dense math: embeddings of width `k` (tens to
//! hundreds), square `k x k` layer weights, and batches of a few hundred
//! rows.  A row-major [`Matrix`] over `f64` with explicit, allocation-aware
//! operations is all the substrate those models need, and keeping it
//! dependency-free makes the numerical behaviour of the whole reproduction
//! auditable.
//!
//! Vectors are represented as `1 x n` (row) or `n x 1` (column) matrices;
//! helpers such as [`Matrix::row_vector`] construct them.
//!
//! Shape mismatches are programming errors, not runtime conditions, so the
//! arithmetic here panics with a descriptive message instead of returning
//! `Result` (the same contract as `ndarray` and friends).

pub mod init;
pub mod linalg;
pub mod matrix;
pub mod stats;

pub use init::{seeded_rng, xavier_limit};
pub use matrix::Matrix;

/// Absolute tolerance used by the test-support comparisons in this crate.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most `tol` in every entry
/// and share the same shape.
pub fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_accepts_within_tolerance() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0 + 1e-12, 2.0 - 1e-12]]);
        assert!(approx_eq(&a, &b, 1e-9));
    }

    #[test]
    fn approx_eq_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(!approx_eq(&a, &b, 1.0));
    }
}
