//! Small dense linear-algebra routines used by the metric-learning core
//! and its tests: Cholesky factorisation (to certify positive
//! semi-definiteness of the learned Mahalanobis matrix `M = LᵀL`) and a
//! quadratic-form helper.

use crate::Matrix;

/// Attempts the Cholesky factorisation `A = R Rᵀ` of a symmetric matrix.
///
/// Returns `None` when `A` is not positive definite within `tol`. A
/// successful factorisation is a constructive proof of positive
/// definiteness, which the property tests use to certify that any
/// `M = LᵀL + eps·I` built by the Mahalanobis distance is valid.
pub fn cholesky(a: &Matrix, tol: f64) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "cholesky: matrix must be square");
    let n = a.rows();
    let mut r = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= r[(i, k)] * r[(j, k)];
            }
            if i == j {
                if sum < -tol {
                    return None;
                }
                r[(i, i)] = sum.max(0.0).sqrt();
            } else if r[(j, j)].abs() > tol {
                r[(i, j)] = sum / r[(j, j)];
            } else if sum.abs() > tol {
                // Zero pivot but non-zero coupling: not PSD.
                return None;
            }
        }
    }
    Some(r)
}

/// `true` when the symmetric matrix `a` is positive semi-definite within
/// `tol`, verified constructively via [`cholesky`].
pub fn is_positive_semi_definite(a: &Matrix, tol: f64) -> bool {
    cholesky(a, tol).is_some()
}

/// Quadratic form `xᵀ A x` for a column or row vector `x` of length
/// `a.rows()`.
pub fn quadratic_form(a: &Matrix, x: &[f64]) -> f64 {
    assert_eq!(a.rows(), a.cols(), "quadratic_form: matrix must be square");
    assert_eq!(a.rows(), x.len(), "quadratic_form: vector length mismatch");
    let mut total = 0.0;
    for i in 0..a.rows() {
        let mut row_acc = 0.0;
        for (j, &xj) in x.iter().enumerate() {
            row_acc += a[(i, j)] * xj;
        }
        total += x[i] * row_acc;
    }
    total
}

/// Symmetrises a matrix in place: `A <- (A + Aᵀ)/2`.
pub fn symmetrize(a: &mut Matrix) {
    assert_eq!(a.rows(), a.cols(), "symmetrize: matrix must be square");
    for i in 0..a.rows() {
        for j in 0..i {
            let avg = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = avg;
            a[(j, i)] = avg;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_recovers_known_factor() {
        // A = R Rᵀ with R lower-triangular.
        let r = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let a = r.matmul_nt(&r);
        let got = cholesky(&a, 1e-12).expect("PSD");
        assert!(crate::approx_eq(&got, &r, 1e-9));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a, 1e-12).is_none());
    }

    #[test]
    fn gram_matrices_are_psd() {
        let l = Matrix::from_rows(&[&[0.3, -1.2, 0.7], &[2.0, 0.0, -0.5], &[0.1, 0.1, 0.1]]);
        let m = l.matmul_tn(&l); // LᵀL
        assert!(is_positive_semi_definite(&m, 1e-9));
    }

    #[test]
    fn quadratic_form_matches_matmul() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = [0.5, -2.0];
        let xm = Matrix::row_vector(&x);
        let expected = xm.matmul(&a).matmul(&xm.transpose())[(0, 0)];
        assert!((quadratic_form(&a, &x) - expected).abs() < 1e-12);
    }

    #[test]
    fn symmetrize_averages_off_diagonals() {
        let mut a = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 1.0]]);
        symmetrize(&mut a);
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }
}
