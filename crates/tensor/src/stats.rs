//! Scalar statistics shared by the evaluation and experiment crates.

/// Sample mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance (0 when fewer than two observations).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation of two equal-length slices; 0 when degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        let flat = [3.0, 3.0, 3.0, 3.0];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }
}
