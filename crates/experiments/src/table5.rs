//! Table 5: ablations of GML-FM on MovieLens and Mercari-Ticket — the
//! transformation weight and Mahalanobis matrix, the number of DNN
//! layers, and the distance-function family.

use crate::datasets::make;
use crate::paper::TABLE5;
use crate::runner::{run_rating_gmlfm, run_topn_gmlfm, ExpConfig};
use gmlfm_core::{Distance, GmlFmConfig};
use gmlfm_data::{loo_split, rating_split, DatasetSpec, FieldMask};
use gmlfm_eval::Table;

fn variants(k: usize, seed: u64) -> Vec<(&'static str, GmlFmConfig)> {
    vec![
        ("w/o. weight & M", GmlFmConfig::euclidean_plain(k).with_seed(seed)),
        ("w/. M only", GmlFmConfig::mahalanobis(k).without_weight().with_seed(seed)),
        ("w/. weight & M", GmlFmConfig::mahalanobis(k).with_seed(seed)),
        ("#layers 0", GmlFmConfig::dnn(k, 0).with_seed(seed)),
        ("#layers 1", GmlFmConfig::dnn(k, 1).with_seed(seed)),
        ("#layers 2", GmlFmConfig::dnn(k, 2).with_seed(seed)),
        ("#layers 3", GmlFmConfig::dnn(k, 3).with_seed(seed)),
        ("Manhattan", GmlFmConfig::dnn(k, 1).with_distance(Distance::Manhattan).with_seed(seed)),
        ("Euclidean", GmlFmConfig::dnn(k, 1).with_seed(seed)),
        ("Chebyshev", GmlFmConfig::dnn(k, 1).with_distance(Distance::Chebyshev).with_seed(seed)),
        ("Cosine", GmlFmConfig::dnn(k, 1).with_distance(Distance::Cosine).with_seed(seed)),
    ]
}

/// Runs all 11 ablation rows on both datasets and both tasks; writes
/// `table5.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Table 5: GML-FM ablations (MovieLens + Mercari-Ticket) ==\n");
    let mut table =
        Table::new(&["Variant", "RMSE ML", "RMSE Ticket", "HR ML", "NDCG ML", "HR Ticket", "NDCG Ticket"]);
    let mut csv = Table::new(&[
        "variant",
        "rmse_ml",
        "rmse_ticket",
        "hr_ml",
        "ndcg_ml",
        "hr_ticket",
        "ndcg_ticket",
        "paper_rmse_ml",
        "paper_rmse_ticket",
        "paper_hr_ml",
        "paper_ndcg_ml",
        "paper_hr_ticket",
        "paper_ndcg_ticket",
    ]);

    let ml = make(DatasetSpec::MovieLens, cfg);
    let ticket = make(DatasetSpec::MercariTicket, cfg);
    let ml_mask = FieldMask::all(&ml.schema);
    let tk_mask = FieldMask::all(&ticket.schema);
    let ml_rating = rating_split(&ml, &ml_mask, 2, cfg.seed ^ 0x3333);
    let tk_rating = rating_split(&ticket, &tk_mask, 2, cfg.seed ^ 0x3334);
    let ml_loo = loo_split(&ml, &ml_mask, 2, 99, cfg.seed ^ 0x3335);
    let tk_loo = loo_split(&ticket, &tk_mask, 2, 99, cfg.seed ^ 0x3336);

    for (idx, (name, gml_cfg)) in variants(cfg.k, cfg.seed ^ 0x44).into_iter().enumerate() {
        eprintln!("[table5] {name}");
        let rmse_ml = run_rating_gmlfm(&gml_cfg, &ml, &ml_rating, cfg).rmse;
        let rmse_tk = run_rating_gmlfm(&gml_cfg, &ticket, &tk_rating, cfg).rmse;
        let topn_ml = run_topn_gmlfm(&gml_cfg, &ml, &ml_mask, &ml_loo, cfg);
        let topn_tk = run_topn_gmlfm(&gml_cfg, &ticket, &tk_mask, &tk_loo, cfg);
        let paper = TABLE5[idx].1;
        table.push_row(vec![
            name.to_string(),
            format!("{rmse_ml:.4} ({:.4})", paper[0]),
            format!("{rmse_tk:.4} ({:.4})", paper[1]),
            format!("{:.4} ({:.4})", topn_ml.hr, paper[2]),
            format!("{:.4} ({:.4})", topn_ml.ndcg, paper[3]),
            format!("{:.4} ({:.4})", topn_tk.hr, paper[4]),
            format!("{:.4} ({:.4})", topn_tk.ndcg, paper[5]),
        ]);
        csv.push_row(vec![
            name.to_string(),
            format!("{rmse_ml:.4}"),
            format!("{rmse_tk:.4}"),
            format!("{:.4}", topn_ml.hr),
            format!("{:.4}", topn_ml.ndcg),
            format!("{:.4}", topn_tk.hr),
            format!("{:.4}", topn_tk.ndcg),
            format!("{:.4}", paper[0]),
            format!("{:.4}", paper[1]),
            format!("{:.4}", paper[2]),
            format!("{:.4}", paper[3]),
            format!("{:.4}", paper[4]),
            format!("{:.4}", paper[5]),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Cell format: measured (paper). Expected shapes: the transformation weight gives the\n\
         largest jump on the sparse Ticket dataset; 1-2 layers beat 0 and 3; Euclidean beats\n\
         Manhattan/Chebyshev which beat Cosine."
    );
    csv.write_csv(cfg.out_dir.join("table5.csv")).expect("write table5.csv");
}
