//! Figures 5 & 6: t-SNE case study of item-ID embeddings for two users
//! under FM, NFM, TransFM and GML-FM.
//!
//! For each of the two most active users, the items they interacted with
//! in training (positives, red in the paper) and an equal number of
//! sampled negatives (blue) are projected to 2-D with t-SNE, per model.
//! The paper's qualitative claim — metric-learning models cluster the
//! positives while inner-product models scatter them — is made
//! quantitative here with [`gmlfm_tsne::separation_score`] (inter/intra
//! distance ratio, > 1 means the groups separate), and the 2-D layouts
//! are printed as ASCII scatter plots and written to CSV.

use crate::datasets::make;
use crate::runner::{default_dnn_cfg, ExpConfig};
use gmlfm_data::{loo_split, DatasetSpec, FieldMask, NegativeSampler};
use gmlfm_engine::{FitData, ModelSpec};
use gmlfm_eval::Table;
use gmlfm_models::{fm::FmConfig, nfm::NfmConfig, transfm::TransFmConfig};
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::TrainConfig;
use gmlfm_tsne::{separation_score, tsne, TsneConfig};

/// Runs the case study for the `rank`-th most active user (0 for Fig. 5,
/// 1 for Fig. 6) and writes `fig{5,6}_<model>.csv`.
pub fn run(cfg: &ExpConfig, rank: usize) {
    let fig = 5 + rank;
    println!("\n== Figure {fig}: t-SNE of item embeddings (user #{rank} by activity) ==\n");
    let dataset = make(DatasetSpec::MovieLens, cfg);
    let mask = FieldMask::all(&dataset.schema);
    let split = loo_split(&dataset, &mask, 2, 99, cfg.seed ^ 0x9999);

    // Pick the rank-th most active user.
    let mut users: Vec<(usize, usize)> =
        split.train_user_items.iter().enumerate().map(|(u, s)| (s.len(), u)).collect();
    users.sort_unstable_by(|a, b| b.cmp(a));
    let (n_pos, user) = users[rank];
    println!("user id {user} with {n_pos} training positives\n");

    let positives: Vec<u32> = {
        let mut v: Vec<u32> = split.train_user_items[user].iter().copied().collect();
        v.sort_unstable();
        v
    };
    let mut rng = seeded_rng(cfg.seed ^ 0x9a);
    let sampler = NegativeSampler::new(dataset.n_items);
    let negatives = sampler.sample(&mut rng, &dataset.user_item_sets()[user], positives.len());
    let item_offset = dataset.schema.offset(1);

    let tc = TrainConfig { patience: 0, seed: cfg.seed ^ 0x9b, ..cfg.train_config() };

    // The four case-study models as declarative specs; training and
    // factor extraction go through the unified Estimator interface.
    let case_specs: [(&str, ModelSpec); 4] = [
        (
            "FM",
            ModelSpec::Fm {
                config: FmConfig {
                    k: cfg.k,
                    lr: 0.01,
                    reg: 0.01,
                    epochs: cfg.epochs * 2,
                    seed: cfg.seed ^ 0x9c,
                },
            },
        ),
        (
            "NFM",
            ModelSpec::Nfm { config: NfmConfig { k: cfg.k, layers: 1, dropout: 0.2, seed: cfg.seed ^ 0x9d } },
        ),
        ("TransFM", ModelSpec::TransFm { config: TransFmConfig { k: cfg.k, seed: cfg.seed ^ 0x9e } }),
        ("GML-FM", ModelSpec::gml_fm(default_dnn_cfg(cfg.k, cfg.seed ^ 0x9f))),
    ];

    let mut summary = Table::new(&["model", "separation (inter/intra)"]);
    let mut scores: Vec<(String, f64)> = Vec::new();
    for (model_name, spec) in case_specs {
        let mut estimator = spec.build(&dataset.schema, &mask);
        estimator
            .fit(&FitData::instances(&split.train), &tc)
            .expect("case-study training set");
        let factors: Matrix = estimator
            .factors()
            .expect("case-study models expose their factor table")
            .clone();

        // Gather item-ID embedding rows: positives then negatives.
        let mut rows = Vec::with_capacity(positives.len() * 2);
        let mut labels = Vec::with_capacity(positives.len() * 2);
        for &item in positives.iter().chain(&negatives) {
            rows.push(item_offset + item as usize);
            labels.push(false);
        }
        for l in labels.iter_mut().take(positives.len()) {
            *l = true;
        }
        let data = factors.gather_rows(&rows);
        let layout = tsne(&data, &TsneConfig { seed: cfg.seed ^ 0xa0, ..TsneConfig::default() });
        let score = separation_score(&layout, &labels);
        summary.push_row(vec![model_name.to_string(), format!("{score:.3}")]);
        scores.push((model_name.to_string(), score));

        println!("--- {model_name} (separation {score:.3}; + = positive, . = negative) ---");
        println!("{}", ascii_scatter(&layout, &labels, 56, 18));

        let mut csv = Table::new(&["x", "y", "positive"]);
        for i in 0..layout.rows() {
            csv.push_row(vec![
                format!("{:.4}", layout[(i, 0)]),
                format!("{:.4}", layout[(i, 1)]),
                (labels[i] as u8).to_string(),
            ]);
        }
        let file = format!("fig{fig}_{}.csv", model_name.to_lowercase().replace('-', ""));
        csv.write_csv(cfg.out_dir.join(file)).expect("write fig5/6 csv");
    }

    println!("{}", summary.to_markdown());
    let metric_best = scores
        .iter()
        .filter(|(n, _)| n == "TransFM" || n == "GML-FM")
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let inner_best = scores
        .iter()
        .filter(|(n, _)| n == "FM" || n == "NFM")
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "Shape check: best metric-learning separation {metric_best:.3} vs best inner-product {inner_best:.3} \
         (paper: metric-learning methods cluster positives, inner-product ones do not)."
    );
}

/// Renders a 2-D layout as an ASCII scatter plot.
fn ascii_scatter(y: &Matrix, labels: &[bool], width: usize, height: usize) -> String {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..y.rows() {
        min_x = min_x.min(y[(i, 0)]);
        max_x = max_x.max(y[(i, 0)]);
        min_y = min_y.min(y[(i, 1)]);
        max_y = max_y.max(y[(i, 1)]);
    }
    let (dx, dy) = ((max_x - min_x).max(1e-9), (max_y - min_y).max(1e-9));
    let mut grid = vec![vec![' '; width]; height];
    for i in 0..y.rows() {
        let col = (((y[(i, 0)] - min_x) / dx) * (width - 1) as f64).round() as usize;
        let row = (((y[(i, 1)] - min_y) / dy) * (height - 1) as f64).round() as usize;
        let ch = if labels[i] { '+' } else { '.' };
        // Positives overwrite negatives so clusters stay visible.
        if grid[row][col] == ' ' || ch == '+' {
            grid[row][col] = ch;
        }
    }
    let mut out = String::with_capacity((width + 1) * height);
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}
