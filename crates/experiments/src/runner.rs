//! The model zoo: constructs, trains and evaluates every model on either
//! task with one call, so each table/figure module stays declarative.

use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::{Dataset, FieldMask, LooSplit, RatingSplit};
use gmlfm_eval::{evaluate_rating, evaluate_topn, evaluate_topn_frozen, RatingMetrics, TopnMetrics};
use gmlfm_models::{
    afm::AfmConfig, deepfm::DeepFmConfig, mf::MfConfig, ncf::NcfConfig, nfm::NfmConfig,
    transfm::TransFmConfig, xdeepfm::XDeepFmConfig, Afm, BprMf, DeepFm, FactorizationMachine, Ncf, Nfm, Ngcf,
    PairCodec, Pmf, TransFm, XDeepFm,
};
use gmlfm_models::{fm::FmConfig, MatrixFactorization};
use gmlfm_serve::Freeze;
use gmlfm_train::{fit_regression, Scorer, TrainConfig};

/// Global experiment knobs, shared by every table/figure.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale factor (1.0 = the DESIGN.md sizes).
    pub scale: f64,
    /// Embedding size.
    pub k: usize,
    /// Training epochs for every model.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: std::path::PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self { scale: 1.0, k: 16, epochs: 12, seed: 2023, out_dir: "results".into() }
    }
}

/// Every model that appears in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Biased matrix factorization (rating only).
    Mf,
    /// Probabilistic MF (rating only).
    Pmf,
    /// NCF / NeuMF (top-n only in the paper).
    Ncf,
    /// BPR-MF (top-n only).
    BprMf,
    /// NGCF, simplified propagation (top-n only).
    Ngcf,
    /// LibFM-style vanilla FM.
    LibFm,
    /// Neural FM.
    Nfm,
    /// Attentional FM.
    Afm,
    /// Translation-based FM.
    TransFm,
    /// DeepFM.
    DeepFm,
    /// xDeepFM.
    XDeepFm,
    /// GML-FM with Mahalanobis distance.
    GmlFmMd,
    /// GML-FM with the DNN distance (1 layer by default).
    GmlFmDnn,
}

impl ModelKind {
    /// Paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mf => "MF",
            ModelKind::Pmf => "PMF",
            ModelKind::Ncf => "NCF",
            ModelKind::BprMf => "BPR-MF",
            ModelKind::Ngcf => "NGCF",
            ModelKind::LibFm => "LibFM",
            ModelKind::Nfm => "NFM",
            ModelKind::Afm => "AFM",
            ModelKind::TransFm => "TransFM",
            ModelKind::DeepFm => "DeepFM",
            ModelKind::XDeepFm => "xDeepFM",
            ModelKind::GmlFmMd => "GML-FM_md",
            ModelKind::GmlFmDnn => "GML-FM_dnn",
        }
    }

    /// Models in Table 3 (rating prediction), paper row order.
    pub const RATING: [ModelKind; 10] = [
        ModelKind::Mf,
        ModelKind::Pmf,
        ModelKind::LibFm,
        ModelKind::Nfm,
        ModelKind::Afm,
        ModelKind::TransFm,
        ModelKind::DeepFm,
        ModelKind::XDeepFm,
        ModelKind::GmlFmMd,
        ModelKind::GmlFmDnn,
    ];

    /// Models in Table 4 (top-n), paper row order.
    pub const TOPN: [ModelKind; 11] = [
        ModelKind::Ncf,
        ModelKind::BprMf,
        ModelKind::Ngcf,
        ModelKind::LibFm,
        ModelKind::Nfm,
        ModelKind::Afm,
        ModelKind::TransFm,
        ModelKind::DeepFm,
        ModelKind::XDeepFm,
        ModelKind::GmlFmMd,
        ModelKind::GmlFmDnn,
    ];
}

fn train_cfg(cfg: &ExpConfig) -> TrainConfig {
    TrainConfig {
        lr: 0.01,
        epochs: cfg.epochs,
        batch_size: 256,
        weight_decay: 1e-5,
        patience: 3,
        seed: cfg.seed ^ 0x5f5f,
    }
}

fn mf_cfg(cfg: &ExpConfig) -> MfConfig {
    MfConfig { k: cfg.k, lr: 0.02, reg: 0.02, epochs: cfg.epochs * 2, seed: cfg.seed ^ 0xa1 }
}

/// Trains `kind` on a rating split and returns the test metrics, plus the
/// per-instance absolute errors' source (predictions) for significance
/// testing.
pub fn run_rating(
    kind: ModelKind,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &RatingSplit,
    cfg: &ExpConfig,
) -> (RatingMetrics, Vec<f64>) {
    let scorer = fit_rating_model(kind, dataset, mask, split, cfg);
    let metrics = evaluate_rating(scorer.as_ref(), &split.test);
    let refs: Vec<&gmlfm_data::Instance> = split.test.iter().collect();
    let preds = scorer.scores(&refs);
    let sq_errors: Vec<f64> = preds
        .iter()
        .zip(&split.test)
        .map(|(p, t)| (p - t.label) * (p - t.label))
        .collect();
    (metrics, sq_errors)
}

/// Trains `kind` for top-n and evaluates leave-one-out HR/NDCG at 10.
pub fn run_topn(
    kind: ModelKind,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &LooSplit,
    cfg: &ExpConfig,
) -> TopnMetrics {
    let scorer = fit_topn_model(kind, dataset, mask, split, cfg);
    evaluate_topn(scorer.as_ref(), dataset, mask, &split.test, 10)
}

/// GML-FM with a custom configuration (ablations, sweeps).
pub fn run_topn_gmlfm(
    gml_cfg: &GmlFmConfig,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &LooSplit,
    cfg: &ExpConfig,
) -> TopnMetrics {
    let mut model = GmlFm::new(dataset.schema.total_dim(), gml_cfg);
    fit_regression(&mut model, &split.train, None, &train_cfg(cfg));
    // Rank through the frozen serving path: context partials once per
    // user, item delta per candidate (identical metrics, no tape).
    evaluate_topn_frozen(&model.freeze(), dataset, mask, &split.test, 10)
}

/// GML-FM with a custom configuration on the rating task.
pub fn run_rating_gmlfm(
    gml_cfg: &GmlFmConfig,
    dataset: &Dataset,
    split: &RatingSplit,
    cfg: &ExpConfig,
) -> RatingMetrics {
    let mut model = GmlFm::new(dataset.schema.total_dim(), gml_cfg);
    fit_regression(&mut model, &split.train, Some(&split.val), &train_cfg(cfg));
    evaluate_rating(&model.freeze(), &split.test)
}

/// The default GML-FM_dnn configuration used across experiments.
pub fn default_dnn_cfg(k: usize, seed: u64) -> GmlFmConfig {
    GmlFmConfig::dnn(k, 1).with_seed(seed)
}

/// The default GML-FM_md configuration.
pub fn default_md_cfg(k: usize, seed: u64) -> GmlFmConfig {
    GmlFmConfig::mahalanobis(k).with_seed(seed)
}

fn fit_rating_model(
    kind: ModelKind,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &RatingSplit,
    cfg: &ExpConfig,
) -> Box<dyn Scorer> {
    let n = dataset.schema.total_dim();
    let m = mask.n_active();
    let codec = PairCodec::from_schema(&dataset.schema);
    let tc = train_cfg(cfg);
    match kind {
        ModelKind::Mf => {
            let mut model = MatrixFactorization::new(codec, mf_cfg(cfg));
            model.fit(&split.train);
            Box::new(model)
        }
        ModelKind::Pmf => {
            let mut model = Pmf::new(codec, mf_cfg(cfg));
            model.fit(&split.train);
            Box::new(model)
        }
        ModelKind::LibFm => {
            let mut model = FactorizationMachine::new(
                n,
                FmConfig { k: cfg.k, lr: 0.01, reg: 0.01, epochs: cfg.epochs * 2, seed: cfg.seed ^ 0xb2 },
            );
            model.fit(&split.train);
            Box::new(model.freeze())
        }
        ModelKind::Nfm => {
            let mut model =
                Nfm::new(n, &NfmConfig { k: cfg.k, layers: 1, dropout: 0.2, seed: cfg.seed ^ 0xc3 });
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model)
        }
        ModelKind::Afm => {
            let mut model = Afm::new(
                n,
                &AfmConfig { k: cfg.k, attention_size: cfg.k, dropout: 0.2, seed: cfg.seed ^ 0xd4 },
            );
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model)
        }
        ModelKind::TransFm => {
            let mut model = TransFm::new(n, &TransFmConfig { k: cfg.k, seed: cfg.seed ^ 0xe5 });
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model.freeze())
        }
        ModelKind::DeepFm => {
            let mut model =
                DeepFm::new(n, m, &DeepFmConfig { k: cfg.k, layers: 2, dropout: 0.2, seed: cfg.seed ^ 0xf6 });
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model)
        }
        ModelKind::XDeepFm => {
            let mut model = XDeepFm::new(
                n,
                m,
                &XDeepFmConfig {
                    k: cfg.k,
                    cin_maps: 4,
                    cin_depth: 2,
                    layers: 2,
                    dropout: 0.2,
                    seed: cfg.seed ^ 0x17,
                },
            );
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model)
        }
        ModelKind::GmlFmMd => {
            let mut model = GmlFm::new(n, &default_md_cfg(cfg.k, cfg.seed ^ 0x28));
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model.freeze())
        }
        ModelKind::GmlFmDnn => {
            let mut model = GmlFm::new(n, &default_dnn_cfg(cfg.k, cfg.seed ^ 0x39));
            fit_regression(&mut model, &split.train, Some(&split.val), &tc);
            Box::new(model.freeze())
        }
        ModelKind::Ncf | ModelKind::BprMf | ModelKind::Ngcf => {
            panic!("{} is a top-n-only baseline in the paper", kind.name())
        }
    }
}

fn fit_topn_model(
    kind: ModelKind,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &LooSplit,
    cfg: &ExpConfig,
) -> Box<dyn Scorer> {
    let n = dataset.schema.total_dim();
    let m = mask.n_active();
    let codec = PairCodec::from_schema(&dataset.schema);
    let tc = train_cfg(cfg);
    match kind {
        ModelKind::Ncf => {
            let mut model =
                Ncf::new(codec, &NcfConfig { k: cfg.k, layers: 2, dropout: 0.2, seed: cfg.seed ^ 0x4a });
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model)
        }
        ModelKind::BprMf => {
            let mut model = BprMf::new(codec, MfConfig { lr: 0.05, ..mf_cfg(cfg) });
            model.fit(&split.train_pairs, &split.train_user_items);
            Box::new(model)
        }
        ModelKind::Ngcf => {
            let mut model = Ngcf::new(codec, MfConfig { lr: 0.02, ..mf_cfg(cfg) });
            model.fit(&split.train_pairs, &split.train_user_items);
            Box::new(model)
        }
        ModelKind::LibFm => {
            let mut model = FactorizationMachine::new(
                n,
                FmConfig { k: cfg.k, lr: 0.01, reg: 0.01, epochs: cfg.epochs * 2, seed: cfg.seed ^ 0xb2 },
            );
            model.fit(&split.train);
            Box::new(model.freeze())
        }
        ModelKind::Nfm => {
            let mut model =
                Nfm::new(n, &NfmConfig { k: cfg.k, layers: 1, dropout: 0.2, seed: cfg.seed ^ 0xc3 });
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model)
        }
        ModelKind::Afm => {
            let mut model = Afm::new(
                n,
                &AfmConfig { k: cfg.k, attention_size: cfg.k, dropout: 0.2, seed: cfg.seed ^ 0xd4 },
            );
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model)
        }
        ModelKind::TransFm => {
            let mut model = TransFm::new(n, &TransFmConfig { k: cfg.k, seed: cfg.seed ^ 0xe5 });
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model.freeze())
        }
        ModelKind::DeepFm => {
            let mut model =
                DeepFm::new(n, m, &DeepFmConfig { k: cfg.k, layers: 2, dropout: 0.2, seed: cfg.seed ^ 0xf6 });
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model)
        }
        ModelKind::XDeepFm => {
            let mut model = XDeepFm::new(
                n,
                m,
                &XDeepFmConfig {
                    k: cfg.k,
                    cin_maps: 4,
                    cin_depth: 2,
                    layers: 2,
                    dropout: 0.2,
                    seed: cfg.seed ^ 0x17,
                },
            );
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model)
        }
        ModelKind::GmlFmMd => {
            let mut model = GmlFm::new(n, &default_md_cfg(cfg.k, cfg.seed ^ 0x28));
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model.freeze())
        }
        ModelKind::GmlFmDnn => {
            let mut model = GmlFm::new(n, &default_dnn_cfg(cfg.k, cfg.seed ^ 0x39));
            fit_regression(&mut model, &split.train, None, &tc);
            Box::new(model.freeze())
        }
        ModelKind::Mf | ModelKind::Pmf => {
            panic!("{} is a rating-only baseline in the paper", kind.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, rating_split, DatasetSpec};

    /// Every rating-task model trains and produces finite metrics on a
    /// tiny fixture — the regression net for the Table 3 grid.
    #[test]
    fn every_rating_model_runs_on_a_tiny_fixture() {
        let cfg = ExpConfig { scale: 0.15, k: 8, epochs: 2, seed: 7, out_dir: std::env::temp_dir() };
        let dataset = generate(&DatasetSpec::AmazonAuto.config(cfg.seed).scaled(cfg.scale));
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, 3);
        for kind in ModelKind::RATING {
            let (metrics, errors) = run_rating(kind, &dataset, &mask, &split, &cfg);
            assert!(metrics.rmse.is_finite() && metrics.rmse > 0.0, "{}: rmse {}", kind.name(), metrics.rmse);
            assert_eq!(errors.len(), split.test.len(), "{}", kind.name());
        }
    }

    /// Every top-n model trains and ranks on a tiny fixture — the
    /// regression net for the Table 4 grid.
    #[test]
    fn every_topn_model_runs_on_a_tiny_fixture() {
        let cfg = ExpConfig { scale: 0.15, k: 8, epochs: 2, seed: 7, out_dir: std::env::temp_dir() };
        let dataset = generate(&DatasetSpec::AmazonAuto.config(cfg.seed).scaled(cfg.scale));
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 20, 4);
        for kind in ModelKind::TOPN {
            let m = run_topn(kind, &dataset, &mask, &split, &cfg);
            assert!((0.0..=1.0).contains(&m.hr), "{}: hr {}", kind.name(), m.hr);
            assert!((0.0..=1.0).contains(&m.ndcg), "{}: ndcg {}", kind.name(), m.ndcg);
            assert_eq!(m.per_user_hr.len(), split.test.len(), "{}", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "top-n-only")]
    fn rating_task_rejects_topn_only_models() {
        let cfg = ExpConfig { scale: 0.15, k: 8, epochs: 1, seed: 7, out_dir: std::env::temp_dir() };
        let dataset = generate(&DatasetSpec::AmazonAuto.config(cfg.seed).scaled(cfg.scale));
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, 3);
        let _ = run_rating(ModelKind::Ncf, &dataset, &mask, &split, &cfg);
    }
}
