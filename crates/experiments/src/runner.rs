//! Spec-driven experiment runner: constructs, trains and evaluates any
//! [`ModelSpec`] on either task with one call, so each table/figure
//! module stays declarative.
//!
//! There is no per-model dispatch here: the paper's model roster lives
//! in [`crate::paper`] as a [`ModelKind`] → [`ModelSpec`] table, and
//! everything trains through the engine's unified
//! [`Estimator`](gmlfm_engine::Estimator) interface — autograd
//! regression, hand-derived SGD and pairwise BPR included.

use gmlfm_core::GmlFmConfig;
use gmlfm_data::{Dataset, FieldMask, LooSplit, RatingSplit};
use gmlfm_engine::{FitData, ModelSpec};
use gmlfm_eval::{evaluate_rating, evaluate_topn, evaluate_topn_service, RatingMetrics, TopnMetrics};
use gmlfm_service::{Catalog, ModelServer, ModelSnapshot};
use gmlfm_train::{Scorer, TrainConfig};

pub use crate::paper::ModelKind;

/// Global experiment knobs, shared by every table/figure.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale factor (1.0 = the DESIGN.md sizes).
    pub scale: f64,
    /// Embedding size.
    pub k: usize,
    /// Training epochs for every model.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: std::path::PathBuf,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self { scale: 1.0, k: 16, epochs: 12, seed: 2023, out_dir: "results".into() }
    }
}

impl ExpConfig {
    /// The shared autograd training configuration every experiment
    /// derives from (figure modules override `patience`/`seed` via
    /// struct-update syntax instead of re-assembling the whole struct).
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            lr: 0.01,
            epochs: self.epochs,
            batch_size: 256,
            weight_decay: 1e-5,
            patience: 3,
            seed: self.seed ^ 0x5f5f,
            ..TrainConfig::default()
        }
    }
}

/// Trains `kind` on a rating split and returns the test metrics, plus the
/// per-instance squared errors for significance testing.
///
/// # Panics
/// Panics when `kind` is a top-n-only baseline (NCF, BPR-MF, NGCF).
pub fn run_rating(
    kind: ModelKind,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &RatingSplit,
    cfg: &ExpConfig,
) -> (RatingMetrics, Vec<f64>) {
    let spec = kind.spec(cfg);
    assert!(spec.supports_rating(), "{} is a top-n-only baseline in the paper", kind.name());
    run_rating_spec(&spec, dataset, mask, split, cfg)
}

/// Trains `kind` for top-n and evaluates leave-one-out HR/NDCG at 10.
///
/// # Panics
/// Panics when `kind` is a rating-only baseline (MF, PMF).
pub fn run_topn(
    kind: ModelKind,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &LooSplit,
    cfg: &ExpConfig,
) -> TopnMetrics {
    let spec = kind.spec(cfg);
    assert!(spec.supports_topn(), "{} is a rating-only baseline in the paper", kind.name());
    run_topn_spec(&spec, dataset, mask, split, cfg)
}

/// Trains any spec on a rating split and returns the test metrics plus
/// per-instance squared errors. Freezable models are served frozen.
pub fn run_rating_spec(
    spec: &ModelSpec,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &RatingSplit,
    cfg: &ExpConfig,
) -> (RatingMetrics, Vec<f64>) {
    let mut estimator = spec.build(&dataset.schema, mask);
    estimator
        .fit(&FitData::rating(split), &cfg.train_config())
        .unwrap_or_else(|e| panic!("{}: {e}", spec.display_name()));
    let frozen = estimator.freeze_if_supported();
    let scorer: &dyn Scorer = match &frozen {
        Some(frozen) => frozen,
        None => estimator.scorer(),
    };
    let metrics = evaluate_rating(scorer, &split.test);
    let preds = scorer.scores(&split.test);
    let sq_errors: Vec<f64> = preds
        .iter()
        .zip(&split.test)
        .map(|(p, t)| (p - t.label) * (p - t.label))
        .collect();
    (metrics, sq_errors)
}

/// Trains any spec for top-n and evaluates leave-one-out HR/NDCG at 10.
/// Freezable models are stood up behind a [`ModelServer`] and evaluated
/// through the online serving API's request path — the exact code path
/// production traffic takes (context partials once per user, item delta
/// per candidate, no tape); the rest score candidates through their own
/// scorer.
pub fn run_topn_spec(
    spec: &ModelSpec,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &LooSplit,
    cfg: &ExpConfig,
) -> TopnMetrics {
    let mut estimator = spec.build(&dataset.schema, mask);
    estimator
        .fit(&FitData::topn(split), &cfg.train_config())
        .unwrap_or_else(|e| panic!("{}: {e}", spec.display_name()));
    match estimator.freeze_if_supported() {
        Some(frozen) => {
            let server = ModelServer::new(ModelSnapshot {
                schema: dataset.schema.clone(),
                frozen,
                catalog: Some(Catalog::from_dataset(dataset, mask)),
                seen: None,
                index: None,
            })
            .expect("a freshly frozen estimator is schema-consistent");
            evaluate_topn_service(&server, &split.test, 10)
        }
        None => evaluate_topn(estimator.scorer(), dataset, mask, &split.test, 10),
    }
}

/// GML-FM with a custom configuration on the top-n task (ablations,
/// sweeps).
pub fn run_topn_gmlfm(
    gml_cfg: &GmlFmConfig,
    dataset: &Dataset,
    mask: &FieldMask,
    split: &LooSplit,
    cfg: &ExpConfig,
) -> TopnMetrics {
    run_topn_spec(&ModelSpec::gml_fm(gml_cfg.clone()), dataset, mask, split, cfg)
}

/// GML-FM with a custom configuration on the rating task.
pub fn run_rating_gmlfm(
    gml_cfg: &GmlFmConfig,
    dataset: &Dataset,
    split: &RatingSplit,
    cfg: &ExpConfig,
) -> RatingMetrics {
    let mask = FieldMask::all(&dataset.schema);
    run_rating_spec(&ModelSpec::gml_fm(gml_cfg.clone()), dataset, &mask, split, cfg).0
}

/// The default GML-FM_dnn configuration used across experiments.
pub fn default_dnn_cfg(k: usize, seed: u64) -> GmlFmConfig {
    GmlFmConfig::dnn(k, 1).with_seed(seed)
}

/// The default GML-FM_md configuration.
pub fn default_md_cfg(k: usize, seed: u64) -> GmlFmConfig {
    GmlFmConfig::mahalanobis(k).with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, rating_split, DatasetSpec};

    /// Every rating-task model trains and produces finite metrics on a
    /// tiny fixture — the regression net for the Table 3 grid.
    #[test]
    fn every_rating_model_runs_on_a_tiny_fixture() {
        let cfg = ExpConfig { scale: 0.15, k: 8, epochs: 2, seed: 7, out_dir: std::env::temp_dir() };
        let dataset = generate(&DatasetSpec::AmazonAuto.config(cfg.seed).scaled(cfg.scale));
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, 3);
        for kind in ModelKind::RATING {
            let (metrics, errors) = run_rating(kind, &dataset, &mask, &split, &cfg);
            assert!(metrics.rmse.is_finite() && metrics.rmse > 0.0, "{}: rmse {}", kind.name(), metrics.rmse);
            assert_eq!(errors.len(), split.test.len(), "{}", kind.name());
        }
    }

    /// Every top-n model trains and ranks on a tiny fixture — the
    /// regression net for the Table 4 grid.
    #[test]
    fn every_topn_model_runs_on_a_tiny_fixture() {
        let cfg = ExpConfig { scale: 0.15, k: 8, epochs: 2, seed: 7, out_dir: std::env::temp_dir() };
        let dataset = generate(&DatasetSpec::AmazonAuto.config(cfg.seed).scaled(cfg.scale));
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 20, 4);
        for kind in ModelKind::TOPN {
            let m = run_topn(kind, &dataset, &mask, &split, &cfg);
            assert!((0.0..=1.0).contains(&m.hr), "{}: hr {}", kind.name(), m.hr);
            assert!((0.0..=1.0).contains(&m.ndcg), "{}: ndcg {}", kind.name(), m.ndcg);
            assert_eq!(m.per_user_hr.len(), split.test.len(), "{}", kind.name());
        }
    }

    #[test]
    #[should_panic(expected = "top-n-only")]
    fn rating_task_rejects_topn_only_models() {
        let cfg = ExpConfig { scale: 0.15, k: 8, epochs: 1, seed: 7, out_dir: std::env::temp_dir() };
        let dataset = generate(&DatasetSpec::AmazonAuto.config(cfg.seed).scaled(cfg.scale));
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, 3);
        let _ = run_rating(ModelKind::Ncf, &dataset, &mask, &split, &cfg);
    }

    /// Every paper-grid spec serialises and round-trips — the property
    /// the saved-artifact provenance rests on.
    #[test]
    fn paper_grid_specs_round_trip_through_json() {
        let cfg = ExpConfig::default();
        for kind in ModelKind::TOPN.iter().chain(&ModelKind::RATING) {
            let spec = kind.spec(&cfg);
            let json = serde_json::to_string(&spec).unwrap();
            let back: ModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(json, serde_json::to_string(&back).unwrap(), "{}", kind.name());
        }
    }
}
