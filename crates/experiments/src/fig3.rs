//! Figure 3: HR@10 as a function of the embedding size on four datasets
//! for six methods.

use crate::datasets::make;
use crate::runner::{default_dnn_cfg, run_topn, run_topn_gmlfm, ExpConfig, ModelKind};
use gmlfm_data::{loo_split, DatasetSpec, FieldMask};
use gmlfm_eval::Table;

const METHODS: [ModelKind; 5] =
    [ModelKind::BprMf, ModelKind::Nfm, ModelKind::TransFm, ModelKind::DeepFm, ModelKind::XDeepFm];

const FIG3_DATASETS: [DatasetSpec; 4] =
    [DatasetSpec::AmazonClothing, DatasetSpec::AmazonAuto, DatasetSpec::AmazonOffice, DatasetSpec::MovieLens];

/// Runs the embedding-size sweep. `full` extends the sweep to the paper's
/// 512; the default stops at 128 to keep the run short.
pub fn run(cfg: &ExpConfig, full: bool) {
    let sizes: &[usize] = if full { &[4, 8, 16, 32, 64, 128, 256, 512] } else { &[4, 8, 16, 32, 64, 128] };
    println!("\n== Figure 3: HR@10 vs embedding size {:?} ==\n", sizes);
    let mut csv = Table::new(&["dataset", "method", "k", "hr"]);

    for spec in FIG3_DATASETS {
        let dataset = make(spec, cfg);
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 99, cfg.seed ^ 0x7777);
        println!("--- {} ---", spec.name());
        let header: Vec<String> = std::iter::once("method".to_string())
            .chain(sizes.iter().map(|k| format!("k={k}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        let mut rows: Vec<Vec<String>> = Vec::new();
        for kind in METHODS {
            let mut row = vec![kind.name().to_string()];
            for &k in sizes {
                let mut kcfg = cfg.clone();
                kcfg.k = k;
                let m = run_topn(kind, &dataset, &mask, &split, &kcfg);
                row.push(format!("{:.4}", m.hr));
                csv.push_row(vec![
                    spec.name().into(),
                    kind.name().into(),
                    k.to_string(),
                    format!("{:.4}", m.hr),
                ]);
            }
            rows.push(row);
        }
        // GML-FM (dnn) series.
        let mut row = vec!["GML-FM".to_string()];
        for &k in sizes {
            let m = run_topn_gmlfm(&default_dnn_cfg(k, cfg.seed ^ 0x78), &dataset, &mask, &split, cfg);
            row.push(format!("{:.4}", m.hr));
            csv.push_row(vec![spec.name().into(), "GML-FM".into(), k.to_string(), format!("{:.4}", m.hr)]);
        }
        rows.push(row);
        for r in rows {
            table.push_row(r);
        }
        println!("{}", table.to_markdown());
    }
    println!(
        "Expected shapes (paper): GML-FM dominates at most sizes (except NFM on MovieLens),\n\
         is flatter/more stable across k, and degrades less at large k."
    );
    csv.write_csv(cfg.out_dir.join("fig3.csv")).expect("write fig3.csv");
}
