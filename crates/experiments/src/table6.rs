//! Table 6: the influence of Mercari attribute subsets on GML-FM_dnn
//! (top-n task).

use crate::datasets::make;
use crate::paper::TABLE6;
use crate::runner::{default_dnn_cfg, run_topn_gmlfm, ExpConfig};
use gmlfm_data::{loo_split, DatasetSpec, FieldKind, FieldMask, Schema};
use gmlfm_eval::Table;

fn masks(schema: &Schema) -> Vec<(&'static str, FieldMask)> {
    let base = FieldMask::base(schema);
    vec![
        ("base", base.clone()),
        ("base+cty", base.with_kind(schema, FieldKind::Category)),
        (
            "base+cty+cdn",
            base.with_kind(schema, FieldKind::Category)
                .with_kind(schema, FieldKind::Condition),
        ),
        (
            "base+cty+shp",
            base.with_kind(schema, FieldKind::Category)
                .with_kind(schema, FieldKind::Shipping),
        ),
        ("base+all", FieldMask::all(schema)),
    ]
}

/// Runs the attribute-subset study on both Mercari datasets; writes
/// `table6.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Table 6: attribute effect on Mercari (GML-FM_dnn, top-n) ==\n");
    let mut table = Table::new(&["Attributes", "HR Ticket", "NDCG Ticket", "HR Books", "NDCG Books"]);
    let mut csv = Table::new(&[
        "attributes",
        "hr_ticket",
        "ndcg_ticket",
        "hr_books",
        "ndcg_books",
        "paper_hr_ticket",
        "paper_ndcg_ticket",
        "paper_hr_books",
        "paper_ndcg_books",
    ]);

    let ticket = make(DatasetSpec::MercariTicket, cfg);
    let books = make(DatasetSpec::MercariBooks, cfg);

    for (idx, name) in ["base", "base+cty", "base+cty+cdn", "base+cty+shp", "base+all"]
        .iter()
        .enumerate()
    {
        eprintln!("[table6] {name}");
        let mut row = vec![name.to_string()];
        let mut csv_row = vec![name.to_string()];
        for dataset in [&ticket, &books] {
            let (_, mask) = masks(&dataset.schema).into_iter().find(|(n, _)| n == name).expect("mask name");
            let split = loo_split(dataset, &mask, 2, 99, cfg.seed ^ 0x6666);
            let gml = default_dnn_cfg(cfg.k, cfg.seed ^ 0x67);
            let m = run_topn_gmlfm(&gml, dataset, &mask, &split, cfg);
            row.push(format!("{:.4}", m.hr));
            row.push(format!("{:.4}", m.ndcg));
            csv_row.push(format!("{:.4}", m.hr));
            csv_row.push(format!("{:.4}", m.ndcg));
        }
        let paper = TABLE6[idx].1;
        for (i, cell) in row.iter_mut().skip(1).enumerate() {
            cell.push_str(&format!(" ({:.4})", paper[i]));
        }
        for p in paper {
            csv_row.push(format!("{p:.4}"));
        }
        table.push_row(row);
        csv.push_row(csv_row);
    }
    println!("{}", table.to_markdown());
    println!(
        "Cell format: measured (paper). Expected shapes: base alone collapses; +category gives\n\
         the big jump; +condition is flat-to-negative; +shipping helps; all attributes best on Ticket."
    );
    csv.write_csv(cfg.out_dir.join("table6.csv")).expect("write table6.csv");
}
