//! `repro`: regenerates every table and figure of the GML-FM paper on the
//! synthetic substrate.
//!
//! ```text
//! repro <command> [--scale F] [--k N] [--epochs N] [--seed N] [--out DIR] [--full]
//!
//! commands:
//!   table2       dataset statistics
//!   table3       rating-prediction RMSE grid
//!   table4       top-n HR@10/NDCG@10 grid
//!   table5       GML-FM ablations (weight/M, #layers, distances)
//!   table6       Mercari attribute-subset study
//!   fig3         HR@10 vs embedding size sweep (--full extends to k=512)
//!   fig4         cold-start: GML-FM vs MAMO-lite over warm/cold quadrants
//!   fig5, fig6   t-SNE case studies (two most active users)
//!   efficiency   naive O(k²n²) vs efficient O(k²n) timing sweep
//!   ext-bpr      extension: GML-FM with the pairwise BPR objective
//!   all          everything above
//! ```
//!
//! Every run is deterministic in `--seed`. CSV artifacts land in `--out`
//! (default `results/`).

mod datasets;
mod efficiency;
mod ext_bpr;
mod fig3;
mod fig4;
mod fig56;
mod paper;
mod runner;
mod table2;
mod table3;
mod table4;
mod table5;
mod table6;

use runner::ExpConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: repro <table2|table3|table4|table5|table6|fig3|fig4|fig5|fig6|efficiency|ext-bpr|all> [flags]");
        eprintln!("flags: --scale F (default 1.0) --k N (16) --epochs N (12) --seed N (2023) --out DIR (results) --full");
        std::process::exit(2);
    };

    let mut cfg = ExpConfig::default();
    let mut full = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                cfg.scale = flag_value(&args, &mut i, "--scale");
            }
            "--k" => {
                cfg.k = flag_value(&args, &mut i, "--k");
            }
            "--epochs" => {
                cfg.epochs = flag_value(&args, &mut i, "--epochs");
            }
            "--seed" => {
                cfg.seed = flag_value(&args, &mut i, "--seed");
            }
            "--out" => {
                i += 1;
                cfg.out_dir = args.get(i).unwrap_or_else(|| die("--out needs a value")).into();
            }
            "--full" => full = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let started = std::time::Instant::now();
    match command.as_str() {
        "table2" => table2::run(&cfg),
        "table3" => table3::run(&cfg),
        "table4" => table4::run(&cfg),
        "table5" => table5::run(&cfg),
        "table6" => table6::run(&cfg),
        "fig3" => fig3::run(&cfg, full),
        "fig4" => fig4::run(&cfg),
        "fig5" => fig56::run(&cfg, 0),
        "fig6" => fig56::run(&cfg, 1),
        "efficiency" => efficiency::run(&cfg),
        "ext-bpr" => ext_bpr::run(&cfg),
        "all" => {
            table2::run(&cfg);
            table3::run(&cfg);
            table4::run(&cfg);
            table5::run(&cfg);
            table6::run(&cfg);
            fig3::run(&cfg, full);
            fig4::run(&cfg);
            fig56::run(&cfg, 0);
            fig56::run(&cfg, 1);
            efficiency::run(&cfg);
            ext_bpr::run(&cfg);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
    eprintln!(
        "\n[{command}] finished in {:.1}s; artifacts in {}",
        started.elapsed().as_secs_f64(),
        cfg.out_dir.display()
    );
}

fn flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize, name: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| die(&format!("{name} needs a valid value")))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
