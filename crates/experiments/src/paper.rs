//! The paper's reported numbers and model roster, embedded verbatim so
//! every experiment can print "paper vs measured" side by side (absolute
//! values are not expected to match — the substrate is synthetic — but
//! the *shape* should: see DESIGN.md §4).
//!
//! [`ModelKind`] is the paper-facing identity of each table row; its
//! [`ModelKind::spec`] table is the only place the per-model
//! hyper-parameters of the grids live — everything downstream dispatches
//! through [`gmlfm_engine::ModelSpec`].

use crate::runner::ExpConfig;
use gmlfm_engine::ModelSpec;
use gmlfm_models::afm::AfmConfig;
use gmlfm_models::deepfm::DeepFmConfig;
use gmlfm_models::fm::FmConfig;
use gmlfm_models::mf::MfConfig;
use gmlfm_models::ncf::NcfConfig;
use gmlfm_models::nfm::NfmConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_models::xdeepfm::XDeepFmConfig;

/// Every model that appears in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Biased matrix factorization (rating only).
    Mf,
    /// Probabilistic MF (rating only).
    Pmf,
    /// NCF / NeuMF (top-n only in the paper).
    Ncf,
    /// BPR-MF (top-n only).
    BprMf,
    /// NGCF, simplified propagation (top-n only).
    Ngcf,
    /// LibFM-style vanilla FM.
    LibFm,
    /// Neural FM.
    Nfm,
    /// Attentional FM.
    Afm,
    /// Translation-based FM.
    TransFm,
    /// DeepFM.
    DeepFm,
    /// xDeepFM.
    XDeepFm,
    /// GML-FM with Mahalanobis distance.
    GmlFmMd,
    /// GML-FM with the DNN distance (1 layer by default).
    GmlFmDnn,
}

impl ModelKind {
    /// Paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mf => "MF",
            ModelKind::Pmf => "PMF",
            ModelKind::Ncf => "NCF",
            ModelKind::BprMf => "BPR-MF",
            ModelKind::Ngcf => "NGCF",
            ModelKind::LibFm => "LibFM",
            ModelKind::Nfm => "NFM",
            ModelKind::Afm => "AFM",
            ModelKind::TransFm => "TransFM",
            ModelKind::DeepFm => "DeepFM",
            ModelKind::XDeepFm => "xDeepFM",
            ModelKind::GmlFmMd => "GML-FM_md",
            ModelKind::GmlFmDnn => "GML-FM_dnn",
        }
    }

    /// The paper-grid [`ModelSpec`] for this row: one declarative table
    /// of hyper-parameters; construction and training happen behind the
    /// engine's `Estimator`.
    pub fn spec(&self, cfg: &ExpConfig) -> ModelSpec {
        let (k, seed) = (cfg.k, cfg.seed);
        let mf = MfConfig { k, lr: 0.02, reg: 0.02, epochs: cfg.epochs * 2, seed: seed ^ 0xa1 };
        match self {
            ModelKind::Mf => ModelSpec::Mf { config: mf },
            ModelKind::Pmf => ModelSpec::Pmf { config: mf },
            ModelKind::Ncf => {
                ModelSpec::Ncf { config: NcfConfig { k, layers: 2, dropout: 0.2, seed: seed ^ 0x4a } }
            }
            ModelKind::BprMf => ModelSpec::BprMf { config: MfConfig { lr: 0.05, ..mf } },
            ModelKind::Ngcf => ModelSpec::Ngcf { config: MfConfig { lr: 0.02, ..mf } },
            ModelKind::LibFm => ModelSpec::Fm {
                config: FmConfig { k, lr: 0.01, reg: 0.01, epochs: cfg.epochs * 2, seed: seed ^ 0xb2 },
            },
            ModelKind::Nfm => {
                ModelSpec::Nfm { config: NfmConfig { k, layers: 1, dropout: 0.2, seed: seed ^ 0xc3 } }
            }
            ModelKind::Afm => {
                ModelSpec::Afm { config: AfmConfig { k, attention_size: k, dropout: 0.2, seed: seed ^ 0xd4 } }
            }
            ModelKind::TransFm => ModelSpec::TransFm { config: TransFmConfig { k, seed: seed ^ 0xe5 } },
            ModelKind::DeepFm => {
                ModelSpec::DeepFm { config: DeepFmConfig { k, layers: 2, dropout: 0.2, seed: seed ^ 0xf6 } }
            }
            ModelKind::XDeepFm => ModelSpec::XDeepFm {
                config: XDeepFmConfig {
                    k,
                    cin_maps: 4,
                    cin_depth: 2,
                    layers: 2,
                    dropout: 0.2,
                    seed: seed ^ 0x17,
                },
            },
            ModelKind::GmlFmMd => ModelSpec::gml_fm(crate::runner::default_md_cfg(k, seed ^ 0x28)),
            ModelKind::GmlFmDnn => ModelSpec::gml_fm(crate::runner::default_dnn_cfg(k, seed ^ 0x39)),
        }
    }

    /// Models in Table 3 (rating prediction), paper row order.
    pub const RATING: [ModelKind; 10] = [
        ModelKind::Mf,
        ModelKind::Pmf,
        ModelKind::LibFm,
        ModelKind::Nfm,
        ModelKind::Afm,
        ModelKind::TransFm,
        ModelKind::DeepFm,
        ModelKind::XDeepFm,
        ModelKind::GmlFmMd,
        ModelKind::GmlFmDnn,
    ];

    /// Models in Table 4 (top-n), paper row order.
    pub const TOPN: [ModelKind; 11] = [
        ModelKind::Ncf,
        ModelKind::BprMf,
        ModelKind::Ngcf,
        ModelKind::LibFm,
        ModelKind::Nfm,
        ModelKind::Afm,
        ModelKind::TransFm,
        ModelKind::DeepFm,
        ModelKind::XDeepFm,
        ModelKind::GmlFmMd,
        ModelKind::GmlFmDnn,
    ];
}

/// Table 2: dataset statistics, `(name, users, items, attr_dim, instances, sparsity)`.
pub const TABLE2: [(&str, usize, usize, usize, usize, f64); 6] = [
    ("Amazon-Auto", 2928, 1835, 5220, 20473, 0.9962),
    ("Amazon-Office", 4905, 2420, 7620, 53258, 0.9955),
    ("Amazon-Clothing", 39387, 23033, 64473, 278677, 0.9996),
    ("Mercari-Ticket", 3855, 45998, 49977, 46712, 0.9997),
    ("Mercari-Books", 26080, 367968, 394177, 373790, 0.9999),
    ("MovieLens", 6040, 3706, 10070, 1000209, 0.9553),
];

/// Table 3: rating-prediction RMSE. Column order:
/// MovieLens, Office, Clothing, Auto, Ticket, Books.
pub const TABLE3: [(&str, [f64; 6]); 10] = [
    ("MF", [0.6389, 0.8415, 0.9619, 0.9762, 0.9974, 0.9987]),
    ("PMF", [0.6456, 0.8380, 0.9417, 0.9468, 0.9895, 0.9993]),
    ("LibFM", [0.6592, 0.8686, 0.9213, 0.9369, 0.9731, 0.9688]),
    ("NFM", [0.6377, 0.8584, 0.9147, 0.9136, 0.9218, 0.8847]),
    ("AFM", [0.6780, 0.8663, 0.9212, 0.9315, 0.7915, 0.8260]),
    ("TransFM", [0.6617, 0.8616, 0.9155, 0.9282, 0.9725, 0.9697]),
    ("DeepFM", [0.6402, 0.8179, 0.8940, 0.9161, 0.9444, 0.7650]),
    ("xDeepFM", [0.6412, 0.8214, 0.8961, 0.9126, 0.9372, 0.7272]),
    ("GML-FM_md", [0.6472, 0.8319, 0.8930, 0.9050, 0.7655, 0.7902]),
    ("GML-FM_dnn", [0.6446, 0.8153, 0.8861, 0.8822, 0.7572, 0.7892]),
];

/// Table 4: top-n `(model, [(HR, NDCG); 6])`, same dataset order as
/// [`TABLE3`].
pub const TABLE4: [(&str, [(f64, f64); 6]); 11] = [
    (
        "NCF",
        [
            (0.5644, 0.2898),
            (0.2532, 0.1215),
            (0.2737, 0.1496),
            (0.2538, 0.1329),
            (0.3074, 0.1588),
            (0.4274, 0.2448),
        ],
    ),
    (
        "BPR-MF",
        [
            (0.6573, 0.3814),
            (0.2612, 0.1300),
            (0.2743, 0.1710),
            (0.3740, 0.2264),
            (0.1222, 0.0603),
            (0.1289, 0.0759),
        ],
    ),
    (
        "NGCF",
        [
            (0.5503, 0.2799),
            (0.2609, 0.1278),
            (0.3012, 0.1746),
            (0.3221, 0.1786),
            (0.1010, 0.0409),
            (0.3409, 0.1717),
        ],
    ),
    (
        "LibFM",
        [
            (0.3538, 0.1800),
            (0.2100, 0.0980),
            (0.2912, 0.1621),
            (0.3026, 0.1662),
            (0.1320, 0.0622),
            (0.1080, 0.0489),
        ],
    ),
    (
        "NFM",
        [
            (0.6701, 0.3896),
            (0.2599, 0.1199),
            (0.2766, 0.1517),
            (0.3029, 0.1683),
            (0.1863, 0.0865),
            (0.1711, 0.0770),
        ],
    ),
    (
        "AFM",
        [
            (0.6182, 0.3307),
            (0.2540, 0.1240),
            (0.2968, 0.1689),
            (0.2811, 0.1465),
            (0.4169, 0.2149),
            (0.3328, 0.1601),
        ],
    ),
    (
        "TransFM",
        [
            (0.6584, 0.3779),
            (0.2722, 0.1338),
            (0.3413, 0.1897),
            (0.3173, 0.1734),
            (0.2285, 0.1303),
            (0.2514, 0.1727),
        ],
    ),
    (
        "DeepFM",
        [
            (0.6650, 0.3792),
            (0.3062, 0.1567),
            (0.3086, 0.1680),
            (0.3272, 0.1735),
            (0.4088, 0.1798),
            (0.4666, 0.2433),
        ],
    ),
    (
        "xDeepFM",
        [
            (0.6609, 0.3813),
            (0.3031, 0.1539),
            (0.3221, 0.1709),
            (0.3300, 0.1823),
            (0.4030, 0.1809),
            (0.5337, 0.2897),
        ],
    ),
    (
        "GML-FM_md",
        [
            (0.6608, 0.3742),
            (0.3038, 0.1537),
            (0.3465, 0.1984),
            (0.3463, 0.1993),
            (0.5349, 0.2478),
            (0.4324, 0.2086),
        ],
    ),
    (
        "GML-FM_dnn",
        [
            (0.6709, 0.3889),
            (0.3354, 0.1756),
            (0.3794, 0.2160),
            (0.4133, 0.2177),
            (0.5782, 0.2894),
            (0.4458, 0.2143),
        ],
    ),
];

/// Table 5 ablations on (MovieLens, Mercari-Ticket):
/// `(variant, rmse_ml, rmse_ticket, hr_ml, ndcg_ml, hr_ticket, ndcg_ticket)`.
pub const TABLE5: [(&str, [f64; 6]); 11] = [
    ("w/o. weight & M", [0.6861, 1.0693, 0.6435, 0.3702, 0.1699, 0.0743]),
    ("w/. M only", [0.6815, 0.9627, 0.6091, 0.3446, 0.0423, 0.0181]),
    ("w/. weight & M", [0.6469, 0.7736, 0.6608, 0.3742, 0.5349, 0.2478]),
    ("#layers 0", [0.6475, 0.7832, 0.6553, 0.3762, 0.5245, 0.2444]),
    ("#layers 1", [0.6446, 0.7579, 0.6709, 0.3889, 0.5782, 0.2894]),
    ("#layers 2", [0.6478, 0.7456, 0.6732, 0.3879, 0.5857, 0.2963]),
    ("#layers 3", [0.6492, 0.7545, 0.6695, 0.3853, 0.5562, 0.2691]),
    ("Manhattan", [0.6832, 0.7903, 0.6498, 0.3799, 0.5335, 0.2701]),
    ("Euclidean", [0.6446, 0.7579, 0.6709, 0.3889, 0.5782, 0.2894]),
    ("Chebyshev", [0.7112, 0.7943, 0.6406, 0.3731, 0.5134, 0.2567]),
    ("Cosine", [0.7018, 0.7965, 0.6330, 0.3725, 0.5053, 0.2509]),
];

/// Table 6 attribute study on Mercari:
/// `(attributes, hr_ticket, ndcg_ticket, hr_books, ndcg_books)`.
pub const TABLE6: [(&str, [f64; 4]); 5] = [
    ("base", [0.1953, 0.1028, 0.1506, 0.0674]),
    ("base+cty", [0.5501, 0.2580, 0.4430, 0.2094]),
    ("base+cty+cdn", [0.5323, 0.2483, 0.4457, 0.2102]),
    ("base+cty+shp", [0.5645, 0.2777, 0.4465, 0.2130]),
    ("base+all", [0.5782, 0.2894, 0.4458, 0.2143]),
];

/// Dataset column order used by Tables 3/4.
pub const TABLE34_DATASETS: [&str; 6] =
    ["MovieLens", "Amazon-Office", "Amazon-Clothing", "Amazon-Auto", "Mercari-Ticket", "Mercari-Books"];
