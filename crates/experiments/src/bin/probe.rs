//! Hyper-parameter probe used while calibrating the reproduction; kept as
//! a tuning utility. Prints the ground-truth oracle bound plus
//! train-loss trajectories and test metrics for GML-FM_dnn on
//! Mercari-Ticket across learning rates and dropout settings.

use gmlfm_core::{GmlFm, GmlFmConfig};
use gmlfm_data::{generate_with_truth, loo_split, rating_split, DatasetSpec, FieldMask};
use gmlfm_eval::{evaluate_rating, evaluate_topn};
use gmlfm_train::{fit_regression, TrainConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.35);
    let spec = DatasetSpec::MercariTicket;
    let (dataset, truth) = generate_with_truth(&spec.config(2023).scaled(scale));
    let mask = FieldMask::all(&dataset.schema);
    let rating = rating_split(&dataset, &mask, 2, 7);
    let loo = loo_split(&dataset, &mask, 2, 99, 8);
    println!(
        "{}: {} train rating instances, {} loo-train, {} test users",
        spec.name(),
        rating.train.len(),
        loo.train.len(),
        loo.test.len()
    );

    // Oracle bound: fit a*score+b on train, evaluate on test.
    {
        let codec = gmlfm_models::PairCodec::from_schema(&dataset.schema);
        let fit = |insts: &[gmlfm_data::Instance]| -> (f64, f64) {
            let xs: Vec<f64> = insts
                .iter()
                .map(|i| {
                    let (u, it) = codec.decode(i);
                    truth.score(u, it)
                })
                .collect();
            let ys: Vec<f64> = insts.iter().map(|i| i.label).collect();
            let mx = xs.iter().sum::<f64>() / xs.len() as f64;
            let my = ys.iter().sum::<f64>() / ys.len() as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
            let a = cov / var.max(1e-12);
            (a, my - a * mx)
        };
        let (a, b) = fit(&rating.train);
        let mse: f64 = rating
            .test
            .iter()
            .map(|i| {
                let (u, it) = codec.decode(i);
                let p = (a * truth.score(u, it) + b).clamp(-1.0, 1.0);
                (p - i.label).powi(2)
            })
            .sum::<f64>()
            / rating.test.len() as f64;
        println!("ORACLE linear-in-truth test RMSE: {:.4}", mse.sqrt());
    }

    for (lr, dropout) in [(0.003, 0.2), (0.003, 0.5), (0.01, 0.5), (0.001, 0.2)] {
        {
            let (epochs, k) = (120usize, 32usize);
            let mut gcfg = GmlFmConfig::dnn(k, 1).with_seed(11).with_init_std(0.05);
            gcfg.dropout = dropout;
            let init_std = lr; // reuse the printed column for lr
            let _ = init_std;
            let mut model = GmlFm::new(dataset.schema.total_dim(), &gcfg);
            let tc = TrainConfig {
                lr,
                epochs,
                batch_size: 256,
                weight_decay: 1e-4,
                patience: 12,
                seed: 5,
                ..TrainConfig::default()
            };
            let report = fit_regression(&mut model, &rating.train, Some(&rating.val), &tc);
            let m = evaluate_rating(&model, &rating.test);

            let mut topn_model = GmlFm::new(dataset.schema.total_dim(), &gcfg);
            let t_report = fit_regression(&mut topn_model, &loo.train, None, &tc);
            let t = evaluate_topn(&topn_model, &dataset, &mask, &loo.test, 10);
            println!(
                "lr {lr:<6} drop {dropout:<4} ran {:<3} k={k:<3} loss {:.4}->{:.4} best-val {:.4} | RMSE {:.4} | HR {:.4} NDCG {:.4} (topn loss ->{:.4})",
                report.epochs_run,
                report.train_losses[0],
                report.train_losses.last().unwrap(),
                report.best_val_rmse,
                m.rmse,
                t.hr,
                t.ndcg,
                t_report.train_losses.last().unwrap(),
            );
        }
    }
}
