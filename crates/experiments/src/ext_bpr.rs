//! Extension study (paper Section 7's named future work): GML-FM trained
//! with the pairwise BPR objective versus the paper's point-wise squared
//! loss, on the top-n task.

use crate::datasets::make;
use crate::runner::{default_dnn_cfg, ExpConfig};
use gmlfm_core::GmlFm;
use gmlfm_data::{loo_split, DatasetSpec, FieldMask, NegativeSampler};
use gmlfm_engine::{FitData, ModelSpec};
use gmlfm_eval::{evaluate_topn, Table};
use gmlfm_train::{fit_bpr, TrainConfig};

/// Runs the point-wise vs pairwise comparison on two datasets; writes
/// `ext_bpr.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Extension: GML-FM + BPR (paper Section 7 future work) ==\n");
    let mut table = Table::new(&["Dataset", "objective", "HR@10", "NDCG@10"]);
    let mut csv = Table::new(&["dataset", "objective", "hr", "ndcg"]);

    for spec in [DatasetSpec::AmazonOffice, DatasetSpec::MercariTicket] {
        let dataset = make(spec, cfg);
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 99, cfg.seed ^ 0xe1);
        let n = dataset.schema.total_dim();
        let tc = TrainConfig { patience: 0, seed: cfg.seed ^ 0xe2, ..cfg.train_config() };
        eprintln!("[ext-bpr] {}", spec.name());

        // Point-wise (the paper's objective): train on positives + the
        // pre-sampled negatives, through the unified spec pipeline.
        let mut pointwise =
            ModelSpec::gml_fm(default_dnn_cfg(cfg.k, cfg.seed ^ 0xe3)).build(&dataset.schema, &mask);
        pointwise
            .fit(&FitData::instances(&split.train), &tc)
            .expect("point-wise training set");
        let pw = evaluate_topn(pointwise.scorer(), &dataset, &mask, &split.test, 10);

        // Pairwise BPR: positives only; negatives resampled each epoch.
        // This graph-level pairwise objective is the Section 7 extension
        // — it needs a dataset-aware negative-sampling closure, which is
        // beyond the Estimator fit contract, so it drives the GmlFm
        // graph model directly.
        let positives: Vec<_> = split.train.iter().filter(|i| i.label > 0.0).cloned().collect();
        let user_sets = dataset.user_item_sets();
        let sampler = NegativeSampler::new(dataset.n_items);
        let codec = gmlfm_models::PairCodec::from_schema(&dataset.schema);
        let mut bpr_model = GmlFm::new(n, &default_dnn_cfg(cfg.k, cfg.seed ^ 0xe4));
        fit_bpr(
            &mut bpr_model,
            &positives,
            |pos, rng| {
                let (u, _) = codec.decode(pos);
                let neg = sampler.sample(rng, &user_sets[u], 1)[0];
                dataset.instance_masked(u as u32, neg, -1.0, &mask)
            },
            &tc,
        );
        let bp = evaluate_topn(&bpr_model, &dataset, &mask, &split.test, 10);

        for (objective, m) in [("point-wise (paper)", &pw), ("BPR pairwise (ext)", &bp)] {
            table.push_row(vec![
                spec.name().to_string(),
                objective.to_string(),
                format!("{:.4}", m.hr),
                format!("{:.4}", m.ndcg),
            ]);
            csv.push_row(vec![
                spec.name().to_string(),
                objective.to_string(),
                format!("{:.4}", m.hr),
                format!("{:.4}", m.ndcg),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "The paper conjectures pairwise learning should suit the ranking task better\n\
         (its own BPR-MF observation in Section 5.1); this extension makes that testable."
    );
    csv.write_csv(cfg.out_dir.join("ext_bpr.csv")).expect("write ext_bpr.csv");
}
