//! Table 4: top-n recommendation (HR@10, NDCG@10) for 11 models across 6
//! datasets.

use crate::datasets::{make, COLUMN_SPECS};
use crate::paper::{TABLE34_DATASETS, TABLE4};
use crate::runner::{run_topn, ExpConfig, ModelKind};
use gmlfm_data::{loo_split, FieldMask};
use gmlfm_eval::{welch_t_test, Table};

/// Runs the full top-n grid, prints measured-vs-paper HR/NDCG, and writes
/// `table4.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Table 4: top-n recommendation (HR@10 / NDCG@10, higher is better) ==\n");
    let mut table = Table::new(&{
        let mut h = vec!["Model"];
        h.extend(TABLE34_DATASETS);
        h
    });
    let mut csv = Table::new(&["dataset", "model", "hr", "ndcg", "paper_hr", "paper_ndcg"]);

    let n_models = ModelKind::TOPN.len();
    let mut hr = vec![vec![0.0f64; COLUMN_SPECS.len()]; n_models];
    let mut ndcg = vec![vec![0.0f64; COLUMN_SPECS.len()]; n_models];
    let mut gml_hr: Vec<Vec<f64>> = vec![Vec::new(); COLUMN_SPECS.len()];
    let mut best_baseline_hr: Vec<f64> = vec![f64::NEG_INFINITY; COLUMN_SPECS.len()];
    let mut best_baseline_hr_users: Vec<Vec<f64>> = vec![Vec::new(); COLUMN_SPECS.len()];

    for (col, spec) in COLUMN_SPECS.iter().enumerate() {
        let dataset = make(*spec, cfg);
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 99, cfg.seed ^ 0x2222);
        eprintln!("[table4] {} ({} test users)", spec.name(), split.test.len());
        for (row, kind) in ModelKind::TOPN.iter().enumerate() {
            let m = run_topn(*kind, &dataset, &mask, &split, cfg);
            hr[row][col] = m.hr;
            ndcg[row][col] = m.ndcg;
            let (paper_hr, paper_ndcg) = TABLE4[row].1[col];
            csv.push_row(vec![
                spec.name().to_string(),
                kind.name().to_string(),
                format!("{:.4}", m.hr),
                format!("{:.4}", m.ndcg),
                format!("{paper_hr:.4}"),
                format!("{paper_ndcg:.4}"),
            ]);
            match kind {
                ModelKind::GmlFmDnn => gml_hr[col] = m.per_user_hr,
                ModelKind::GmlFmMd => {}
                _ => {
                    if m.hr > best_baseline_hr[col] {
                        best_baseline_hr[col] = m.hr;
                        best_baseline_hr_users[col] = m.per_user_hr;
                    }
                }
            }
        }
    }

    for (row, kind) in ModelKind::TOPN.iter().enumerate() {
        let mut cells = vec![kind.name().to_string()];
        for col in 0..COLUMN_SPECS.len() {
            let mut cell = format!("{:.4}/{:.4}", hr[row][col], ndcg[row][col]);
            if *kind == ModelKind::GmlFmDnn {
                if let Some(t) = welch_t_test(&gml_hr[col], &best_baseline_hr_users[col]) {
                    cell.push_str(t.marker());
                }
            }
            let (ph, pn) = TABLE4[row].1[col];
            cell.push_str(&format!(" ({ph:.4}/{pn:.4})"));
            cells.push(cell);
        }
        table.push_row(cells);
    }
    println!("{}", table.to_markdown());
    println!(
        "Cell format: HR/NDCG measured (paper). †/* mark significance of GML-FM_dnn vs best baseline HR."
    );

    // Paper's headline trend: the sparser the dataset, the larger the
    // GML-FM advantage over the best baseline.
    println!("\nShape check — GML-FM_dnn HR minus best-baseline HR per dataset:");
    for (col, spec) in COLUMN_SPECS.iter().enumerate() {
        let gml = hr[n_models - 1][col];
        println!(
            "  {:<16} Δ = {:+.4} (paper Δ on this dataset: {:+.4})",
            spec.name(),
            gml - best_baseline_hr[col],
            TABLE4[n_models - 1].1[col].0
                - TABLE4
                    .iter()
                    .take(n_models - 2)
                    .map(|r| r.1[col].0)
                    .fold(f64::NEG_INFINITY, f64::max)
        );
    }
    csv.write_csv(cfg.out_dir.join("table4.csv")).expect("write table4.csv");
}
