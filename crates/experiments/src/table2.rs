//! Table 2: dataset statistics, paper vs generated.

use crate::datasets;
use crate::paper::TABLE2;
use crate::runner::ExpConfig;
use gmlfm_data::DatasetSpec;
use gmlfm_eval::Table;

/// Prints the statistics of every generated dataset next to the paper's
/// originals and writes `table2.csv`.
pub fn run(cfg: &ExpConfig) {
    let mut table = Table::new(&[
        "Dataset",
        "#users",
        "#items",
        "#attr-dim",
        "#instances",
        "sparsity",
        "paper #users",
        "paper #items",
        "paper sparsity",
    ]);
    for spec in DatasetSpec::ALL {
        let stats = datasets::make(spec, cfg).stats();
        let paper = TABLE2
            .iter()
            .find(|(name, ..)| *name == spec.name())
            .expect("every spec has a paper row");
        table.push_row(vec![
            stats.name.clone(),
            stats.n_users.to_string(),
            stats.n_items.to_string(),
            stats.attribute_dim.to_string(),
            stats.n_instances.to_string(),
            format!("{:.2}%", stats.sparsity * 100.0),
            paper.1.to_string(),
            paper.2.to_string(),
            format!("{:.2}%", paper.5 * 100.0),
        ]);
    }
    println!("\n== Table 2: dataset statistics (generated at scale {}) ==\n", cfg.scale);
    println!("{}", table.to_markdown());
    println!(
        "Shape check: sparsity ordering (MovieLens densest -> Mercari-Books sparsest) \
         mirrors the paper; absolute sizes are scaled per DESIGN.md."
    );
    table.write_csv(cfg.out_dir.join("table2.csv")).expect("write table2.csv");
}
