//! Section 3.3: the O(k²n) efficient evaluation vs the naive O(k²n²)
//! double loop, measured on dense inputs. Criterion provides the rigorous
//! version (`efficiency_scaling` bench); this subcommand prints a quick
//! wall-clock sweep for EXPERIMENTS.md.

use crate::runner::ExpConfig;
use gmlfm_core::{DenseGmlFm, DenseTransform};
use gmlfm_eval::Table;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use std::time::Instant;

/// Times both evaluation paths over growing `n`; writes `efficiency.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Section 3.3: naive O(k²n²) vs efficient O(k²n) second-order evaluation ==\n");
    let k = cfg.k.max(8);
    let mut table = Table::new(&["n", "naive (µs)", "efficient (µs)", "speedup"]);
    let mut csv = Table::new(&["n", "naive_us", "efficient_us"]);
    for n in [64usize, 128, 256, 512, 1024, 2048] {
        let mut rng = seeded_rng(cfg.seed ^ n as u64);
        let v = normal(&mut rng, n, k, 0.0, 0.3);
        let h = normal(&mut rng, 1, k, 0.0, 0.3).into_vec();
        let l = normal(&mut rng, k, k, 0.0, 0.3);
        let model = DenseGmlFm { v, h, transform: DenseTransform::Mahalanobis(l.matmul_tn(&l)) };
        let x: Vec<f64> = normal(&mut rng, 1, n, 0.0, 1.0).into_vec();

        let reps = (200_000 / n).max(1);
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += model.second_order_naive(&x);
        }
        let naive_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            acc -= model.second_order_efficient(&x);
        }
        let efficient_us = t1.elapsed().as_secs_f64() * 1e6 / reps as f64;
        assert!(acc.abs() < 1e-3 * reps as f64, "paths disagree: residual {acc}");
        table.push_row(vec![
            n.to_string(),
            format!("{naive_us:.1}"),
            format!("{efficient_us:.1}"),
            format!("{:.1}x", naive_us / efficient_us),
        ]);
        csv.push_row(vec![n.to_string(), format!("{naive_us:.1}"), format!("{efficient_us:.1}")]);
    }
    println!("{}", table.to_markdown());
    println!("Expected shape: naive time grows ~4x per doubling of n, efficient ~2x; the gap widens linearly in n.");
    csv.write_csv(cfg.out_dir.join("efficiency.csv")).expect("write efficiency.csv");
}
