//! Table 3: rating-prediction RMSE for 10 models across 6 datasets.

use crate::datasets::{make, COLUMN_SPECS};
use crate::paper::{TABLE3, TABLE34_DATASETS};
use crate::runner::{run_rating, ExpConfig, ModelKind};
use gmlfm_data::{rating_split, FieldMask};
use gmlfm_eval::{welch_t_test, Table};

/// Runs the full rating grid, prints measured-vs-paper RMSE, marks the
/// significance of GML-FM_dnn against the best baseline per dataset, and
/// writes `table3.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Table 3: rating prediction (RMSE, lower is better) ==\n");
    let mut table = Table::new(&{
        let mut h = vec!["Model"];
        h.extend(TABLE34_DATASETS);
        h
    });
    let mut csv = Table::new(&["dataset", "model", "rmse", "paper_rmse"]);

    // Measure column by column so each dataset is generated once.
    let mut measured = vec![vec![0.0f64; COLUMN_SPECS.len()]; ModelKind::RATING.len()];
    let mut gml_errors: Vec<Vec<f64>> = vec![Vec::new(); COLUMN_SPECS.len()];
    let mut baseline_errors: Vec<Vec<f64>> = vec![Vec::new(); COLUMN_SPECS.len()];
    let mut baseline_best: Vec<f64> = vec![f64::INFINITY; COLUMN_SPECS.len()];

    for (col, spec) in COLUMN_SPECS.iter().enumerate() {
        let dataset = make(*spec, cfg);
        let mask = FieldMask::all(&dataset.schema);
        let split = rating_split(&dataset, &mask, 2, cfg.seed ^ 0x1111);
        eprintln!("[table3] {} ({} train instances)", spec.name(), split.train.len());
        for (row, kind) in ModelKind::RATING.iter().enumerate() {
            let (metrics, sq_errors) = run_rating(*kind, &dataset, &mask, &split, cfg);
            measured[row][col] = metrics.rmse;
            let paper_rmse = TABLE3[row].1[col];
            csv.push_row(vec![
                spec.name().to_string(),
                kind.name().to_string(),
                format!("{:.4}", metrics.rmse),
                format!("{paper_rmse:.4}"),
            ]);
            match kind {
                ModelKind::GmlFmDnn => gml_errors[col] = sq_errors,
                ModelKind::GmlFmMd => {}
                _ => {
                    if metrics.rmse < baseline_best[col] {
                        baseline_best[col] = metrics.rmse;
                        baseline_errors[col] = sq_errors;
                    }
                }
            }
        }
    }

    for (row, kind) in ModelKind::RATING.iter().enumerate() {
        let mut cells = vec![kind.name().to_string()];
        for (col, _) in COLUMN_SPECS.iter().enumerate() {
            let mut cell = format!("{:.4}", measured[row][col]);
            if *kind == ModelKind::GmlFmDnn {
                if let Some(t) = welch_t_test(&gml_errors[col], &baseline_errors[col]) {
                    cell.push_str(t.marker());
                }
            }
            cell.push_str(&format!(" ({:.4})", TABLE3[row].1[col]));
            cells.push(cell);
        }
        table.push_row(cells);
    }
    println!("{}", table.to_markdown());
    println!("Cell format: measured (paper). †/* mark p<0.01 / p<0.05 for GML-FM_dnn vs the best baseline.");

    // Shape checks the paper's narrative rests on.
    let mut wins = 0usize;
    for col in 0..COLUMN_SPECS.len() {
        let gml = measured[ModelKind::RATING.len() - 1][col].min(measured[ModelKind::RATING.len() - 2][col]);
        if gml <= baseline_best[col] + 1e-9 {
            wins += 1;
        }
    }
    println!("\nShape check: best GML-FM variant beats the best baseline on {wins}/6 datasets (paper: 5/6, MovieLens being the exception).");
    csv.write_csv(cfg.out_dir.join("table3.csv")).expect("write table3.csv");
}
