//! Figure 4: cold-start rating prediction on MovieLens — GML-FM vs the
//! MAMO-lite meta-learning baseline across the four warm/cold quadrants.
//!
//! Protocol (adapted, documented in DESIGN.md): a MovieLens-like dataset
//! is generated with per-user activity down to a single interaction. For
//! every user, 30% of interactions (at least one) are held out as
//! queries; the rest are the support set. Users are *warm* when their
//! support has ≥ 6 interactions, items are *warm* when they appear in
//! ≥ 3 supports. RMSE (on ±1 implicit targets, one sampled negative per
//! query) is reported per support-size bucket 1..=15 for each quadrant:
//! W-W, W-C, C-W, C-C.

use crate::runner::{default_dnn_cfg, ExpConfig};
use gmlfm_data::{generate, DatasetSpec, FieldMask, Instance, NegativeSampler};
use gmlfm_engine::{FitData, ModelSpec};
use gmlfm_eval::Table;
use gmlfm_models::{
    mamo::{MamoConfig, MamoTask},
    MamoLite,
};
use gmlfm_tensor::seeded_rng;
use gmlfm_train::TrainConfig;
use std::collections::{HashMap, HashSet};

const WARM_USER_MIN: usize = 6;
const WARM_ITEM_MIN: usize = 3;

struct ColdStartData {
    dataset: gmlfm_data::Dataset,
    /// Per-user support positives.
    support: Vec<Vec<u32>>,
    /// Per-user query positives.
    queries: Vec<Vec<u32>>,
    /// Items counted warm by support frequency.
    warm_items: HashSet<u32>,
}

fn build(cfg: &ExpConfig) -> ColdStartData {
    let spec = DatasetSpec::MovieLens
        .config(cfg.seed ^ 0x8888)
        .scaled(cfg.scale)
        .with_interactions(1, 25);
    let dataset = generate(&spec);
    let mut rng = seeded_rng(cfg.seed ^ 0x8889);
    let mut support = vec![Vec::new(); dataset.n_users];
    let mut queries = vec![Vec::new(); dataset.n_users];
    let mut by_user: Vec<Vec<(u32, u32)>> = vec![Vec::new(); dataset.n_users];
    for it in &dataset.interactions {
        by_user[it.user as usize].push((it.ts, it.item));
    }
    for (u, mut items) in by_user.into_iter().enumerate() {
        items.sort_unstable();
        let n_query = (items.len() as f64 * 0.3).ceil() as usize;
        let n_query = n_query.clamp(1, items.len().saturating_sub(0));
        for (i, (_, item)) in items.into_iter().enumerate().rev() {
            if queries[u].len() < n_query && i > 0 {
                queries[u].push(item);
            } else {
                support[u].push(item);
            }
        }
        // Users whose every interaction would be a query keep one support.
        if support[u].is_empty() && !queries[u].is_empty() {
            support[u].push(queries[u].pop().expect("non-empty"));
        }
    }
    let mut item_counts: HashMap<u32, usize> = HashMap::new();
    for items in &support {
        for &i in items {
            *item_counts.entry(i).or_default() += 1;
        }
    }
    let warm_items = item_counts
        .iter()
        .filter(|(_, &c)| c >= WARM_ITEM_MIN)
        .map(|(&i, _)| i)
        .collect();
    let _ = &mut rng;
    ColdStartData { dataset, support, queries, warm_items }
}

/// Per-(quadrant, bucket) squared-error accumulators.
#[derive(Default, Clone)]
struct Cell {
    sum_sq: f64,
    n: usize,
}

fn quadrant(user_warm: bool, item_warm: bool) -> usize {
    match (user_warm, item_warm) {
        (true, true) => 0,   // W-W
        (true, false) => 1,  // W-C
        (false, true) => 2,  // C-W
        (false, false) => 3, // C-C
    }
}

const QUADRANTS: [&str; 4] = ["W-W", "W-C", "C-W", "C-C"];

/// Runs the cold-start comparison; writes `fig4.csv`.
pub fn run(cfg: &ExpConfig) {
    println!("\n== Figure 4: cold-start RMSE vs #support interactions (MAMO-lite vs GML-FM) ==\n");
    let data = build(cfg);
    let d = &data.dataset;
    let mask = FieldMask::all(&d.schema);
    let sampler = NegativeSampler::new(d.n_items);
    let mut rng = seeded_rng(cfg.seed ^ 0x88aa);
    let user_sets = d.user_item_sets();

    // --- Train GML-FM on all support positives + sampled negatives -------
    let mut train: Vec<Instance> = Vec::new();
    for (u, items) in data.support.iter().enumerate() {
        for &item in items {
            train.push(d.instance_masked(u as u32, item, 1.0, &mask));
            for neg in sampler.sample(&mut rng, &user_sets[u], 2) {
                train.push(d.instance_masked(u as u32, neg, -1.0, &mask));
            }
        }
    }
    let spec = ModelSpec::gml_fm(default_dnn_cfg(cfg.k, cfg.seed ^ 0x8b));
    let mut gml = spec.build(&d.schema, &mask);
    let tc = TrainConfig { patience: 0, seed: cfg.seed ^ 0x8c, ..cfg.train_config() };
    gml.fit(&FitData::instances(&train), &tc)
        .expect("cold-start support set is non-empty");

    // --- Meta-train MAMO-lite on warm users' support tasks ----------------
    let profile_cards: Vec<usize> =
        d.user_attr_fields.iter().map(|&f| d.schema.fields()[f].cardinality).collect();
    let tasks: Vec<MamoTask> = data
        .support
        .iter()
        .enumerate()
        .filter(|(_, items)| !items.is_empty())
        .map(|(u, items)| {
            let mut support: Vec<(usize, f64)> = items.iter().map(|&i| (i as usize, 1.0)).collect();
            for neg in sampler.sample(&mut rng, &user_sets[u], items.len().min(3)) {
                support.push((neg as usize, -1.0));
            }
            MamoTask { profile: d.user_attrs[u].clone(), support }
        })
        .collect();
    let mut mamo = MamoLite::new(
        d.n_items,
        &profile_cards,
        MamoConfig { k: cfg.k, epochs: cfg.epochs.min(8), ..MamoConfig::default() },
    );
    mamo.fit(&tasks);

    // --- Evaluate both on queries, bucketed by support size ---------------
    let mut gml_cells = vec![vec![Cell::default(); 15]; 4];
    let mut mamo_cells = vec![vec![Cell::default(); 15]; 4];
    for (u, queries) in data.queries.iter().enumerate() {
        if queries.is_empty() || data.support[u].is_empty() {
            continue;
        }
        let n_support = data.support[u].len();
        let bucket = n_support.min(15) - 1;
        let user_warm = n_support >= WARM_USER_MIN;
        // Query set: each positive paired with one sampled negative.
        let mut query_items: Vec<(u32, f64)> = Vec::new();
        for &q in queries {
            query_items.push((q, 1.0));
            let neg = sampler.sample(&mut rng, &user_sets[u], 1)[0];
            query_items.push((neg, -1.0));
        }
        // GML-FM predictions.
        let instances: Vec<Instance> = query_items
            .iter()
            .map(|&(item, label)| d.instance_masked(u as u32, item, label, &mask))
            .collect();
        let gml_preds = gml.scorer().scores(&instances);
        // MAMO predictions (adapting on the user's support).
        let support: Vec<(usize, f64)> = data.support[u].iter().map(|&i| (i as usize, 1.0)).collect();
        let items: Vec<usize> = query_items.iter().map(|&(i, _)| i as usize).collect();
        let mamo_preds = mamo.predict(&d.user_attrs[u], &support, &items);

        for ((&(item, label), gp), mp) in query_items.iter().zip(&gml_preds).zip(&mamo_preds) {
            let item_warm = data.warm_items.contains(&item);
            let q = quadrant(user_warm, item_warm);
            let gcell = &mut gml_cells[q][bucket];
            gcell.sum_sq += (gp - label) * (gp - label);
            gcell.n += 1;
            let mcell = &mut mamo_cells[q][bucket];
            mcell.sum_sq += (mp - label) * (mp - label);
            mcell.n += 1;
        }
    }

    let mut csv = Table::new(&["quadrant", "support_size", "model", "rmse", "n"]);
    for (q, qname) in QUADRANTS.iter().enumerate() {
        println!("--- {qname} ---");
        let mut table = Table::new(&["#interactions", "MAMO-lite RMSE", "GML-FM RMSE", "n"]);
        let mut gml_wins = 0usize;
        let mut buckets = 0usize;
        for b in 0..15 {
            let (g, m) = (&gml_cells[q][b], &mamo_cells[q][b]);
            if g.n < 4 {
                continue;
            }
            let g_rmse = (g.sum_sq / g.n as f64).sqrt();
            let m_rmse = (m.sum_sq / m.n as f64).sqrt();
            table.push_row(vec![
                (b + 1).to_string(),
                format!("{m_rmse:.4}"),
                format!("{g_rmse:.4}"),
                g.n.to_string(),
            ]);
            csv.push_row(vec![
                qname.to_string(),
                (b + 1).to_string(),
                "MAMO-lite".into(),
                format!("{m_rmse:.4}"),
                m.n.to_string(),
            ]);
            csv.push_row(vec![
                qname.to_string(),
                (b + 1).to_string(),
                "GML-FM".into(),
                format!("{g_rmse:.4}"),
                g.n.to_string(),
            ]);
            buckets += 1;
            if g_rmse < m_rmse {
                gml_wins += 1;
            }
        }
        println!("{}", table.to_markdown());
        println!("GML-FM beats MAMO-lite on {gml_wins}/{buckets} populated buckets (paper: consistently).\n");
    }
    csv.write_csv(cfg.out_dir.join("fig4.csv")).expect("write fig4.csv");
}
