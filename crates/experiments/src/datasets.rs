//! Shared dataset construction for the experiment modules.

use crate::runner::ExpConfig;
use gmlfm_data::{generate, Dataset, DatasetSpec};

/// Table 3/4 dataset column order mapped to generator specs.
pub const COLUMN_SPECS: [DatasetSpec; 6] = [
    DatasetSpec::MovieLens,
    DatasetSpec::AmazonOffice,
    DatasetSpec::AmazonClothing,
    DatasetSpec::AmazonAuto,
    DatasetSpec::MercariTicket,
    DatasetSpec::MercariBooks,
];

/// Generates a dataset at the experiment scale.
pub fn make(spec: DatasetSpec, cfg: &ExpConfig) -> Dataset {
    generate(&spec.config(cfg.seed).scaled(cfg.scale))
}
