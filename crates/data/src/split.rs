//! Train/validation/test protocols from Section 4.3 of the paper.

use crate::dataset::Dataset;
use crate::instance::Instance;
use crate::sampling::NegativeSampler;
use crate::schema::FieldMask;
use gmlfm_tensor::seeded_rng;
use rand::seq::SliceRandom;
use std::collections::HashSet;

/// Rating-prediction split (Section 4.3.1): positives labelled `+1`, two
/// sampled negatives per positive labelled `-1`, shuffled and split
/// 70% / 20% / 10%.
#[derive(Debug, Clone)]
pub struct RatingSplit {
    /// 70% training instances.
    pub train: Vec<Instance>,
    /// 20% validation instances (hyper-parameter tuning).
    pub val: Vec<Instance>,
    /// 10% test instances (reported numbers).
    pub test: Vec<Instance>,
}

/// Builds the rating-prediction split.
///
/// `neg_per_pos` is 2 in the paper. The split is deterministic in `seed`
/// and independent of the model under evaluation, mirroring the paper's
/// "same positive and negative instances for all models".
pub fn rating_split(dataset: &Dataset, mask: &FieldMask, neg_per_pos: usize, seed: u64) -> RatingSplit {
    let mut rng = seeded_rng(seed);
    let user_items = dataset.user_item_sets();
    let sampler = NegativeSampler::new(dataset.n_items);

    let mut instances = Vec::with_capacity(dataset.interactions.len() * (1 + neg_per_pos));
    for it in &dataset.interactions {
        instances.push(dataset.instance_masked(it.user, it.item, 1.0, mask));
        for neg in sampler.sample(&mut rng, &user_items[it.user as usize], neg_per_pos) {
            instances.push(dataset.instance_masked(it.user, neg, -1.0, mask));
        }
    }
    instances.shuffle(&mut rng);

    let n = instances.len();
    let train_end = (n as f64 * 0.7).round() as usize;
    let val_end = (n as f64 * 0.9).round() as usize;
    let mut iter = instances.into_iter();
    let train: Vec<_> = iter.by_ref().take(train_end).collect();
    let val: Vec<_> = iter.by_ref().take(val_end - train_end).collect();
    let test: Vec<_> = iter.collect();
    RatingSplit { train, val, test }
}

/// One leave-one-out test case: rank the held-out positive item against 99
/// sampled negatives and truncate at 10 (Section 4.3.2).
#[derive(Debug, Clone)]
pub struct LooTestCase {
    /// The evaluated user.
    pub user: u32,
    /// The user's latest (held-out) interaction.
    pub pos_item: u32,
    /// Sampled non-interacted candidate items.
    pub negatives: Vec<u32>,
}

/// Leave-one-out split for top-n recommendation.
#[derive(Debug, Clone)]
pub struct LooSplit {
    /// Training instances: remaining positives plus `neg_per_pos` sampled
    /// negatives each (for FM-family point-wise models).
    pub train: Vec<Instance>,
    /// The positive `(user, item)` pairs in the training portion (for
    /// MF-family models that sample their own negatives, e.g. BPR).
    pub train_pairs: Vec<(u32, u32)>,
    /// Items each user interacts with in the *training* portion.
    pub train_user_items: Vec<HashSet<u32>>,
    /// One ranking case per user with at least two interactions.
    pub test: Vec<LooTestCase>,
}

/// Builds the leave-one-out split: each user's latest interaction is held
/// out for testing; `n_candidates` (99 in the paper) negatives are drawn
/// per test case; training positives are paired with `neg_per_pos`
/// negatives.
pub fn loo_split(
    dataset: &Dataset,
    mask: &FieldMask,
    neg_per_pos: usize,
    n_candidates: usize,
    seed: u64,
) -> LooSplit {
    let mut rng = seeded_rng(seed);
    let all_user_items = dataset.user_item_sets();
    let sampler = NegativeSampler::new(dataset.n_items);

    // Latest interaction per user.
    let mut latest: Vec<Option<(u32, u32)>> = vec![None; dataset.n_users]; // (ts, item)
    let mut counts = vec![0usize; dataset.n_users];
    for it in &dataset.interactions {
        counts[it.user as usize] += 1;
        let slot = &mut latest[it.user as usize];
        if slot.is_none_or(|(ts, _)| it.ts > ts) {
            *slot = Some((it.ts, it.item));
        }
    }

    let mut train = Vec::new();
    let mut train_pairs = Vec::new();
    let mut train_user_items = vec![HashSet::new(); dataset.n_users];
    for it in &dataset.interactions {
        let u = it.user as usize;
        let is_test = counts[u] >= 2 && latest[u].is_some_and(|(ts, item)| ts == it.ts && item == it.item);
        if is_test {
            continue;
        }
        train.push(dataset.instance_masked(it.user, it.item, 1.0, mask));
        train_pairs.push((it.user, it.item));
        train_user_items[u].insert(it.item);
        for neg in sampler.sample(&mut rng, &all_user_items[u], neg_per_pos) {
            train.push(dataset.instance_masked(it.user, neg, -1.0, mask));
        }
    }
    train.shuffle(&mut rng);

    let mut test = Vec::new();
    for user in 0..dataset.n_users {
        if counts[user] < 2 {
            continue;
        }
        let (_, pos_item) = latest[user].expect("user with >=2 interactions has a latest");
        // Small-scale datasets may not have `n_candidates` free items for
        // heavy users; clamp to what exists (the paper's full-size datasets
        // always have enough).
        let available = dataset.n_items - all_user_items[user].len();
        let negatives = sampler.sample(&mut rng, &all_user_items[user], n_candidates.min(available));
        test.push(LooTestCase { user: user as u32, pos_item, negatives });
    }

    LooSplit { train, train_pairs, train_user_items, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, DatasetSpec};

    fn dataset() -> Dataset {
        generate(&DatasetSpec::AmazonAuto.config(11).scaled(0.3))
    }

    #[test]
    fn rating_split_proportions_and_labels() {
        let d = dataset();
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 1);
        let total = s.train.len() + s.val.len() + s.test.len();
        assert_eq!(total, d.interactions.len() * 3);
        let frac_train = s.train.len() as f64 / total as f64;
        assert!((frac_train - 0.7).abs() < 0.01, "train fraction {frac_train}");
        let pos = s.train.iter().filter(|i| i.label > 0.0).count();
        let neg = s.train.iter().filter(|i| i.label < 0.0).count();
        // Ratio of negatives to positives should be close to 2:1.
        let ratio = neg as f64 / pos as f64;
        assert!((ratio - 2.0).abs() < 0.3, "neg/pos ratio {ratio}");
    }

    #[test]
    fn rating_split_is_deterministic() {
        let d = dataset();
        let mask = FieldMask::all(&d.schema);
        let a = rating_split(&d, &mask, 2, 9);
        let b = rating_split(&d, &mask, 2, 9);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn loo_holds_out_exactly_one_positive_per_eligible_user() {
        let d = dataset();
        let mask = FieldMask::all(&d.schema);
        let s = loo_split(&d, &mask, 2, 99, 2);
        let eligible = d.user_counts().iter().filter(|&&c| c >= 2).count();
        assert_eq!(s.test.len(), eligible);
        for case in &s.test {
            assert_eq!(case.negatives.len(), 99);
            // Held-out item is not in the user's training set.
            assert!(!s.train_user_items[case.user as usize].contains(&case.pos_item));
            // Negatives were never interacted with by this user at all.
            for n in &case.negatives {
                assert!(!s.train_user_items[case.user as usize].contains(n));
                assert_ne!(*n, case.pos_item);
            }
        }
    }

    #[test]
    fn loo_train_contains_all_but_held_out_positives() {
        let d = dataset();
        let mask = FieldMask::all(&d.schema);
        let s = loo_split(&d, &mask, 2, 50, 3);
        let held_out = s.test.len();
        assert_eq!(s.train_pairs.len(), d.interactions.len() - held_out);
    }
}
