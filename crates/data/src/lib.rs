//! # gmlfm-data
//!
//! Data substrate for the GML-FM reproduction: attribute schemas, sparse
//! instances, synthetic dataset generators calibrated to the paper's
//! Table 2, train/validation/test splitting, and negative sampling.
//!
//! ## Why synthetic data
//!
//! The paper evaluates on three Amazon 5-core categories, MovieLens-1M and
//! two proprietary Mercari categories. The Mercari data was never released,
//! and shipping the public datasets inside a source repository is neither
//! possible nor useful for CI. Instead, [`synth`] generates seeded datasets
//! whose *mechanisms* match what the paper attributes its results to:
//!
//! * a metric (distance-based) ground-truth preference model, with planted
//!   **intra-attribute feature correlations** — linear for some datasets,
//!   non-linear (tanh-mixed) for others — which is exactly the structure
//!   GML-FM claims to capture and inner-product FMs cannot;
//! * Zipf-distributed item popularity and a long-tailed per-user activity
//!   distribution, preserving the 5-core property;
//! * per-dataset sparsity levels whose *ordering* matches Table 2
//!   (MovieLens densest → Mercari-Books sparsest), so the paper's
//!   "sparser data ⇒ larger GML-FM advantage" trend is testable.
//!
//! Sizes are scaled (≈ ÷10 users/items) to keep the full experiment grid
//! laptop-runnable; the resulting statistics are printed by the `repro
//! table2` command next to the paper's originals.

pub mod dataset;
pub mod instance;
pub mod sampling;
pub mod schema;
pub mod split;
pub mod synth;

pub use dataset::{Dataset, DatasetStats};
pub use instance::Instance;
pub use sampling::{NegativeSampler, ZipfSampler};
pub use schema::{FieldKind, FieldMask, Schema};
pub use split::{loo_split, rating_split, LooSplit, LooTestCase, RatingSplit};
pub use synth::{
    generate, generate_scale, generate_with_truth, DatasetSpec, GroundTruth, ScaleConfig, SynthConfig,
};
