//! Seeded synthetic dataset generators calibrated to the paper's Table 2.
//!
//! ## Ground-truth preference model
//!
//! The generator plants exactly the structure the paper argues GML-FM
//! captures and prior FMs miss:
//!
//! 1. every entity (user, item, attribute value) gets a latent vector
//!    `z ∈ R^d`;
//! 2. item latents are a mix of their attribute latents plus item noise,
//!    so side information is genuinely predictive (the cold-start
//!    mechanism);
//! 3. the *true* affinity is **metric**, not inner-product:
//!    `s(u, i) = −‖ψ(z_u) − ψ(z_i)‖²` where `ψ` is a ground-truth feature
//!    transform — identity/linear `Gz` (linear intra-attribute feature
//!    correlations, Fig. 1a) or `tanh(G₂ tanh(G₁ z))` (non-linear
//!    correlations, Fig. 1b);
//! 4. item popularity follows a Zipf law and per-user activity is
//!    long-tailed with a 5-core floor, matching the e-commerce datasets.
//!
//! Because the true score obeys the triangle inequality in a *transformed*
//! space, a model that can learn that transform (GML-FM) is favoured over
//! one restricted to the identity transform (TransFM's plain Euclidean) or
//! to inner products (FM/NFM/DeepFM) — which is precisely the paper's
//! hypothesis, now testable end-to-end.

use crate::dataset::{Dataset, Interaction};
use crate::sampling::ZipfSampler;
use crate::schema::{FieldKind, Schema};
use gmlfm_tensor::init::{normal, standard_normal};
use gmlfm_tensor::{seeded_rng, Matrix};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// How the planted intra-attribute feature correlations mix the latent
/// space (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correlation {
    /// `ψ(z) = z`: no feature correlations (plain Euclidean world).
    None,
    /// `ψ(z) = G z`: linear correlations (Fig. 1a), learnable by the
    /// Mahalanobis distance.
    Linear,
    /// `ψ(z) = tanh(G₂ tanh(G₁ z))`: non-linear correlations (Fig. 1b),
    /// requiring the DNN distance.
    Nonlinear,
}

/// Configuration of one synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Dataset name (Table 2 row).
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Inclusive range of interactions per user (min ≥ 1; the paper's
    /// public datasets are 5-core, so specs use min = 5).
    pub interactions_per_user: (usize, usize),
    /// User-side attribute fields as `(name, cardinality)`.
    pub user_attrs: Vec<(String, usize)>,
    /// Item-side attribute fields as `(name, cardinality, kind)`.
    pub item_attrs: Vec<(String, usize, FieldKind)>,
    /// Ground-truth feature-correlation structure.
    pub correlation: Correlation,
    /// Zipf exponent for item popularity.
    pub zipf_s: f64,
    /// Std-dev of observation noise added to true scores.
    pub noise: f64,
    /// Latent dimensionality of the ground-truth model.
    pub latent_dim: usize,
    /// Master seed; every derived RNG is deterministic in it.
    pub seed: u64,
}

/// The six evaluation datasets of Table 2, scaled for laptop runs.
///
/// Users/items are scaled roughly ÷10 from the paper. Sparsity *ordering*
/// is preserved exactly (MovieLens densest → Mercari-Books sparsest);
/// absolute sparsity is necessarily lower because the 5-core floor cannot
/// be kept while scaling both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetSpec {
    /// Amazon-Auto (paper: 2,928 users / 1,835 items / 99.62%).
    AmazonAuto,
    /// Amazon-Office (paper: 4,905 / 2,420 / 99.55%).
    AmazonOffice,
    /// Amazon-Clothing (paper: 39,387 / 23,033 / 99.96%).
    AmazonClothing,
    /// Mercari-Ticket (paper: 3,855 / 45,998 / 99.97%).
    MercariTicket,
    /// Mercari-Books (paper: 26,080 / 367,968 / 99.99%).
    MercariBooks,
    /// MovieLens-1M (paper: 6,040 / 3,706 / 95.53%).
    MovieLens,
}

impl DatasetSpec {
    /// All six specs in Table 2 order.
    pub const ALL: [DatasetSpec; 6] = [
        DatasetSpec::AmazonAuto,
        DatasetSpec::AmazonOffice,
        DatasetSpec::AmazonClothing,
        DatasetSpec::MercariTicket,
        DatasetSpec::MercariBooks,
        DatasetSpec::MovieLens,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::AmazonAuto => "Amazon-Auto",
            DatasetSpec::AmazonOffice => "Amazon-Office",
            DatasetSpec::AmazonClothing => "Amazon-Clothing",
            DatasetSpec::MercariTicket => "Mercari-Ticket",
            DatasetSpec::MercariBooks => "Mercari-Books",
            DatasetSpec::MovieLens => "MovieLens",
        }
    }

    /// Full-scale configuration for this dataset.
    pub fn config(&self, seed: u64) -> SynthConfig {
        let s = |v: &str| v.to_string();
        match self {
            DatasetSpec::AmazonAuto => SynthConfig {
                name: s("Amazon-Auto"),
                n_users: 300,
                n_items: 1500,
                interactions_per_user: (5, 10),
                user_attrs: vec![],
                item_attrs: vec![(s("subcategory"), 18, FieldKind::ItemAttr)],
                correlation: Correlation::Linear,
                zipf_s: 1.0,
                noise: 0.25,
                latent_dim: 8,
                seed,
            },
            DatasetSpec::AmazonOffice => SynthConfig {
                name: s("Amazon-Office"),
                n_users: 500,
                n_items: 1400,
                interactions_per_user: (5, 14),
                user_attrs: vec![],
                item_attrs: vec![(s("subcategory"), 24, FieldKind::ItemAttr)],
                correlation: Correlation::Linear,
                zipf_s: 1.0,
                noise: 0.25,
                latent_dim: 8,
                seed,
            },
            DatasetSpec::AmazonClothing => SynthConfig {
                name: s("Amazon-Clothing"),
                n_users: 1200,
                n_items: 3000,
                interactions_per_user: (5, 10),
                user_attrs: vec![],
                item_attrs: vec![(s("subcategory"), 30, FieldKind::ItemAttr)],
                correlation: Correlation::Nonlinear,
                zipf_s: 1.05,
                noise: 0.25,
                latent_dim: 8,
                seed,
            },
            DatasetSpec::MercariTicket => SynthConfig {
                name: s("Mercari-Ticket"),
                n_users: 400,
                n_items: 4600,
                interactions_per_user: (5, 12),
                user_attrs: vec![],
                item_attrs: mercari_attrs(30),
                correlation: Correlation::Nonlinear,
                zipf_s: 1.15,
                noise: 0.2,
                latent_dim: 8,
                seed,
            },
            DatasetSpec::MercariBooks => SynthConfig {
                name: s("Mercari-Books"),
                n_users: 1000,
                n_items: 9000,
                interactions_per_user: (5, 12),
                user_attrs: vec![],
                item_attrs: mercari_attrs(40),
                correlation: Correlation::Nonlinear,
                zipf_s: 1.2,
                noise: 0.2,
                latent_dim: 8,
                seed,
            },
            DatasetSpec::MovieLens => SynthConfig {
                name: s("MovieLens"),
                n_users: 600,
                n_items: 360,
                interactions_per_user: (5, 30),
                user_attrs: vec![(s("gender"), 2), (s("age"), 7), (s("occupation"), 21)],
                item_attrs: vec![(s("genre"), 18, FieldKind::ItemAttr)],
                correlation: Correlation::Nonlinear,
                zipf_s: 0.9,
                noise: 0.3,
                latent_dim: 8,
                seed,
            },
        }
    }
}

fn mercari_attrs(categories: usize) -> Vec<(String, usize, FieldKind)> {
    let s = |v: &str| v.to_string();
    vec![
        (s("category"), categories, FieldKind::Category),
        (s("condition"), 5, FieldKind::Condition),
        (s("ship_method"), 5, FieldKind::Shipping),
        (s("ship_origin"), 10, FieldKind::Shipping),
        (s("ship_duration"), 7, FieldKind::Shipping),
    ]
}

impl SynthConfig {
    /// Scales user/item counts and the per-user interaction cap by
    /// `factor` (≥ 1 keeps the 5-core floor). Used by benches and tests to
    /// shrink datasets further.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |v: usize| ((v as f64 * factor).round() as usize).max(8);
        self.n_users = scale(self.n_users);
        self.n_items = scale(self.n_items);
        let (lo, hi) = self.interactions_per_user;
        self.interactions_per_user = (lo.min(self.n_items / 2).max(1), hi.clamp(2, self.n_items / 2));
        self
    }

    /// Overrides the per-user interaction range (the cold-start study of
    /// Fig. 4 needs users with as few as one training interaction).
    pub fn with_interactions(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && max >= min, "invalid interaction range [{min}, {max}]");
        self.interactions_per_user = (min, max);
        self
    }
}

/// Ground-truth transform `ψ` with its mixing matrices.
struct TruthTransform {
    correlation: Correlation,
    g1: Matrix,
    g2: Matrix,
}

impl TruthTransform {
    fn new(correlation: Correlation, d: usize, rng: &mut StdRng) -> Self {
        // Scale 1.6/sqrt(d) gives a strongly non-linear ψ (tanh works in
        // its curved-to-saturated range). Calibration runs showed milder
        // scales (0.6/sqrt(d)) reduce every model's headroom on the sparse
        // Mercari configs, so the stronger mixing is kept.
        let scale = 1.6 / (d as f64).sqrt();
        Self {
            correlation,
            g1: normal(rng, d, d, 0.0, 1.0).scale(scale),
            g2: normal(rng, d, d, 0.0, 1.0).scale(scale),
        }
    }

    fn apply(&self, z: &Matrix) -> Matrix {
        match self.correlation {
            Correlation::None => z.clone(),
            Correlation::Linear => z.matmul(&self.g1),
            Correlation::Nonlinear => {
                let h = z.matmul(&self.g1).map(f64::tanh);
                h.matmul(&self.g2).map(f64::tanh)
            }
        }
    }
}

/// The generator's ground-truth preference model, exposed so tests,
/// examples and calibration probes can compute oracle scores and Bayes
/// bounds for the synthetic tasks.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// `ψ(z_u)` per user, each `1×d`.
    pub user_latents: Vec<Matrix>,
    /// `ψ(z_i)` per item, each `1×d`.
    pub item_latents: Vec<Matrix>,
}

impl GroundTruth {
    /// Noise-free true affinity `s(u,i) = −‖ψ(z_u) − ψ(z_i)‖²`.
    pub fn score(&self, user: usize, item: usize) -> f64 {
        let diff = &self.user_latents[user] - &self.item_latents[item];
        -diff.norm_sq()
    }
}

/// Generates a dataset from a config. Deterministic in `config.seed`.
pub fn generate(config: &SynthConfig) -> Dataset {
    generate_with_truth(config).0
}

/// Generates a dataset plus its ground-truth preference model.
pub fn generate_with_truth(config: &SynthConfig) -> (Dataset, GroundTruth) {
    let mut rng = seeded_rng(config.seed);
    let d = config.latent_dim;

    // --- Schema -----------------------------------------------------------
    let mut fields = vec![
        ("user".to_string(), config.n_users, FieldKind::User),
        ("item".to_string(), config.n_items, FieldKind::Item),
    ];
    for (name, card) in &config.user_attrs {
        fields.push((name.clone(), *card, FieldKind::UserAttr));
    }
    for (name, card, kind) in &config.item_attrs {
        fields.push((name.clone(), *card, *kind));
    }
    let schema = Schema::new(
        fields
            .iter()
            .map(|(name, cardinality, kind)| crate::schema::Field {
                name: name.clone(),
                cardinality: *cardinality,
                kind: *kind,
            })
            .collect(),
    );
    let user_attr_fields = (2..2 + config.user_attrs.len()).collect::<Vec<_>>();
    let item_attr_fields = (2 + config.user_attrs.len()
        ..2 + config.user_attrs.len() + config.item_attrs.len())
        .collect::<Vec<_>>();

    // --- Attribute assignments and latents --------------------------------
    let truth = TruthTransform::new(config.correlation, d, &mut rng);

    // Attribute-value latents: one d-vector per (field, value).
    let user_attr_latents: Vec<Matrix> = config
        .user_attrs
        .iter()
        .map(|(_, card)| normal(&mut rng, *card, d, 0.0, 1.0))
        .collect();
    let item_attr_latents: Vec<Matrix> = config
        .item_attrs
        .iter()
        .map(|(_, card, _)| normal(&mut rng, *card, d, 0.0, 1.0))
        .collect();

    // Users: attribute values uniform; latent mixes attribute latents with
    // personal noise so user attributes carry signal too.
    let mut user_attrs = Vec::with_capacity(config.n_users);
    let mut user_latents = Vec::with_capacity(config.n_users);
    for _ in 0..config.n_users {
        let mut attrs = Vec::with_capacity(config.user_attrs.len());
        let mut z = Matrix::zeros(1, d);
        for (j, (_, card)) in config.user_attrs.iter().enumerate() {
            let v = rng.gen_range(0..*card);
            attrs.push(v);
            z.axpy(0.5, &user_attr_latents[j].row_matrix(v));
        }
        let noise = normal(&mut rng, 1, d, 0.0, 1.0);
        z.axpy(0.9, &noise);
        user_attrs.push(attrs);
        user_latents.push(truth.apply(&z));
    }

    // Items: category drawn Zipf-like (head categories dominate), other
    // attributes uniform. Item latent = mix of attribute latents + noise.
    let mut item_attrs = Vec::with_capacity(config.n_items);
    let mut item_latents = Vec::with_capacity(config.n_items);
    let category_samplers: Vec<Option<ZipfSampler>> = config
        .item_attrs
        .iter()
        .map(|(_, card, kind)| {
            if *kind == FieldKind::Category || *kind == FieldKind::ItemAttr {
                Some(ZipfSampler::new(*card, 1.0))
            } else {
                None
            }
        })
        .collect();
    for _ in 0..config.n_items {
        let mut attrs = Vec::with_capacity(config.item_attrs.len());
        let mut z = Matrix::zeros(1, d);
        for (j, (_, card, kind)) in config.item_attrs.iter().enumerate() {
            let v = match &category_samplers[j] {
                Some(sampler) => sampler.sample(&mut rng),
                None => rng.gen_range(0..*card),
            };
            attrs.push(v);
            // Category-like fields carry strong signal; shipping fields
            // carry moderate signal; condition carries almost none — this
            // plants the attribute-importance ordering of Table 6. The
            // attribute share dominates the idiosyncratic noise so that
            // side information genuinely generalises to unseen items (the
            // mechanism behind the paper's sparse-data wins).
            let weight = match kind {
                FieldKind::Category | FieldKind::ItemAttr => 1.2,
                FieldKind::Shipping => 0.45,
                FieldKind::Condition => 0.05,
                _ => 0.0,
            };
            z.axpy(weight, &item_attr_latents[j].row_matrix(v));
        }
        let noise = normal(&mut rng, 1, d, 0.0, 1.0);
        z.axpy(0.35, &noise);
        item_attrs.push(attrs);
        item_latents.push(truth.apply(&z));
    }

    // --- Interactions -------------------------------------------------------
    // Item popularity: Zipf over item ids (id 0 = most popular head item).
    let popularity = ZipfSampler::new(config.n_items, config.zipf_s);
    let (min_n, max_n) = config.interactions_per_user;
    let mut interactions = Vec::new();
    #[allow(clippy::needless_range_loop)] // user indexes latents, attrs and ids together
    for user in 0..config.n_users {
        // Long-tailed activity: u^3 pushes most users toward the 5-core floor.
        let u: f64 = rng.gen();
        let n_u = min_n + ((max_n - min_n) as f64 * u.powi(3)).round() as usize;
        let n_u = n_u.min(config.n_items);

        // Candidate pool: popularity-sampled plus uniform exploration.
        // Half the pool is popularity-driven (long-tail realism), half is
        // uniform so preference — not popularity — decides the picks.
        let pool_size = (n_u * 6 + 40).min(config.n_items);
        let mut pool: HashSet<u32> = HashSet::with_capacity(pool_size);
        while pool.len() < pool_size {
            let item = if rng.gen::<f64>() < 0.5 {
                popularity.sample(&mut rng) as u32
            } else {
                rng.gen_range(0..config.n_items) as u32
            };
            pool.insert(item);
        }

        // Score candidates with the metric ground truth + noise; keep the
        // top n_u (soft selection via noisy scores). The pool is sorted
        // first: HashSet iteration order is not deterministic, and the
        // per-candidate noise draws must line up run-to-run.
        let mut pool: Vec<u32> = pool.into_iter().collect();
        pool.sort_unstable();
        let zu = &user_latents[user];
        let mut scored: Vec<(f64, u32)> = pool
            .into_iter()
            .map(|item| {
                let zi = &item_latents[item as usize];
                let diff = zu - zi;
                let s = -diff.norm_sq() + config.noise * standard_normal(&mut rng);
                (s, item)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("scores are finite"));
        for (ts, (_, item)) in scored.into_iter().take(n_u).enumerate() {
            interactions.push(Interaction { user: user as u32, item, ts: ts as u32 });
        }
    }

    let dataset = Dataset {
        name: config.name.clone(),
        schema,
        n_users: config.n_users,
        n_items: config.n_items,
        interactions,
        user_attrs,
        item_attrs,
        user_attr_fields,
        item_attr_fields,
    };
    (dataset, GroundTruth { user_latents, item_latents })
}

/// Configuration of a catalog-scale retrieval scenario: a deterministic
/// schema + attribute tables + a light interaction set for item counts
/// up to the millions.
///
/// This is the substrate of the sharded top-N retrieval workload (the
/// `serve_millions` example and `bench_report`'s retrieval section): it
/// needs a big catalogue *with side features* — so ranking exercises
/// real multi-feature candidate groups — but none of [`generate`]'s
/// ground-truth latent machinery, whose per-item latent vectors and
/// per-user candidate-pool scoring would dominate generation time long
/// before a million items. Generation here is `O(n_users + n_items)`
/// with a handful of RNG draws per entity.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Dataset name.
    pub name: String,
    /// Number of users.
    pub n_users: usize,
    /// Number of catalogue items.
    pub n_items: usize,
    /// Cardinality of the item-side `category` field.
    pub n_categories: usize,
    /// Items sampled per user for the seen sets (deduplicated, so the
    /// realised count can be slightly lower).
    pub interactions_per_user: usize,
    /// Master seed; the output is deterministic in it.
    pub seed: u64,
}

impl ScaleConfig {
    /// A scenario with `n_users` users, `n_items` items, 64 categories
    /// and 8 seen items per user.
    pub fn new(n_users: usize, n_items: usize, seed: u64) -> Self {
        Self {
            name: format!("scale-{n_items}"),
            n_users,
            n_items,
            n_categories: 64,
            interactions_per_user: 8,
            seed,
        }
    }

    /// Overrides the `category` field's cardinality. More categories
    /// give the catalogue finer attribute structure — what coarse
    /// retrieval indexes cluster on — at the cost of a wider one-hot
    /// dimension.
    pub fn categories(mut self, n: usize) -> Self {
        self.n_categories = n;
        self
    }

    /// Overrides the seen-set size sampled per user (deduplicated, so
    /// the realised count can be slightly lower).
    pub fn interactions(mut self, n: usize) -> Self {
        self.interactions_per_user = n;
        self
    }
}

/// Generates a catalog-scale dataset from a [`ScaleConfig`]:
///
/// * schema `user | item | segment (user attr) | category | condition`,
///   so candidates are three-feature groups (item id + category +
///   condition) and users carry a side feature for cold-start requests;
/// * head-heavy category assignment (squared-uniform, so a few
///   categories dominate like real catalogues) and uniform conditions;
/// * a small head-skewed interaction set per user — enough to build
///   meaningful seen sets for exclusion filtering, cheap enough for a
///   million items.
///
/// Deterministic in `config.seed`; usable everywhere a [`Dataset`] is
/// (in particular `Catalog::from_dataset` in `gmlfm-service`).
pub fn generate_scale(config: &ScaleConfig) -> Dataset {
    assert!(config.n_users > 0 && config.n_items > 0, "generate_scale: empty catalog");
    let mut rng = seeded_rng(config.seed);
    let schema = Schema::new(vec![
        crate::schema::Field { name: "user".into(), cardinality: config.n_users, kind: FieldKind::User },
        crate::schema::Field { name: "item".into(), cardinality: config.n_items, kind: FieldKind::Item },
        crate::schema::Field { name: "segment".into(), cardinality: 8, kind: FieldKind::UserAttr },
        crate::schema::Field {
            name: "category".into(),
            cardinality: config.n_categories,
            kind: FieldKind::Category,
        },
        crate::schema::Field { name: "condition".into(), cardinality: 5, kind: FieldKind::Condition },
    ]);

    let user_attrs: Vec<Vec<usize>> = (0..config.n_users).map(|_| vec![rng.gen_range(0..8)]).collect();
    let item_attrs: Vec<Vec<usize>> = (0..config.n_items)
        .map(|_| {
            // u² skews mass toward category 0 — the head-heavy shape of
            // real catalogues — without a Zipf table over the item axis.
            let u: f64 = rng.gen();
            let category = ((u * u) * config.n_categories as f64) as usize;
            vec![category.min(config.n_categories - 1), rng.gen_range(0..5)]
        })
        .collect();

    let mut interactions = Vec::with_capacity(config.n_users * config.interactions_per_user);
    let mut picked: Vec<u32> = Vec::with_capacity(config.interactions_per_user);
    for user in 0..config.n_users {
        picked.clear();
        for _ in 0..config.interactions_per_user {
            // Cubed-uniform item draw: head items dominate the seen
            // sets, mirroring the Zipf popularity of [`generate`].
            let u: f64 = rng.gen();
            let item = ((u * u * u) * config.n_items as f64) as u32;
            let item = item.min(config.n_items as u32 - 1);
            if !picked.contains(&item) {
                picked.push(item);
            }
        }
        for (ts, &item) in picked.iter().enumerate() {
            interactions.push(Interaction { user: user as u32, item, ts: ts as u32 });
        }
    }

    Dataset {
        name: config.name.clone(),
        schema,
        n_users: config.n_users,
        n_items: config.n_items,
        interactions,
        user_attrs,
        item_attrs,
        user_attr_fields: vec![2],
        item_attr_fields: vec![3, 4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SynthConfig {
        DatasetSpec::AmazonAuto.config(42).scaled(0.3)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.item_attrs, b.item_attrs);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_config());
        let mut cfg = small_config();
        cfg.seed = 43;
        let b = generate(&cfg);
        assert_ne!(a.interactions, b.interactions);
    }

    #[test]
    fn five_core_floor_holds() {
        let d = generate(&DatasetSpec::AmazonAuto.config(1).scaled(0.5));
        for (u, c) in d.user_counts().iter().enumerate() {
            assert!(*c >= 5, "user {u} has only {c} interactions");
        }
    }

    #[test]
    fn interactions_reference_valid_ids_and_are_distinct_per_user() {
        let d = generate(&small_config());
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for it in &d.interactions {
            assert!((it.user as usize) < d.n_users);
            assert!((it.item as usize) < d.n_items);
            assert!(seen.insert((it.user, it.item)), "duplicate pair {:?}", (it.user, it.item));
        }
    }

    #[test]
    fn popularity_is_head_heavy() {
        let d = generate(&DatasetSpec::MercariTicket.config(3).scaled(0.4));
        let counts = d.item_counts();
        let head: usize = counts.iter().take(counts.len() / 10).sum();
        let tail: usize = counts.iter().skip(9 * counts.len() / 10).sum();
        assert!(head > tail * 2, "head {head} vs tail {tail}");
    }

    #[test]
    fn sparsity_ordering_matches_table2() {
        // Scaled-down generation preserves the Table 2 sparsity ordering.
        let sparsity = |spec: DatasetSpec| generate(&spec.config(7).scaled(0.25)).stats().sparsity;
        let ml = sparsity(DatasetSpec::MovieLens);
        let office = sparsity(DatasetSpec::AmazonOffice);
        let auto = sparsity(DatasetSpec::AmazonAuto);
        let books = sparsity(DatasetSpec::MercariBooks);
        assert!(ml < office, "MovieLens {ml} should be densest (Office {office})");
        assert!(office < books, "Office {office} < Books {books}");
        assert!(auto < books, "Auto {auto} < Books {books}");
    }

    #[test]
    fn cold_start_range_allows_single_interaction_users() {
        let cfg = DatasetSpec::MovieLens.config(5).scaled(0.3).with_interactions(1, 20);
        let d = generate(&cfg);
        let counts = d.user_counts();
        assert!(counts.iter().any(|&c| c <= 3), "expected some cold users");
    }

    #[test]
    fn scale_generation_is_deterministic_and_well_formed() {
        let cfg = ScaleConfig::new(50, 20_000, 11);
        let a = generate_scale(&cfg);
        let b = generate_scale(&cfg);
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.item_attrs, b.item_attrs);
        assert_eq!(a.user_attrs, b.user_attrs);

        assert_eq!(a.n_users, 50);
        assert_eq!(a.n_items, 20_000);
        assert_eq!(a.schema.n_fields(), 5);
        assert_eq!(a.item_attrs.len(), a.n_items);
        assert_eq!(a.user_attrs.len(), a.n_users);
        for attrs in &a.item_attrs {
            assert!(attrs[0] < cfg.n_categories && attrs[1] < 5);
        }
        for it in &a.interactions {
            assert!((it.user as usize) < a.n_users && (it.item as usize) < a.n_items);
        }
        // The full feature-vector machinery works on the scale shape.
        let inst = a.instance(7, 19_999, 1.0);
        assert_eq!(inst.n_fields(), 5);
        assert!(inst.feats.iter().all(|&f| (f as usize) < a.schema.total_dim()));
    }

    #[test]
    fn scale_seen_sets_are_head_heavy_and_per_user_distinct() {
        let d = generate_scale(&ScaleConfig::new(200, 5_000, 3));
        let sets = d.user_item_sets();
        assert!(sets.iter().all(|s| !s.is_empty()), "every user has seen items");
        let mut seen_pairs = HashSet::new();
        for it in &d.interactions {
            assert!(seen_pairs.insert((it.user, it.item)), "duplicate pair");
        }
        // Cubed-uniform sampling concentrates interactions on low ids:
        // the first quarter of the id space draws ~63% of interactions.
        let head = d.interactions.iter().filter(|it| (it.item as usize) < d.n_items / 4).count();
        assert!(head * 2 > d.interactions.len(), "head items dominate: {head}/{}", d.interactions.len());
    }

    #[test]
    fn attribute_tables_cover_every_entity() {
        let d = generate(&DatasetSpec::MovieLens.config(9).scaled(0.2));
        assert_eq!(d.user_attrs.len(), d.n_users);
        assert_eq!(d.item_attrs.len(), d.n_items);
        assert_eq!(d.user_attr_fields.len(), 3);
        assert_eq!(d.item_attr_fields.len(), 1);
        // Every instance uses every field.
        let inst = d.instance(0, 0, 1.0);
        assert_eq!(inst.n_fields(), d.schema.n_fields());
    }
}
