//! Popularity and negative sampling.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Samples item indices from a Zipf distribution, matching the long-tailed
/// item popularity of the paper's e-commerce datasets (most Mercari items
/// are purchased once).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with exponent `s` (`s ≈ 1` is the
    /// classic Zipf law; larger `s` concentrates more mass on the head).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler: need at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let z = acc;
        for v in &mut cdf {
            *v /= z;
        }
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler covers no items (never constructible).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Uniform negative sampler over the items a user has *not* interacted
/// with — the paper pairs each positive with 2 sampled negatives for
/// training and 99 for top-n evaluation.
#[derive(Debug)]
pub struct NegativeSampler {
    n_items: usize,
}

impl NegativeSampler {
    /// Creates a sampler over `n_items` items.
    pub fn new(n_items: usize) -> Self {
        assert!(n_items > 1, "NegativeSampler: need at least two items");
        Self { n_items }
    }

    /// Draws `count` distinct items not present in `interacted`.
    ///
    /// # Panics
    /// Panics when fewer than `count` non-interacted items exist.
    pub fn sample(&self, rng: &mut StdRng, interacted: &HashSet<u32>, count: usize) -> Vec<u32> {
        let available = self.n_items - interacted.len();
        assert!(
            available >= count,
            "NegativeSampler: requested {count} negatives but only {available} items are free"
        );
        let mut out = Vec::with_capacity(count);
        let mut seen: HashSet<u32> = HashSet::with_capacity(count);
        while out.len() < count {
            let cand = rng.gen_range(0..self.n_items) as u32;
            if !interacted.contains(&cand) && seen.insert(cand) {
                out.push(cand);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::seeded_rng;

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = ZipfSampler::new(100, 1.1);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_follow_head_heavy_distribution() {
        let z = ZipfSampler::new(50, 1.2);
        let mut rng = seeded_rng(5);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn negative_sampler_avoids_interacted_items() {
        let ns = NegativeSampler::new(100);
        let mut rng = seeded_rng(6);
        let interacted: HashSet<u32> = (0..50).collect();
        let negs = ns.sample(&mut rng, &interacted, 30);
        assert_eq!(negs.len(), 30);
        let distinct: HashSet<_> = negs.iter().collect();
        assert_eq!(distinct.len(), 30);
        assert!(negs.iter().all(|n| !interacted.contains(n)));
    }

    #[test]
    #[should_panic(expected = "NegativeSampler")]
    fn negative_sampler_rejects_impossible_requests() {
        let ns = NegativeSampler::new(10);
        let mut rng = seeded_rng(7);
        let interacted: HashSet<u32> = (0..9).collect();
        let _ = ns.sample(&mut rng, &interacted, 5);
    }
}
