//! Attribute schema: how categorical fields map into the concatenated
//! one-hot feature space of a factorization machine.
//!
//! In the paper's notation an instance is a length-`n` vector `x` built by
//! concatenating the one-hot encodings of each *attribute* (user ID, item
//! ID, category, ...). A [`Schema`] records the attribute fields and their
//! cardinalities; a global feature index is `offset(field) + value`.

/// The role a field plays; used to build the attribute subsets of the
/// paper's Table 6 (`base`, `base+cty`, `base+cty+cdn`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// User ID field.
    User,
    /// Item ID field.
    Item,
    /// A user-side attribute (gender, age bucket, occupation, ...).
    UserAttr,
    /// An item category attribute (`cty` in Table 6).
    Category,
    /// An item condition attribute (`cdn` in Table 6).
    Condition,
    /// A shipping attribute (`shp` in Table 6).
    Shipping,
    /// Any other item-side attribute (MovieLens genre, Amazon
    /// sub-category, ...).
    ItemAttr,
}

/// One categorical attribute field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Human-readable name, e.g. `"user"`, `"ship_method"`.
    pub name: String,
    /// Number of distinct values the field can take.
    pub cardinality: usize,
    /// Role of the field (drives attribute-subset experiments).
    pub kind: FieldKind,
}

/// An ordered collection of fields defining the one-hot feature space.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    offsets: Vec<usize>,
    total_dim: usize,
}

impl Schema {
    /// Builds a schema from `(name, cardinality, kind)` triples.
    pub fn new(fields: Vec<Field>) -> Self {
        let mut offsets = Vec::with_capacity(fields.len());
        let mut acc = 0usize;
        for f in &fields {
            offsets.push(acc);
            acc += f.cardinality;
        }
        Self { fields, offsets, total_dim: acc }
    }

    /// Convenience constructor from tuples.
    pub fn from_specs(specs: &[(&str, usize, FieldKind)]) -> Self {
        Self::new(
            specs
                .iter()
                .map(|&(name, cardinality, kind)| Field { name: name.to_string(), cardinality, kind })
                .collect(),
        )
    }

    /// Number of fields.
    pub fn n_fields(&self) -> usize {
        self.fields.len()
    }

    /// Total one-hot dimensionality `n` (the paper's "#attribute-dim").
    pub fn total_dim(&self) -> usize {
        self.total_dim
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Offset of `field` in the global index space.
    pub fn offset(&self, field: usize) -> usize {
        self.offsets[field]
    }

    /// Global feature index for `value` of `field`.
    ///
    /// # Panics
    /// Panics when the value exceeds the field's cardinality.
    pub fn feature_index(&self, field: usize, value: usize) -> u32 {
        let f = &self.fields[field];
        assert!(
            value < f.cardinality,
            "feature_index: value {value} out of range for field '{}' (cardinality {})",
            f.name,
            f.cardinality
        );
        (self.offsets[field] + value) as u32
    }

    /// Inverse of [`Schema::feature_index`]: which `(field, value)` a
    /// global index belongs to.
    pub fn decode(&self, index: u32) -> (usize, usize) {
        let idx = index as usize;
        assert!(idx < self.total_dim, "decode: index {idx} out of dimension {}", self.total_dim);
        // Fields are few (≤ 10); a linear scan beats a binary search here.
        for (field, &off) in self.offsets.iter().enumerate().rev() {
            if idx >= off {
                return (field, idx - off);
            }
        }
        unreachable!("offsets always start at 0");
    }

    /// Index of the first field with the given kind, if any.
    pub fn field_of_kind(&self, kind: FieldKind) -> Option<usize> {
        self.fields.iter().position(|f| f.kind == kind)
    }

    /// All field indices with the given kind.
    pub fn fields_of_kind(&self, kind: FieldKind) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A subset of a schema's fields, used for the attribute-effect study
/// (Table 6) where models are trained on `base`, `base+cty`, etc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMask {
    active: Vec<bool>,
}

impl FieldMask {
    /// All fields active.
    pub fn all(schema: &Schema) -> Self {
        Self { active: vec![true; schema.n_fields()] }
    }

    /// Only the user and item fields (`base` in Table 6).
    pub fn base(schema: &Schema) -> Self {
        Self::of_kinds(schema, &[FieldKind::User, FieldKind::Item])
    }

    /// Fields whose kind appears in `kinds`.
    pub fn of_kinds(schema: &Schema, kinds: &[FieldKind]) -> Self {
        Self { active: schema.fields().iter().map(|f| kinds.contains(&f.kind)).collect() }
    }

    /// Returns a copy with every field of `kind` switched on.
    pub fn with_kind(&self, schema: &Schema, kind: FieldKind) -> Self {
        let mut active = self.active.clone();
        for (i, f) in schema.fields().iter().enumerate() {
            if f.kind == kind {
                active[i] = true;
            }
        }
        Self { active }
    }

    /// Whether `field` is active.
    pub fn is_active(&self, field: usize) -> bool {
        self.active[field]
    }

    /// Number of active fields.
    pub fn n_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Indices of active fields in order.
    pub fn active_fields(&self) -> Vec<usize> {
        self.active.iter().enumerate().filter(|(_, &a)| a).map(|(i, _)| i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movielens_like() -> Schema {
        Schema::from_specs(&[
            ("user", 100, FieldKind::User),
            ("item", 50, FieldKind::Item),
            ("gender", 2, FieldKind::UserAttr),
            ("genre", 18, FieldKind::ItemAttr),
        ])
    }

    #[test]
    fn offsets_and_total_dim() {
        let s = movielens_like();
        assert_eq!(s.total_dim(), 170);
        assert_eq!(s.offset(0), 0);
        assert_eq!(s.offset(1), 100);
        assert_eq!(s.offset(2), 150);
        assert_eq!(s.offset(3), 152);
    }

    #[test]
    fn feature_index_round_trips() {
        let s = movielens_like();
        for field in 0..s.n_fields() {
            for value in [0usize, 1, s.fields()[field].cardinality - 1] {
                let idx = s.feature_index(field, value);
                assert_eq!(s.decode(idx), (field, value));
            }
        }
    }

    #[test]
    #[should_panic(expected = "feature_index")]
    fn feature_index_rejects_out_of_range() {
        let s = movielens_like();
        let _ = s.feature_index(2, 2);
    }

    #[test]
    fn kind_lookup() {
        let s = movielens_like();
        assert_eq!(s.field_of_kind(FieldKind::Item), Some(1));
        assert_eq!(s.fields_of_kind(FieldKind::UserAttr), vec![2]);
        assert_eq!(s.field_of_kind(FieldKind::Shipping), None);
    }

    #[test]
    fn field_masks_select_subsets() {
        let s = movielens_like();
        let base = FieldMask::base(&s);
        assert_eq!(base.n_active(), 2);
        assert_eq!(base.active_fields(), vec![0, 1]);
        let with_genre = base.with_kind(&s, FieldKind::ItemAttr);
        assert_eq!(with_genre.active_fields(), vec![0, 1, 3]);
        let all = FieldMask::all(&s);
        assert_eq!(all.n_active(), 4);
    }
}
