//! In-memory recommendation dataset: interactions plus attribute tables.

use crate::instance::Instance;
use crate::schema::{FieldKind, FieldMask, Schema};
use std::collections::HashSet;

/// One user-item interaction. `ts` is the position of the interaction in
/// the user's history (0 = oldest); the leave-one-out protocol holds out
/// each user's latest (`max ts`) interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// User index in `0..n_users`.
    pub user: u32,
    /// Item index in `0..n_items`.
    pub item: u32,
    /// Per-user sequence position.
    pub ts: u32,
}

/// A fully materialised dataset: schema, interactions, and the attribute
/// value of every user-side and item-side field.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (matches the paper's Table 2 rows).
    pub name: String,
    /// The one-hot feature space.
    pub schema: Schema,
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// All positive interactions.
    pub interactions: Vec<Interaction>,
    /// `user_attrs[u][j]` = value of the `j`-th user-attribute field.
    pub user_attrs: Vec<Vec<usize>>,
    /// `item_attrs[i][j]` = value of the `j`-th item-side field.
    pub item_attrs: Vec<Vec<usize>>,
    /// Schema field indices of the user-attribute columns.
    pub user_attr_fields: Vec<usize>,
    /// Schema field indices of the item-side columns.
    pub item_attr_fields: Vec<usize>,
}

/// The statistics reported in the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// #users.
    pub n_users: usize,
    /// #items.
    pub n_items: usize,
    /// Total one-hot dimensionality (#attribute-dim).
    pub attribute_dim: usize,
    /// #instances (positive interactions).
    pub n_instances: usize,
    /// `1 - instances / (users * items)`.
    pub sparsity: f64,
}

impl Dataset {
    /// Builds the feature indices for a `(user, item)` pair over the
    /// active fields of `mask`, in schema field order.
    pub fn feats(&self, user: u32, item: u32, mask: &FieldMask) -> Vec<u32> {
        let mut out = Vec::with_capacity(mask.n_active());
        self.feats_into(user, item, mask, &mut out);
        out
    }

    /// [`Dataset::feats`] into a caller-owned buffer (cleared first), so
    /// candidate-scoring loops — the frozen top-n protocol scores
    /// hundreds of items per user — reuse one allocation.
    pub fn feats_into(&self, user: u32, item: u32, mask: &FieldMask, out: &mut Vec<u32>) {
        out.clear();
        for (field, f) in self.schema.fields().iter().enumerate() {
            if !mask.is_active(field) {
                continue;
            }
            let value = match f.kind {
                FieldKind::User => user as usize,
                FieldKind::Item => item as usize,
                FieldKind::UserAttr => {
                    let col = self
                        .user_attr_fields
                        .iter()
                        .position(|&x| x == field)
                        .expect("user attr column");
                    self.user_attrs[user as usize][col]
                }
                _ => {
                    let col = self
                        .item_attr_fields
                        .iter()
                        .position(|&x| x == field)
                        .expect("item attr column");
                    self.item_attrs[item as usize][col]
                }
            };
            out.push(self.schema.feature_index(field, value));
        }
    }

    /// Instance for `(user, item)` with a label, over all fields.
    pub fn instance(&self, user: u32, item: u32, label: f64) -> Instance {
        self.instance_masked(user, item, label, &FieldMask::all(&self.schema))
    }

    /// Instance restricted to an attribute subset (Table 6).
    pub fn instance_masked(&self, user: u32, item: u32, label: f64, mask: &FieldMask) -> Instance {
        Instance::new(self.feats(user, item, mask), label)
    }

    /// Set of items each user interacted with.
    pub fn user_item_sets(&self) -> Vec<HashSet<u32>> {
        let mut sets = vec![HashSet::new(); self.n_users];
        for it in &self.interactions {
            sets[it.user as usize].insert(it.item);
        }
        sets
    }

    /// Number of interactions per user.
    pub fn user_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_users];
        for it in &self.interactions {
            counts[it.user as usize] += 1;
        }
        counts
    }

    /// Number of interactions per item.
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_items];
        for it in &self.interactions {
            counts[it.item as usize] += 1;
        }
        counts
    }

    /// Table 2 statistics.
    pub fn stats(&self) -> DatasetStats {
        let possible = (self.n_users * self.n_items) as f64;
        DatasetStats {
            name: self.name.clone(),
            n_users: self.n_users,
            n_items: self.n_items,
            attribute_dim: self.schema.total_dim(),
            n_instances: self.interactions.len(),
            sparsity: 1.0 - self.interactions.len() as f64 / possible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldKind;

    fn tiny() -> Dataset {
        let schema = Schema::from_specs(&[
            ("user", 3, FieldKind::User),
            ("item", 4, FieldKind::Item),
            ("gender", 2, FieldKind::UserAttr),
            ("category", 5, FieldKind::Category),
        ]);
        Dataset {
            name: "tiny".into(),
            schema,
            n_users: 3,
            n_items: 4,
            interactions: vec![
                Interaction { user: 0, item: 1, ts: 0 },
                Interaction { user: 0, item: 2, ts: 1 },
                Interaction { user: 1, item: 1, ts: 0 },
            ],
            user_attrs: vec![vec![0], vec![1], vec![0]],
            item_attrs: vec![vec![0], vec![3], vec![2], vec![4]],
            user_attr_fields: vec![2],
            item_attr_fields: vec![3],
        }
    }

    #[test]
    fn instance_encodes_all_fields() {
        let d = tiny();
        let inst = d.instance(1, 2, 1.0);
        // user 1 -> 1; item 2 -> 3 + 2 = 5; gender of user 1 = 1 -> 7 + 1 = 8;
        // category of item 2 = 2 -> 9 + 2 = 11.
        assert_eq!(inst.feats, vec![1, 5, 8, 11]);
        assert_eq!(inst.label, 1.0);
    }

    #[test]
    fn masked_instance_keeps_base_fields_only() {
        let d = tiny();
        let mask = FieldMask::base(&d.schema);
        let inst = d.instance_masked(2, 0, -1.0, &mask);
        assert_eq!(inst.feats, vec![2, 3]);
    }

    #[test]
    fn stats_match_hand_computation() {
        let d = tiny();
        let s = d.stats();
        assert_eq!(s.n_instances, 3);
        assert_eq!(s.attribute_dim, 14);
        assert!((s.sparsity - (1.0 - 3.0 / 12.0)).abs() < 1e-12);
    }

    #[test]
    fn per_user_and_item_counts() {
        let d = tiny();
        assert_eq!(d.user_counts(), vec![2, 1, 0]);
        assert_eq!(d.item_counts(), vec![0, 2, 1, 0]);
        let sets = d.user_item_sets();
        assert!(sets[0].contains(&1) && sets[0].contains(&2));
        assert!(sets[2].is_empty());
    }
}
