//! Sparse training/evaluation instances.

/// One training or evaluation example: the active one-hot feature per
/// field (global indices) plus the regression target.
///
/// All datasets in the paper are purely categorical, so the per-feature
/// value is implicitly `1.0`; models that support real-valued inputs take
/// the `(index, value)` view from [`Instance::sparse`].
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Global feature index of the active value in each field, in schema
    /// field order (restricted to the active [`crate::FieldMask`]).
    pub feats: Vec<u32>,
    /// Regression target: `+1` positive / `-1` sampled negative under the
    /// paper's implicit-feedback protocol (Section 4.3.1).
    pub label: f64,
}

impl Instance {
    /// Creates an instance from feature indices and a label.
    pub fn new(feats: Vec<u32>, label: f64) -> Self {
        Self { feats, label }
    }

    /// Number of active fields.
    pub fn n_fields(&self) -> usize {
        self.feats.len()
    }

    /// `(global_index, value)` pairs with the implicit value `1.0`.
    pub fn sparse(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.feats.iter().map(|&i| (i as usize, 1.0))
    }

    /// Densifies into a length-`n` vector (test helper; never used in
    /// training loops).
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for &i in &self.feats {
            x[i as usize] = 1.0;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_view_and_densify_agree() {
        let inst = Instance::new(vec![0, 3, 7], 1.0);
        assert_eq!(inst.n_fields(), 3);
        let dense = inst.to_dense(10);
        assert_eq!(dense.iter().filter(|&&v| v == 1.0).count(), 3);
        for (i, v) in inst.sparse() {
            assert_eq!(dense[i], v);
        }
    }
}
