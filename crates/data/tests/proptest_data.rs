//! Property tests on the data substrate: encoding round-trips, split
//! invariants and generator guarantees across random configurations.

use gmlfm_data::{generate, loo_split, rating_split, DatasetSpec, FieldKind, FieldMask, Schema};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn schema_feature_indices_round_trip(
        cards in proptest::collection::vec(1usize..40, 2..6),
    ) {
        let specs: Vec<(String, usize, FieldKind)> = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("f{i}"), c, if i == 0 { FieldKind::User } else { FieldKind::ItemAttr }))
            .collect();
        let schema = Schema::from_specs(
            &specs.iter().map(|(n, c, k)| (n.as_str(), *c, *k)).collect::<Vec<_>>(),
        );
        prop_assert_eq!(schema.total_dim(), cards.iter().sum::<usize>());
        for (field, &card) in cards.iter().enumerate() {
            for value in [0, card / 2, card - 1] {
                let idx = schema.feature_index(field, value);
                prop_assert_eq!(schema.decode(idx), (field, value));
            }
        }
    }

    #[test]
    fn generated_datasets_have_consistent_internals(seed in 0u64..40, scale in 0.15f64..0.4) {
        let d = generate(&DatasetSpec::AmazonOffice.config(seed).scaled(scale));
        // Attribute tables cover every entity with in-range values.
        prop_assert_eq!(d.user_attrs.len(), d.n_users);
        prop_assert_eq!(d.item_attrs.len(), d.n_items);
        for attrs in &d.item_attrs {
            for (col, &value) in attrs.iter().enumerate() {
                let field = d.item_attr_fields[col];
                prop_assert!(value < d.schema.fields()[field].cardinality);
            }
        }
        // Every instance's features decode back to consistent fields.
        let inst = d.instance(0, 0, 1.0);
        for (pos, &feat) in inst.feats.iter().enumerate() {
            let (field, _) = d.schema.decode(feat);
            prop_assert_eq!(field, pos);
        }
    }

    #[test]
    fn rating_split_partitions_without_loss(seed in 0u64..40) {
        let d = generate(&DatasetSpec::AmazonAuto.config(seed).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, seed ^ 99);
        let total = s.train.len() + s.val.len() + s.test.len();
        prop_assert_eq!(total, d.interactions.len() * 3);
        // Positives appear exactly as often as interactions.
        let pos: usize = [&s.train, &s.val, &s.test]
            .iter()
            .map(|part| part.iter().filter(|i| i.label > 0.0).count())
            .sum();
        prop_assert_eq!(pos, d.interactions.len());
    }

    #[test]
    fn loo_split_never_leaks_test_items_into_training(seed in 0u64..40) {
        let d = generate(&DatasetSpec::AmazonAuto.config(seed).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = loo_split(&d, &mask, 2, 50, seed ^ 7);
        for case in &s.test {
            prop_assert!(!s.train_user_items[case.user as usize].contains(&case.pos_item));
            let negs: HashSet<u32> = case.negatives.iter().copied().collect();
            prop_assert_eq!(negs.len(), case.negatives.len(), "negatives must be distinct");
        }
    }

    #[test]
    fn masked_instances_contain_exactly_the_active_fields(seed in 0u64..20) {
        let d = generate(&DatasetSpec::MercariTicket.config(seed).scaled(0.2));
        let base = FieldMask::base(&d.schema);
        let with_cat = base.with_kind(&d.schema, FieldKind::Category);
        let inst_base = d.instance_masked(0, 0, 1.0, &base);
        let inst_cat = d.instance_masked(0, 0, 1.0, &with_cat);
        prop_assert_eq!(inst_base.n_fields(), 2);
        prop_assert_eq!(inst_cat.n_fields(), 3);
        // The base features are a prefix of the extended ones.
        prop_assert_eq!(&inst_cat.feats[..2], &inst_base.feats[..]);
    }
}
