//! The engine's typed error: every failure mode of the spec → train →
//! freeze → artifact pipeline, none of them a panic.

use gmlfm_service::RequestError;
use std::fmt;

/// Errors from the unified engine pipeline.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem failure while saving or loading an artifact.
    Io(std::io::Error),
    /// Malformed artifact JSON (syntax, missing fields, bad tags).
    Json(serde_json::Error),
    /// The artifact's `format_version` is not one this build reads.
    UnsupportedVersion {
        /// Version recorded in the artifact.
        found: u32,
        /// The version this build writes and reads.
        supported: u32,
    },
    /// Structurally valid JSON whose contents are inconsistent (matrix
    /// dimension mismatches, weight-vector length != feature count, ...).
    BadArtifact(String),
    /// The spec'd model does not support the requested task (e.g. BPR-MF
    /// on rating prediction, MF on top-n).
    UnsupportedTask {
        /// Display name of the offending model.
        model: String,
        /// `"rating"` or `"top-n"`.
        task: &'static str,
    },
    /// A pairwise model (BPR-MF, NGCF) was fit without `(user, item)`
    /// training pairs — build the [`crate::FitData`] from a leave-one-out
    /// split.
    MissingPairData {
        /// Display name of the offending model.
        model: String,
    },
    /// `fit` was called with zero training instances.
    EmptyTrainingSet,
    /// `save` on a model with no frozen serving form (deep models keep
    /// their interactions inside an autograd forward).
    NotFreezable {
        /// Display name of the offending model.
        model: String,
    },
    /// `top_n`/`score_pair` on a recommender without a catalog (an
    /// artifact saved without one).
    MissingCatalog,
    /// `evaluate_*` on a recommender whose holdout does not match (or
    /// one restored from an artifact, which has no holdout at all).
    MissingHoldout {
        /// Which holdout the call needed: `"rating"` or `"top-n"`.
        expected: &'static str,
    },
    /// The fluent builder was finalised without a required component.
    BuilderIncomplete {
        /// The missing builder field, e.g. `"dataset"`.
        field: &'static str,
    },
    /// A malformed serving request (out-of-range features, unknown
    /// user/item/field ids, ...) — the typed validation error of the
    /// request path every `score*`/`top_n` call routes through.
    Request(RequestError),
    /// [`crate::Recommender::serve_online`] on a recommender that cannot
    /// start the online loop: not built with
    /// [`crate::EngineBuilder::online`], no top-n holdout to gate on, or
    /// the loop was already launched.
    OnlineUnavailable {
        /// What is missing.
        reason: &'static str,
    },
    /// A failure inside the online learning loop
    /// ([`gmlfm_online::OnlineError`]).
    Online(gmlfm_online::OnlineError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "I/O error: {e}"),
            EngineError::Json(e) => write!(f, "artifact parse error: {e}"),
            EngineError::UnsupportedVersion { found, supported } => {
                write!(f, "artifact format version {found} (this build supports up to {supported})")
            }
            EngineError::BadArtifact(msg) => write!(f, "inconsistent artifact: {msg}"),
            EngineError::UnsupportedTask { model, task } => {
                write!(f, "{model} does not support the {task} task")
            }
            EngineError::MissingPairData { model } => {
                write!(f, "{model} trains on (user, item) pairs; fit it with FitData::topn")
            }
            EngineError::EmptyTrainingSet => write!(f, "empty training set"),
            EngineError::NotFreezable { model } => {
                write!(f, "{model} has no frozen serving form and cannot be saved")
            }
            EngineError::MissingCatalog => {
                write!(f, "recommender has no catalog (artifact saved without one)")
            }
            EngineError::MissingHoldout { expected } => {
                write!(f, "recommender has no {expected} holdout to evaluate on")
            }
            EngineError::BuilderIncomplete { field } => {
                write!(f, "Engine::builder(): missing required component '{field}'")
            }
            EngineError::Request(e) => write!(f, "invalid request: {e}"),
            EngineError::OnlineUnavailable { reason } => {
                write!(f, "online loop unavailable: {reason}")
            }
            EngineError::Online(e) => write!(f, "online loop failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

impl From<serde_json::Error> for EngineError {
    fn from(e: serde_json::Error) -> Self {
        EngineError::Json(e)
    }
}

impl From<RequestError> for EngineError {
    fn from(e: RequestError) -> Self {
        EngineError::Request(e)
    }
}

impl From<gmlfm_online::OnlineError> for EngineError {
    fn from(e: gmlfm_online::OnlineError) -> Self {
        EngineError::Online(e)
    }
}
