//! [`ModelSpec`]: every model in the workspace behind one declarative,
//! serialisable constructor.
//!
//! A spec is pure data — hyper-parameters, seeds, the transform/distance
//! choice — with no trained state. [`ModelSpec::build`] instantiates the
//! matching untrained model wrapped in an [`Estimator`], so autograd
//! trainers, hand-derived SGD and pairwise BPR all hide behind the same
//! `fit` call. Specs serialise as a tagged JSON object (a `"model"` tag
//! plus the flattened hyper-parameters), which is what the versioned
//! [`crate::Artifact`] embeds so a loaded model knows what it is.
//!
//! ## Task / serving support matrix
//!
//! | variant | rating | top-n | freezable (servable artifact) |
//! |---|---|---|---|
//! | [`GmlFm`](ModelSpec::GmlFm) (md / dnn / plain) | ✓ | ✓ | ✓ |
//! | [`Fm`](ModelSpec::Fm) (LibFM) | ✓ | ✓ | ✓ |
//! | [`TransFm`](ModelSpec::TransFm) | ✓ | ✓ | ✓ |
//! | [`Mf`](ModelSpec::Mf) | ✓ | — | — |
//! | [`Pmf`](ModelSpec::Pmf) | ✓ | — | — |
//! | [`BprMf`](ModelSpec::BprMf) | — | ✓ | — |
//! | [`Ngcf`](ModelSpec::Ngcf) | — | ✓ | — |
//! | [`Ncf`](ModelSpec::Ncf) | — | ✓ | — |
//! | [`Nfm`](ModelSpec::Nfm) | ✓ | ✓ | — |
//! | [`Afm`](ModelSpec::Afm) | ✓ | ✓ | — |
//! | [`DeepFm`](ModelSpec::DeepFm) | ✓ | ✓ | — |
//! | [`XDeepFm`](ModelSpec::XDeepFm) | ✓ | ✓ | — |
//!
//! "Freezable" means [`ModelSpec::build`]'s estimator returns a
//! [`gmlfm_serve::FrozenModel`] from `freeze_if_supported`, which is the
//! precondition for [`crate::Recommender::save`].

use crate::estimator::adapters;
use crate::estimator::Estimator;
use gmlfm_core::{Distance, GmlFmConfig, TransformKind};
use gmlfm_data::{FieldMask, Schema};
use gmlfm_models::afm::AfmConfig;
use gmlfm_models::deepfm::DeepFmConfig;
use gmlfm_models::fm::FmConfig;
use gmlfm_models::mf::MfConfig;
use gmlfm_models::ncf::NcfConfig;
use gmlfm_models::nfm::NfmConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_models::xdeepfm::XDeepFmConfig;
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};

/// A declarative, serialisable model constructor — see the [module
/// docs](self) for the task / serving support matrix.
#[derive(Debug, Clone)]
pub enum ModelSpec {
    /// GML-FM in any transform/distance/weight configuration (the paper's
    /// GML-FM_md and GML-FM_dnn variants included).
    GmlFm {
        /// Full GML-FM configuration.
        config: GmlFmConfig,
    },
    /// LibFM-style vanilla FM, trained with hand-derived per-instance SGD.
    Fm {
        /// FM hyper-parameters (including SGD knobs).
        config: FmConfig,
    },
    /// Translation-based FM.
    TransFm {
        /// TransFM hyper-parameters.
        config: TransFmConfig,
    },
    /// Biased matrix factorization (rating only).
    Mf {
        /// MF hyper-parameters (including SGD knobs).
        config: MfConfig,
    },
    /// Probabilistic MF (rating only).
    Pmf {
        /// PMF hyper-parameters.
        config: MfConfig,
    },
    /// BPR-MF, trained pairwise on `(user, item)` interactions (top-n
    /// only).
    BprMf {
        /// BPR-MF hyper-parameters.
        config: MfConfig,
    },
    /// NGCF with simplified (LightGCN-style) propagation (top-n only).
    Ngcf {
        /// NGCF hyper-parameters.
        config: MfConfig,
    },
    /// NCF / NeuMF (top-n only in the paper).
    Ncf {
        /// NCF hyper-parameters.
        config: NcfConfig,
    },
    /// Neural FM.
    Nfm {
        /// NFM hyper-parameters.
        config: NfmConfig,
    },
    /// Attentional FM.
    Afm {
        /// AFM hyper-parameters.
        config: AfmConfig,
    },
    /// DeepFM.
    DeepFm {
        /// DeepFM hyper-parameters.
        config: DeepFmConfig,
    },
    /// xDeepFM (CIN).
    XDeepFm {
        /// xDeepFM hyper-parameters.
        config: XDeepFmConfig,
    },
}

impl ModelSpec {
    /// GML-FM from a full configuration.
    pub fn gml_fm(config: GmlFmConfig) -> Self {
        ModelSpec::GmlFm { config }
    }

    /// The paper's GML-FM_md: Mahalanobis transform, transformation
    /// weight on.
    pub fn gml_fm_md(k: usize) -> Self {
        ModelSpec::GmlFm { config: GmlFmConfig::mahalanobis(k) }
    }

    /// The paper's GML-FM_dnn: deep non-linear transform with `layers`
    /// tanh layers.
    pub fn gml_fm_dnn(k: usize, layers: usize) -> Self {
        ModelSpec::GmlFm { config: GmlFmConfig::dnn(k, layers) }
    }

    /// Vanilla FM from a full configuration.
    pub fn fm(config: FmConfig) -> Self {
        ModelSpec::Fm { config }
    }

    /// TransFM from a full configuration.
    pub fn trans_fm(config: TransFmConfig) -> Self {
        ModelSpec::TransFm { config }
    }

    /// The paper's display name for this spec (matches the table rows).
    pub fn display_name(&self) -> &'static str {
        match self {
            ModelSpec::GmlFm { config } => match config.transform {
                TransformKind::Mahalanobis => "GML-FM_md",
                TransformKind::Dnn(_) => "GML-FM_dnn",
                TransformKind::Identity => "GML-FM_plain",
            },
            ModelSpec::Fm { .. } => "LibFM",
            ModelSpec::TransFm { .. } => "TransFM",
            ModelSpec::Mf { .. } => "MF",
            ModelSpec::Pmf { .. } => "PMF",
            ModelSpec::BprMf { .. } => "BPR-MF",
            ModelSpec::Ngcf { .. } => "NGCF",
            ModelSpec::Ncf { .. } => "NCF",
            ModelSpec::Nfm { .. } => "NFM",
            ModelSpec::Afm { .. } => "AFM",
            ModelSpec::DeepFm { .. } => "DeepFM",
            ModelSpec::XDeepFm { .. } => "xDeepFM",
        }
    }

    /// Whether the model can be trained and evaluated on the
    /// rating-prediction task (Table 3).
    pub fn supports_rating(&self) -> bool {
        !matches!(self, ModelSpec::BprMf { .. } | ModelSpec::Ngcf { .. } | ModelSpec::Ncf { .. })
    }

    /// Whether the model can be trained and evaluated on the top-n task
    /// (Table 4).
    pub fn supports_topn(&self) -> bool {
        !matches!(self, ModelSpec::Mf { .. } | ModelSpec::Pmf { .. })
    }

    /// Whether [`ModelSpec::build`]'s estimator yields a
    /// [`gmlfm_serve::FrozenModel`] — the precondition for saving a
    /// servable [`crate::Artifact`].
    pub fn supports_freezing(&self) -> bool {
        matches!(self, ModelSpec::GmlFm { .. } | ModelSpec::Fm { .. } | ModelSpec::TransFm { .. })
    }

    /// Instantiates the untrained model behind the unified
    /// [`Estimator`] interface. `schema` fixes the one-hot feature space;
    /// `mask` selects the active attribute subset (it determines the
    /// field count deep models embed per instance).
    pub fn build(&self, schema: &Schema, mask: &FieldMask) -> Box<dyn Estimator> {
        adapters::build(self, schema, mask)
    }
}

/// Encodes a [`Distance`] by its display name.
pub(crate) fn distance_name(d: Distance) -> &'static str {
    d.name()
}

/// Decodes a [`Distance`] from its display name.
pub(crate) fn distance_from_name(name: &str) -> Result<Distance, json::Error> {
    match name {
        "Euclidean" => Ok(Distance::SquaredEuclidean),
        "Manhattan" => Ok(Distance::Manhattan),
        "Chebyshev" => Ok(Distance::Chebyshev),
        "Cosine" => Ok(Distance::Cosine),
        other => Err(json::Error::new(format!("unknown distance '{other}'"))),
    }
}

/// Writes a tagged JSON object: `{"model": <tag>, <fields>...}`.
fn write_tagged(out: &mut String, tag: &str, fields: &[(&str, &dyn Serialize)]) {
    out.push_str("{\"model\":");
    json::write_escaped(tag, out);
    for (name, value) in fields {
        out.push(',');
        json::write_escaped(name, out);
        out.push(':');
        value.serialize_json(out);
    }
    out.push('}');
}

impl Serialize for ModelSpec {
    fn serialize_json(&self, out: &mut String) {
        match self {
            ModelSpec::GmlFm { config } => {
                let (transform, dnn_layers): (&str, usize) = match config.transform {
                    TransformKind::Identity => ("identity", 0),
                    TransformKind::Mahalanobis => ("mahalanobis", 0),
                    TransformKind::Dnn(l) => ("dnn", l),
                };
                let transform = transform.to_string();
                let distance = distance_name(config.distance).to_string();
                write_tagged(
                    out,
                    "gml_fm",
                    &[
                        ("k", &config.k),
                        ("transform", &transform),
                        ("dnn_layers", &dnn_layers),
                        ("distance", &distance),
                        ("use_weight", &config.use_weight),
                        ("dropout", &config.dropout),
                        ("init_std", &config.init_std),
                        ("seed", &config.seed),
                    ],
                );
            }
            ModelSpec::Fm { config } => write_tagged(
                out,
                "fm",
                &[
                    ("k", &config.k),
                    ("lr", &config.lr),
                    ("reg", &config.reg),
                    ("epochs", &config.epochs),
                    ("seed", &config.seed),
                ],
            ),
            ModelSpec::TransFm { config } => {
                write_tagged(out, "trans_fm", &[("k", &config.k), ("seed", &config.seed)])
            }
            ModelSpec::Mf { config } => write_mf(out, "mf", config),
            ModelSpec::Pmf { config } => write_mf(out, "pmf", config),
            ModelSpec::BprMf { config } => write_mf(out, "bpr_mf", config),
            ModelSpec::Ngcf { config } => write_mf(out, "ngcf", config),
            ModelSpec::Ncf { config } => write_tagged(
                out,
                "ncf",
                &[
                    ("k", &config.k),
                    ("layers", &config.layers),
                    ("dropout", &config.dropout),
                    ("seed", &config.seed),
                ],
            ),
            ModelSpec::Nfm { config } => write_tagged(
                out,
                "nfm",
                &[
                    ("k", &config.k),
                    ("layers", &config.layers),
                    ("dropout", &config.dropout),
                    ("seed", &config.seed),
                ],
            ),
            ModelSpec::Afm { config } => write_tagged(
                out,
                "afm",
                &[
                    ("k", &config.k),
                    ("attention_size", &config.attention_size),
                    ("dropout", &config.dropout),
                    ("seed", &config.seed),
                ],
            ),
            ModelSpec::DeepFm { config } => write_tagged(
                out,
                "deep_fm",
                &[
                    ("k", &config.k),
                    ("layers", &config.layers),
                    ("dropout", &config.dropout),
                    ("seed", &config.seed),
                ],
            ),
            ModelSpec::XDeepFm { config } => write_tagged(
                out,
                "x_deep_fm",
                &[
                    ("k", &config.k),
                    ("cin_maps", &config.cin_maps),
                    ("cin_depth", &config.cin_depth),
                    ("layers", &config.layers),
                    ("dropout", &config.dropout),
                    ("seed", &config.seed),
                ],
            ),
        }
    }
}

/// The four MF-family variants share one field layout.
fn write_mf(out: &mut String, tag: &str, config: &MfConfig) {
    write_tagged(
        out,
        tag,
        &[
            ("k", &config.k),
            ("lr", &config.lr),
            ("reg", &config.reg),
            ("epochs", &config.epochs),
            ("seed", &config.seed),
        ],
    );
}

fn read_mf(v: &Value) -> Result<MfConfig, json::Error> {
    Ok(MfConfig {
        k: json::field(v, "k")?,
        lr: json::field(v, "lr")?,
        reg: json::field(v, "reg")?,
        epochs: json::field(v, "epochs")?,
        seed: json::field(v, "seed")?,
    })
}

impl Deserialize for ModelSpec {
    fn deserialize_json(v: &Value) -> Result<Self, json::Error> {
        let tag: String = json::field(v, "model")?;
        match tag.as_str() {
            "gml_fm" => {
                let transform: String = json::field(v, "transform")?;
                let dnn_layers: usize = json::field(v, "dnn_layers")?;
                let transform = match transform.as_str() {
                    "identity" => TransformKind::Identity,
                    "mahalanobis" => TransformKind::Mahalanobis,
                    "dnn" => TransformKind::Dnn(dnn_layers),
                    other => return Err(json::Error::new(format!("unknown transform '{other}'"))),
                };
                let distance_name: String = json::field(v, "distance")?;
                Ok(ModelSpec::GmlFm {
                    config: GmlFmConfig {
                        k: json::field(v, "k")?,
                        transform,
                        distance: distance_from_name(&distance_name)?,
                        use_weight: json::field(v, "use_weight")?,
                        dropout: json::field(v, "dropout")?,
                        init_std: json::field(v, "init_std")?,
                        seed: json::field(v, "seed")?,
                    },
                })
            }
            "fm" => Ok(ModelSpec::Fm {
                config: FmConfig {
                    k: json::field(v, "k")?,
                    lr: json::field(v, "lr")?,
                    reg: json::field(v, "reg")?,
                    epochs: json::field(v, "epochs")?,
                    seed: json::field(v, "seed")?,
                },
            }),
            "trans_fm" => Ok(ModelSpec::TransFm {
                config: TransFmConfig { k: json::field(v, "k")?, seed: json::field(v, "seed")? },
            }),
            "mf" => Ok(ModelSpec::Mf { config: read_mf(v)? }),
            "pmf" => Ok(ModelSpec::Pmf { config: read_mf(v)? }),
            "bpr_mf" => Ok(ModelSpec::BprMf { config: read_mf(v)? }),
            "ngcf" => Ok(ModelSpec::Ngcf { config: read_mf(v)? }),
            "ncf" => Ok(ModelSpec::Ncf {
                config: NcfConfig {
                    k: json::field(v, "k")?,
                    layers: json::field(v, "layers")?,
                    dropout: json::field(v, "dropout")?,
                    seed: json::field(v, "seed")?,
                },
            }),
            "nfm" => Ok(ModelSpec::Nfm {
                config: NfmConfig {
                    k: json::field(v, "k")?,
                    layers: json::field(v, "layers")?,
                    dropout: json::field(v, "dropout")?,
                    seed: json::field(v, "seed")?,
                },
            }),
            "afm" => Ok(ModelSpec::Afm {
                config: AfmConfig {
                    k: json::field(v, "k")?,
                    attention_size: json::field(v, "attention_size")?,
                    dropout: json::field(v, "dropout")?,
                    seed: json::field(v, "seed")?,
                },
            }),
            "deep_fm" => Ok(ModelSpec::DeepFm {
                config: DeepFmConfig {
                    k: json::field(v, "k")?,
                    layers: json::field(v, "layers")?,
                    dropout: json::field(v, "dropout")?,
                    seed: json::field(v, "seed")?,
                },
            }),
            "x_deep_fm" => Ok(ModelSpec::XDeepFm {
                config: XDeepFmConfig {
                    k: json::field(v, "k")?,
                    cin_maps: json::field(v, "cin_maps")?,
                    cin_depth: json::field(v, "cin_depth")?,
                    layers: json::field(v, "layers")?,
                    dropout: json::field(v, "dropout")?,
                    seed: json::field(v, "seed")?,
                },
            }),
            other => Err(json::Error::new(format!("unknown model spec tag '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<ModelSpec> {
        vec![
            ModelSpec::gml_fm_md(8),
            ModelSpec::gml_fm_dnn(8, 2),
            ModelSpec::gml_fm(GmlFmConfig::dnn(4, 1).with_distance(Distance::Manhattan).without_weight()),
            ModelSpec::gml_fm(GmlFmConfig::euclidean_plain(4)),
            ModelSpec::fm(FmConfig::default()),
            ModelSpec::trans_fm(TransFmConfig::default()),
            ModelSpec::Mf { config: MfConfig::default() },
            ModelSpec::Pmf { config: MfConfig::default() },
            ModelSpec::BprMf { config: MfConfig::default() },
            ModelSpec::Ngcf { config: MfConfig::default() },
            ModelSpec::Ncf { config: NcfConfig::default() },
            ModelSpec::Nfm { config: NfmConfig::default() },
            ModelSpec::Afm { config: AfmConfig::default() },
            ModelSpec::DeepFm { config: DeepFmConfig::default() },
            ModelSpec::XDeepFm { config: XDeepFmConfig::default() },
        ]
    }

    #[test]
    fn every_spec_round_trips_through_json() {
        for spec in all_specs() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ModelSpec = serde_json::from_str(&json).unwrap();
            let json2 = serde_json::to_string(&back).unwrap();
            assert_eq!(json, json2, "{} drifted through JSON", spec.display_name());
        }
    }

    #[test]
    fn unknown_tag_is_a_typed_parse_error() {
        let err = serde_json::from_str::<ModelSpec>("{\"model\":\"word2vec\"}").unwrap_err();
        assert!(err.to_string().contains("word2vec"), "{err}");
    }

    #[test]
    fn support_matrix_is_consistent_with_the_paper_tables() {
        for spec in all_specs() {
            // Every model supports at least one task, and every freezable
            // model supports both (GML-FM, FM, TransFM appear in Tables 3
            // and 4).
            assert!(spec.supports_rating() || spec.supports_topn(), "{}", spec.display_name());
            if spec.supports_freezing() {
                assert!(spec.supports_rating() && spec.supports_topn(), "{}", spec.display_name());
            }
        }
        assert!(!ModelSpec::BprMf { config: MfConfig::default() }.supports_rating());
        assert!(!ModelSpec::Mf { config: MfConfig::default() }.supports_topn());
    }

    #[test]
    fn display_names_match_the_paper_rows() {
        assert_eq!(ModelSpec::gml_fm_md(4).display_name(), "GML-FM_md");
        assert_eq!(ModelSpec::gml_fm_dnn(4, 1).display_name(), "GML-FM_dnn");
        assert_eq!(ModelSpec::fm(FmConfig::default()).display_name(), "LibFM");
    }
}
