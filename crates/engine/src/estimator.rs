//! The object-safe [`Estimator`] interface: one `fit` call for autograd
//! trainers, hand-derived SGD and pairwise BPR alike.
//!
//! Each model keeps its native training loop (the engine does not
//! re-implement any of them); the private per-model adapters only
//! translate between the unified [`FitData`] view of a split and
//! whatever the model's own `fit` wants — `fit_regression` over the autograd tape,
//! per-instance SGD over labelled instances, or `(user, item)` pairs plus
//! per-user item sets for the pairwise rankers.

use crate::error::EngineError;
use crate::spec::ModelSpec;
use gmlfm_core::GmlFm;
use gmlfm_data::{Instance, LooSplit, RatingSplit};
use gmlfm_models::{
    Afm, BprMf, DeepFm, FactorizationMachine, MatrixFactorization, Ncf, Nfm, Ngcf, PairCodec, Pmf, TransFm,
    XDeepFm,
};
use gmlfm_serve::{Freeze, FrozenModel};
use gmlfm_tensor::Matrix;
use gmlfm_train::{fit_regression, GraphModel, Scorer, TrainConfig, TrainReport};
use std::collections::HashSet;

/// A unified, borrow-only view of training data, constructible from
/// either of the paper's split types.
///
/// Point-wise models consume `train` (and optionally `val` for early
/// stopping); pairwise models (BPR-MF, NGCF) consume `pairs` +
/// `user_items` and return a typed error when those are absent.
#[derive(Debug, Clone, Copy)]
pub struct FitData<'a> {
    /// Labelled training instances (positives and sampled negatives).
    pub train: &'a [Instance],
    /// Validation instances for early stopping, if any.
    pub val: Option<&'a [Instance]>,
    /// Positive `(user, item)` pairs for pairwise models.
    pub pairs: Option<&'a [(u32, u32)]>,
    /// Items each user interacted with in training (negative-sampling
    /// support for pairwise models).
    pub user_items: Option<&'a [HashSet<u32>]>,
}

impl<'a> FitData<'a> {
    /// Training data from a rating split: train + validation instances.
    pub fn rating(split: &'a RatingSplit) -> Self {
        Self { train: &split.train, val: Some(&split.val), pairs: None, user_items: None }
    }

    /// Training data from a leave-one-out split: labelled instances for
    /// point-wise models, pairs + per-user item sets for pairwise ones.
    pub fn topn(split: &'a LooSplit) -> Self {
        Self {
            train: &split.train,
            val: None,
            pairs: Some(&split.train_pairs),
            user_items: Some(&split.train_user_items),
        }
    }

    /// Training data from bare labelled instances (custom protocols).
    pub fn instances(train: &'a [Instance]) -> Self {
        Self { train, val: None, pairs: None, user_items: None }
    }

    /// Replaces the validation set.
    pub fn with_val(mut self, val: &'a [Instance]) -> Self {
        self.val = Some(val);
        self
    }
}

/// An untrained-or-trained model behind the unified engine interface.
///
/// Object-safe by design: [`ModelSpec::build`] returns `Box<dyn
/// Estimator>` and the whole experiment grid dispatches through it. The
/// `Send + Sync` bound keeps every estimator (and therefore every
/// [`crate::Recommender`]) shareable across serving threads.
pub trait Estimator: Send + Sync {
    /// Trains the model in place. `cfg` drives the autograd trainers;
    /// hand-derived SGD models carry their own optimisation
    /// hyper-parameters in their spec and read only
    /// [`TrainConfig::hogwild_threads`] from it (their opt-in lock-free
    /// parallel epoch mode; `1` keeps the exact serial loop).
    fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError>;

    /// The trained model as a scorer (the autograd path for graph
    /// models). Prefer [`Estimator::freeze_if_supported`] for serving.
    fn scorer(&self) -> &dyn Scorer;

    /// Extracts the tape-free frozen serving form, for the models that
    /// have one (GML-FM, FM, TransFM). `None` for models whose
    /// interactions live inside a neural forward.
    fn freeze_if_supported(&self) -> Option<FrozenModel>;

    /// Borrow of the one-hot factor table `V`, for the models that have
    /// one (embedding case studies, t-SNE).
    fn factors(&self) -> Option<&Matrix> {
        None
    }
}

fn fit_graph<M: GraphModel>(
    model: &mut M,
    data: &FitData<'_>,
    cfg: &TrainConfig,
) -> Result<TrainReport, EngineError> {
    if data.train.is_empty() {
        return Err(EngineError::EmptyTrainingSet);
    }
    Ok(fit_regression(model, data.train, data.val, cfg))
}

/// Wraps a hand-derived SGD loss curve in the trainer's report type.
fn sgd_report(losses: Vec<f64>) -> TrainReport {
    TrainReport {
        epochs_run: losses.len(),
        train_losses: losses,
        val_rmses: Vec::new(),
        best_val_rmse: f64::INFINITY,
    }
}

/// Pairwise training inputs: positive pairs plus per-user item sets.
type PairData<'x> = (&'x [(u32, u32)], &'x [HashSet<u32>]);

fn pair_data<'x>(data: &FitData<'x>, model: &str) -> Result<PairData<'x>, EngineError> {
    match (data.pairs, data.user_items) {
        (Some([]), Some(_)) => Err(EngineError::EmptyTrainingSet),
        (Some(pairs), Some(user_items)) => Ok((pairs, user_items)),
        _ => Err(EngineError::MissingPairData { model: model.to_string() }),
    }
}

/// The per-model [`Estimator`] adapters and the spec-driven constructor.
pub(crate) mod adapters {
    use super::*;
    use gmlfm_data::{FieldMask, Schema};

    /// Instantiates the untrained model named by `spec` behind the
    /// [`Estimator`] interface — the single constructor the whole
    /// workspace dispatches through.
    pub(crate) fn build(spec: &ModelSpec, schema: &Schema, mask: &FieldMask) -> Box<dyn Estimator> {
        let n = schema.total_dim();
        let m = mask.n_active();
        match spec {
            ModelSpec::GmlFm { config } => Box::new(GmlFmEstimator { model: GmlFm::new(n, config) }),
            ModelSpec::Fm { config } => {
                Box::new(FmEstimator { model: FactorizationMachine::new(n, config.clone()) })
            }
            ModelSpec::TransFm { config } => Box::new(TransFmEstimator { model: TransFm::new(n, config) }),
            ModelSpec::Mf { config } => Box::new(MfEstimator {
                model: MatrixFactorization::new(PairCodec::from_schema(schema), config.clone()),
            }),
            ModelSpec::Pmf { config } => {
                Box::new(PmfEstimator { model: Pmf::new(PairCodec::from_schema(schema), config.clone()) })
            }
            ModelSpec::BprMf { config } => {
                Box::new(BprMfEstimator { model: BprMf::new(PairCodec::from_schema(schema), config.clone()) })
            }
            ModelSpec::Ngcf { config } => {
                Box::new(NgcfEstimator { model: Ngcf::new(PairCodec::from_schema(schema), config.clone()) })
            }
            ModelSpec::Ncf { config } => {
                Box::new(NcfEstimator { model: Ncf::new(PairCodec::from_schema(schema), config) })
            }
            ModelSpec::Nfm { config } => Box::new(NfmEstimator { model: Nfm::new(n, config) }),
            ModelSpec::Afm { config } => Box::new(AfmEstimator { model: Afm::new(n, config) }),
            ModelSpec::DeepFm { config } => Box::new(DeepFmEstimator { model: DeepFm::new(n, m, config) }),
            ModelSpec::XDeepFm { config } => Box::new(XDeepFmEstimator { model: XDeepFm::new(n, m, config) }),
        }
    }

    struct GmlFmEstimator {
        model: GmlFm,
    }

    impl Estimator for GmlFmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            Some(self.model.freeze())
        }
        fn factors(&self) -> Option<&Matrix> {
            Some(self.model.factors())
        }
    }

    struct FmEstimator {
        model: FactorizationMachine,
    }

    impl Estimator for FmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            if data.train.is_empty() {
                return Err(EngineError::EmptyTrainingSet);
            }
            Ok(sgd_report(self.model.fit_hogwild(data.train, cfg.hogwild_threads)))
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            Some(self.model.freeze())
        }
        fn factors(&self) -> Option<&Matrix> {
            Some(self.model.factors())
        }
    }

    struct TransFmEstimator {
        model: TransFm,
    }

    impl Estimator for TransFmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            Some(self.model.freeze())
        }
        fn factors(&self) -> Option<&Matrix> {
            Some(self.model.factors())
        }
    }

    struct MfEstimator {
        model: MatrixFactorization,
    }

    impl Estimator for MfEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            if data.train.is_empty() {
                return Err(EngineError::EmptyTrainingSet);
            }
            Ok(sgd_report(self.model.fit_hogwild(data.train, cfg.hogwild_threads)))
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct PmfEstimator {
        model: Pmf,
    }

    impl Estimator for PmfEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            if data.train.is_empty() {
                return Err(EngineError::EmptyTrainingSet);
            }
            Ok(sgd_report(self.model.fit_hogwild(data.train, cfg.hogwild_threads)))
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct BprMfEstimator {
        model: BprMf,
    }

    impl Estimator for BprMfEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            let (pairs, user_items) = pair_data(data, "BPR-MF")?;
            Ok(sgd_report(self.model.fit_hogwild(pairs, user_items, cfg.hogwild_threads)))
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct NgcfEstimator {
        model: Ngcf,
    }

    impl Estimator for NgcfEstimator {
        fn fit(&mut self, data: &FitData<'_>, _cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            let (pairs, user_items) = pair_data(data, "NGCF")?;
            Ok(sgd_report(self.model.fit(pairs, user_items)))
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct NcfEstimator {
        model: Ncf,
    }

    impl Estimator for NcfEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct NfmEstimator {
        model: Nfm,
    }

    impl Estimator for NfmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
        fn factors(&self) -> Option<&Matrix> {
            Some(self.model.factors())
        }
    }

    struct AfmEstimator {
        model: Afm,
    }

    impl Estimator for AfmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct DeepFmEstimator {
        model: DeepFm,
    }

    impl Estimator for DeepFmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }

    struct XDeepFmEstimator {
        model: XDeepFm,
    }

    impl Estimator for XDeepFmEstimator {
        fn fit(&mut self, data: &FitData<'_>, cfg: &TrainConfig) -> Result<TrainReport, EngineError> {
            fit_graph(&mut self.model, data, cfg)
        }
        fn scorer(&self) -> &dyn Scorer {
            &self.model
        }
        fn freeze_if_supported(&self) -> Option<FrozenModel> {
            None
        }
    }
}
