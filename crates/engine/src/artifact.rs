//! The versioned, servable artifact: spec + schema + frozen matrices
//! (+ optional serving catalog) in one JSON file.
//!
//! An artifact is everything a serving process needs and nothing it does
//! not: no autograd tape, no optimizer state, no training data. Loading
//! one (`Engine::load`) reconstructs a [`gmlfm_serve::FrozenModel`]
//! directly from the stored matrices — the training crates are never
//! touched — and the embedded [`Catalog`] (per-user templates + per-item
//! feature groups) makes `top_n` servable straight off the file.
//!
//! The `format_version` field is checked *before* the body is decoded,
//! so a bumped or unknown version fails with
//! [`EngineError::UnsupportedVersion`] rather than a parse panic deep in
//! some field.
//!
//! ## Format history
//!
//! * **v1** — spec + schema + frozen matrices + optional catalog.
//! * **v2** — adds the optional per-user `seen` sets
//!   ([`gmlfm_service::SeenItems`]) behind the serving API's default
//!   seen-item exclusion. v1 artifacts still load (the `seen` field
//!   decodes as absent, so top-n requests simply exclude nothing).
//! * **v3** — adds the optional IVF retrieval `index`
//!   ([`gmlfm_serve::IvfIndex`]: per-cluster φ-means, radii and item
//!   assignments), so load → serve needs no index rebuild. v1/v2
//!   artifacts still load (the `index` field decodes as absent, so
//!   top-n requests serve through the exact sharded-heap path).
//! * **v4** — adds the optional default scoring `precision`
//!   ([`gmlfm_serve::Precision`] name: `"f64"` / `"f32"` / `"i8"`).
//!   Only the *setting* is stored; the low-precision tables themselves
//!   are rebuilt on load from the exact matrices, so artifacts don't
//!   grow. v1–v3 artifacts still load (the field decodes as absent,
//!   meaning exact `f64` serving — exactly their old behaviour).

use crate::error::EngineError;
use crate::spec::{distance_from_name, distance_name, ModelSpec};
use gmlfm_data::schema::Field;
use gmlfm_data::{FieldKind, Schema};
use gmlfm_serve::{FrozenModel, IvfIndex, Precision, SecondOrder};
use gmlfm_service::{ModelSnapshot, SeenItems};
use gmlfm_tensor::Matrix;
use serde::json::{self, Value};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// The artifact format version this build writes.
pub const ARTIFACT_VERSION: u32 = 4;

/// The oldest artifact format version this build still reads.
pub const MIN_ARTIFACT_VERSION: u32 = 1;

/// A dense matrix in serialisable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct MatrixRepr {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl MatrixRepr {
    fn from_matrix(m: &Matrix) -> Self {
        Self { rows: m.rows(), cols: m.cols(), data: m.as_slice().to_vec() }
    }

    fn into_matrix(self) -> Result<Matrix, EngineError> {
        if self.data.len() != self.rows * self.cols {
            return Err(EngineError::BadArtifact(format!(
                "matrix {}x{} carries {} values",
                self.rows,
                self.cols,
                self.data.len()
            )));
        }
        Ok(Matrix::from_vec(self.rows, self.cols, self.data))
    }
}

/// Serialisable form of [`SecondOrder`], tagged by `kind`.
#[derive(Debug, Clone)]
pub(crate) enum SecondRepr {
    Dot,
    Metric { v_hat: MatrixRepr, q: Vec<f64>, h: Option<Vec<f64>>, distance: String },
    Translated { v_trans: MatrixRepr },
}

impl Serialize for SecondRepr {
    fn serialize_json(&self, out: &mut String) {
        match self {
            SecondRepr::Dot => out.push_str("{\"kind\":\"dot\"}"),
            SecondRepr::Metric { v_hat, q, h, distance } => {
                out.push_str("{\"kind\":\"metric\",\"v_hat\":");
                v_hat.serialize_json(out);
                out.push_str(",\"q\":");
                q.serialize_json(out);
                out.push_str(",\"h\":");
                h.serialize_json(out);
                out.push_str(",\"distance\":");
                distance.serialize_json(out);
                out.push('}');
            }
            SecondRepr::Translated { v_trans } => {
                out.push_str("{\"kind\":\"translated\",\"v_trans\":");
                v_trans.serialize_json(out);
                out.push('}');
            }
        }
    }
}

impl Deserialize for SecondRepr {
    fn deserialize_json(v: &Value) -> Result<Self, json::Error> {
        let kind: String = json::field(v, "kind")?;
        match kind.as_str() {
            "dot" => Ok(SecondRepr::Dot),
            "metric" => Ok(SecondRepr::Metric {
                v_hat: json::field(v, "v_hat")?,
                q: json::field(v, "q")?,
                h: json::field(v, "h")?,
                distance: json::field(v, "distance")?,
            }),
            "translated" => Ok(SecondRepr::Translated { v_trans: json::field(v, "v_trans")? }),
            other => Err(json::Error::new(format!("unknown second-order kind '{other}'"))),
        }
    }
}

/// Serialisable form of a [`FrozenModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FrozenRepr {
    w0: f64,
    w: Vec<f64>,
    v: MatrixRepr,
    second: SecondRepr,
}

impl FrozenRepr {
    pub(crate) fn from_frozen(frozen: &FrozenModel) -> Self {
        let second = match frozen.second_order_kind() {
            SecondOrder::Dot => SecondRepr::Dot,
            SecondOrder::Metric { hat, h, distance } => SecondRepr::Metric {
                // The artifact keeps V̂ and q as separate fields (stable
                // format); the packed serving layout is rebuilt on load.
                v_hat: MatrixRepr::from_matrix(&hat.v_hat_matrix()),
                q: hat.q_vec(),
                h: h.clone(),
                distance: distance_name(*distance).to_string(),
            },
            SecondOrder::Translated { v_trans } => {
                SecondRepr::Translated { v_trans: MatrixRepr::from_matrix(v_trans) }
            }
        };
        Self {
            w0: frozen.bias(),
            w: frozen.linear_weights().to_vec(),
            v: MatrixRepr::from_matrix(frozen.factors()),
            second,
        }
    }

    pub(crate) fn into_frozen(self) -> Result<FrozenModel, EngineError> {
        let v = self.v.into_matrix()?;
        let (n, k) = v.shape();
        if self.w.len() != n {
            return Err(EngineError::BadArtifact(format!(
                "{} linear weights for {n} features",
                self.w.len()
            )));
        }
        let second = match self.second {
            SecondRepr::Dot => SecondOrder::Dot,
            SecondRepr::Metric { v_hat, q, h, distance } => {
                let v_hat = v_hat.into_matrix()?;
                if v_hat.shape() != (n, k) {
                    return Err(EngineError::BadArtifact("V-hat shape differs from V".into()));
                }
                if q.len() != n {
                    return Err(EngineError::BadArtifact(format!("{} norms for {n} features", q.len())));
                }
                if let Some(h) = &h {
                    if h.len() != k {
                        return Err(EngineError::BadArtifact(format!(
                            "{} transformation weights for k={k}",
                            h.len()
                        )));
                    }
                }
                let distance = distance_from_name(&distance)?;
                SecondOrder::metric(v_hat, q, h, distance)
            }
            SecondRepr::Translated { v_trans } => {
                let v_trans = v_trans.into_matrix()?;
                if v_trans.shape() != (n, k) {
                    return Err(EngineError::BadArtifact("translation table shape differs from V".into()));
                }
                SecondOrder::Translated { v_trans }
            }
        };
        Ok(FrozenModel::from_parts(self.w0, self.w, v, second))
    }
}

/// One schema field in serialisable form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FieldRepr {
    name: String,
    cardinality: usize,
    kind: String,
}

/// Serialisable form of a [`Schema`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SchemaRepr {
    fields: Vec<FieldRepr>,
}

fn kind_name(kind: FieldKind) -> &'static str {
    match kind {
        FieldKind::User => "user",
        FieldKind::Item => "item",
        FieldKind::UserAttr => "user_attr",
        FieldKind::Category => "category",
        FieldKind::Condition => "condition",
        FieldKind::Shipping => "shipping",
        FieldKind::ItemAttr => "item_attr",
    }
}

fn kind_from_name(name: &str) -> Result<FieldKind, EngineError> {
    match name {
        "user" => Ok(FieldKind::User),
        "item" => Ok(FieldKind::Item),
        "user_attr" => Ok(FieldKind::UserAttr),
        "category" => Ok(FieldKind::Category),
        "condition" => Ok(FieldKind::Condition),
        "shipping" => Ok(FieldKind::Shipping),
        "item_attr" => Ok(FieldKind::ItemAttr),
        other => Err(EngineError::BadArtifact(format!("unknown field kind '{other}'"))),
    }
}

impl SchemaRepr {
    pub(crate) fn from_schema(schema: &Schema) -> Self {
        Self {
            fields: schema
                .fields()
                .iter()
                .map(|f| FieldRepr {
                    name: f.name.clone(),
                    cardinality: f.cardinality,
                    kind: kind_name(f.kind).to_string(),
                })
                .collect(),
        }
    }

    pub(crate) fn into_schema(self) -> Result<Schema, EngineError> {
        let mut fields = Vec::with_capacity(self.fields.len());
        for f in self.fields {
            fields.push(Field { name: f.name, cardinality: f.cardinality, kind: kind_from_name(&f.kind)? });
        }
        Ok(Schema::new(fields))
    }
}

/// Serialisable form of an [`IvfIndex`] (v3+): the per-cluster means
/// plus the per-item cluster assignment and deviation-norm vectors,
/// from which the member lists and cluster radii are rebuilt on load.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct IndexRepr {
    kind: String,
    k: usize,
    phi_mean: MatrixRepr,
    item_norms: Vec<f64>,
    assignments: Vec<u32>,
    default_nprobe: usize,
    min_candidates: usize,
}

impl IndexRepr {
    pub(crate) fn from_index(index: &IvfIndex) -> Self {
        Self {
            kind: index.kind().name().to_string(),
            k: index.k(),
            phi_mean: MatrixRepr::from_matrix(index.phi_mean()),
            item_norms: index.item_norms(),
            assignments: index.assignments(),
            default_nprobe: index.default_nprobe(),
            min_candidates: index.min_candidates(),
        }
    }

    pub(crate) fn into_index(self) -> Result<IvfIndex, EngineError> {
        let phi_mean = self.phi_mean.into_matrix()?;
        IvfIndex::from_parts(
            &self.kind,
            self.k,
            phi_mean,
            self.item_norms,
            self.assignments,
            self.default_nprobe,
            self.min_candidates,
        )
        .map_err(EngineError::BadArtifact)
    }
}

/// The serving catalog (re-exported from [`gmlfm_service`], where the
/// request path that consumes it lives).
pub use gmlfm_service::Catalog;

/// A saved, versioned, servable model: spec + schema + frozen matrices
/// (+ optional catalog and seen sets) in one JSON document.
#[derive(Debug, Clone, Serialize)]
pub struct Artifact {
    /// Format version; checked before the body is decoded.
    pub format_version: u32,
    /// What the model is (restores with the artifact).
    pub spec: ModelSpec,
    pub(crate) schema: SchemaRepr,
    pub(crate) frozen: FrozenRepr,
    /// Serving catalog, when the recommender was fit from a dataset.
    pub catalog: Option<Catalog>,
    /// Per-user training-time seen sets (v2+), backing the serving API's
    /// default seen-item exclusion.
    pub seen: Option<SeenItems>,
    /// IVF retrieval index (v3+), rebuilt into a [`IvfIndex`] on load.
    pub(crate) index: Option<IndexRepr>,
    /// Default scoring precision by [`Precision::name`] (v4+); the
    /// low-precision tables are rebuilt on load, not stored.
    pub(crate) precision: Option<String>,
}

// Hand-written (the derive requires every key): the `seen` field did not
// exist before format version 2, nor `index` before 3, nor `precision`
// before 4, so all decode as `None` when absent.
impl Deserialize for Artifact {
    fn deserialize_json(v: &Value) -> Result<Self, json::Error> {
        fn optional<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, json::Error> {
            match v.get(name) {
                Some(value) => Option::<T>::deserialize_json(value)
                    .map_err(|e| json::Error::new(format!("field '{name}': {e}"))),
                None => Ok(None),
            }
        }
        Ok(Self {
            format_version: json::field(v, "format_version")?,
            spec: json::field(v, "spec")?,
            schema: json::field(v, "schema")?,
            frozen: json::field(v, "frozen")?,
            catalog: json::field(v, "catalog")?,
            seen: optional(v, "seen")?,
            index: optional(v, "index")?,
            precision: optional(v, "precision")?,
        })
    }
}

impl Artifact {
    /// Assembles an artifact from a frozen model and its provenance.
    /// [`crate::Recommender::artifact`] is the usual entry point; this
    /// constructor serves custom pipelines that freeze models themselves.
    pub fn new(
        spec: ModelSpec,
        schema: &Schema,
        frozen: &FrozenModel,
        catalog: Option<Catalog>,
        seen: Option<SeenItems>,
        index: Option<&IvfIndex>,
    ) -> Self {
        Self {
            format_version: ARTIFACT_VERSION,
            spec,
            schema: SchemaRepr::from_schema(schema),
            frozen: FrozenRepr::from_frozen(frozen),
            catalog,
            seen,
            index: index.map(IndexRepr::from_index),
            // The f64 default is omitted rather than written, keeping
            // v4 artifacts of exact models byte-identical in spirit to
            // v3 (and absent == "f64" on load either way).
            precision: match frozen.precision() {
                Precision::F64 => None,
                p => Some(p.name().to_string()),
            },
        }
    }

    /// Decodes the artifact body into the servable [`ModelSnapshot`] the
    /// serving API consumes — what [`crate::Engine::load`] wraps, and
    /// what a serving process feeds to
    /// [`gmlfm_service::ModelServer::swap`] for a zero-downtime model
    /// refresh.
    pub fn into_snapshot(self) -> Result<ModelSnapshot, EngineError> {
        let precision = match &self.precision {
            None => Precision::F64,
            Some(name) => Precision::from_name(name)
                .ok_or_else(|| EngineError::BadArtifact(format!("unknown precision '{name}'")))?,
        };
        Ok(ModelSnapshot {
            schema: self.schema.into_schema()?,
            frozen: self.frozen.into_frozen()?.with_precision(precision),
            catalog: self.catalog,
            seen: self.seen,
            index: self.index.map(IndexRepr::into_index).transpose()?,
        })
    }

    /// Serialises to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serialisation is infallible")
    }

    /// Parses an artifact, validating `format_version` before decoding
    /// the body.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let value = json::parse(text).map_err(EngineError::Json)?;
        let raw = value
            .get("format_version")
            .and_then(Value::as_f64)
            .ok_or_else(|| EngineError::BadArtifact("missing format_version".into()))?;
        if raw.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&raw) {
            return Err(EngineError::BadArtifact(format!("format_version {raw} is not a u32")));
        }
        let version = raw as u32;
        if !(MIN_ARTIFACT_VERSION..=ARTIFACT_VERSION).contains(&version) {
            return Err(EngineError::UnsupportedVersion { found: version, supported: ARTIFACT_VERSION });
        }
        Artifact::deserialize_json(&value).map_err(EngineError::Json)
    }

    /// Writes the artifact as JSON, creating parent directories.
    ///
    /// The write is **crash-safe**: the bytes go to a sibling temp file,
    /// are fsynced, and only then atomically renamed over `path`. A
    /// crash or power loss mid-save leaves either the old artifact or
    /// the new one — never a truncated or interleaved file — so a
    /// serving process can always [`Artifact::load`] whatever is at
    /// `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        // Temp file in the same directory, so the rename below cannot
        // cross filesystems (cross-device renames are not atomic). The
        // pid keeps concurrent savers from clobbering each other's
        // partial writes; last rename wins, each one atomic.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            let mut file = fs::File::create(&tmp)?;
            use std::io::Write;
            file.write_all(self.to_json().as_bytes())?;
            // Flush file contents to stable storage before the rename
            // makes them reachable under `path`.
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, path)?;
            Ok(())
        })();
        if result.is_err() {
            // Best-effort cleanup; the failure we report is the write's.
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// Reads an artifact saved by [`Artifact::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, EngineError> {
        Self::from_json(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumped_version_is_a_typed_error() {
        let err = Artifact::from_json("{\"format_version\": 99}").unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedVersion { found: 99, supported: ARTIFACT_VERSION }));
    }

    #[test]
    fn supported_version_range_gates_before_body_decode() {
        // v0 never existed and the next future version is unknown: both
        // rejected at the gate. Every version in the supported range
        // passes the gate — the error (if any) comes from the missing
        // body fields, proving decode was attempted.
        for version in [0u32, ARTIFACT_VERSION + 1] {
            let err = Artifact::from_json(&format!("{{\"format_version\": {version}}}")).unwrap_err();
            assert!(
                matches!(err, EngineError::UnsupportedVersion { found, supported: ARTIFACT_VERSION } if found == version),
                "{err}"
            );
        }
        for version in MIN_ARTIFACT_VERSION..=ARTIFACT_VERSION {
            let err = Artifact::from_json(&format!("{{\"format_version\": {version}}}")).unwrap_err();
            assert!(matches!(err, EngineError::Json(_)), "v{version}: {err}");
        }
    }

    #[test]
    fn missing_version_is_a_typed_error() {
        let err = Artifact::from_json("{\"spec\": {}}").unwrap_err();
        assert!(matches!(err, EngineError::BadArtifact(_)));
    }

    #[test]
    fn fractional_version_is_rejected_not_truncated() {
        // 1.5 must not be truncated to the supported version 1 in the
        // error report.
        let err = Artifact::from_json("{\"format_version\": 1.5}").unwrap_err();
        assert!(matches!(err, EngineError::BadArtifact(_)), "{err}");
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        let err = Artifact::from_json("{not json").unwrap_err();
        assert!(matches!(err, EngineError::Json(_)));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Artifact::load("/nonexistent/dir/artifact.json").unwrap_err();
        assert!(matches!(err, EngineError::Io(_)));
    }

    #[test]
    fn schema_round_trips() {
        let schema = Schema::from_specs(&[
            ("user", 7, FieldKind::User),
            ("item", 9, FieldKind::Item),
            ("cat", 3, FieldKind::Category),
        ]);
        let repr = SchemaRepr::from_schema(&schema);
        let json = serde_json::to_string(&repr).unwrap();
        let back: SchemaRepr = serde_json::from_str(&json).unwrap();
        let restored = back.into_schema().unwrap();
        assert_eq!(restored.total_dim(), schema.total_dim());
        assert_eq!(restored.fields()[2].kind, FieldKind::Category);
        assert_eq!(restored.fields()[1].name, "item");
    }
}
