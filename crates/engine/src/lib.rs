//! # gmlfm-engine
//!
//! One spec-driven pipeline from configuration to servable artifact,
//! unifying the workspace's four training worlds (autograd regression,
//! hand-derived SGD, pairwise BPR, propagation-based BPR) behind three
//! layers:
//!
//! 1. **[`ModelSpec`]** — a serialisable tagged enum naming every model
//!    in the paper's tables, with an object-safe [`Estimator`] trait
//!    (`fit`, `scorer`, `freeze_if_supported`) implemented for each, so
//!    "construct and train model X" is one call regardless of how X
//!    trains.
//! 2. **[`Engine::builder`]** — the fluent pipeline
//!    `.dataset(..).split(..).spec(..).train_config(..).fit()?`,
//!    returning a [`Recommender`] that scores, ranks the whole item
//!    catalogue (`top_n`), evaluates its holdout, and saves itself.
//! 3. **[`Artifact`]** — a versioned JSON format (spec + schema + frozen
//!    matrices + serving catalog) that [`Engine::load`] restores into a
//!    servable [`Recommender`] without touching the autograd or training
//!    crates, generalising `gmlfm_core`'s GML-FM-only persistence to
//!    every freezable model.
//!
//! ```
//! use gmlfm_engine::{Engine, ModelSpec, SplitPlan};
//! use gmlfm_data::{generate, DatasetSpec};
//!
//! // config → train → freeze → artifact …
//! let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.15));
//! let rec = Engine::builder()
//!     .dataset(dataset)
//!     .split(SplitPlan::topn(11))
//!     .spec(ModelSpec::gml_fm_dnn(8, 1))
//!     .fit()
//!     .expect("pipeline");
//! let json = rec.artifact().expect("freezable").to_json();
//!
//! // … and the serving side restores it without the training crates.
//! let served = Engine::load_json(&json).expect("load");
//! let top = served.top_n(0, 5).expect("rank");
//! assert_eq!(top.len(), 5);
//! ```

pub mod artifact;
pub mod error;
pub mod estimator;
pub mod pipeline;
pub mod spec;

pub use artifact::{Artifact, Catalog, ARTIFACT_VERSION, MIN_ARTIFACT_VERSION};
pub use error::EngineError;
pub use estimator::{Estimator, FitData};
pub use pipeline::{Engine, EngineBuilder, Recommender, SplitPlan};
pub use spec::ModelSpec;

// The scoring-precision knob `EngineBuilder::precision` takes, so engine
// users pick a table precision without a separate `gmlfm_serve` import.
pub use gmlfm_serve::Precision;

// The serving protocol the `Recommender` wrappers route through, so
// engine users build requests without a separate `gmlfm_service` import.
pub use gmlfm_service::{
    BatchRequest, FeedAck, FeedSink, Interaction, ModelServer, ModelSnapshot, Reply, Request, RequestError,
    Response, ScoreRequest, SeenItems, TopNRequest,
};

// The online loop `Recommender::serve_online` launches, so engine users
// configure and drive it without a separate `gmlfm_online` import.
pub use gmlfm_online::{
    EvalGate, GateMetrics, GateReport, OnlineConfig, OnlineError, OnlineHandle, OnlineServing, OnlineStatus,
    OnlineTrainer, RoundOutcome,
};
