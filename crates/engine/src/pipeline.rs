//! The fluent engine pipeline: dataset → split → spec → train config →
//! [`Recommender`], and artifact load on the serving side.
//!
//! A fitted (or loaded) freezable recommender is backed by a
//! [`gmlfm_service::ModelServer`]: every `score*`/`top_n`/holdout-
//! evaluation call routes through the typed request path, and
//! [`Recommender::serve`] hands out the underlying hot-swappable handle
//! for a serving process to share across threads.
//!
//! ```
//! use gmlfm_engine::{Engine, ModelSpec, SplitPlan};
//! use gmlfm_data::{generate, DatasetSpec};
//!
//! let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.15));
//! let rec = Engine::builder()
//!     .dataset(dataset)
//!     .split(SplitPlan::rating(7))
//!     .spec(ModelSpec::gml_fm_dnn(8, 1))
//!     .fit()
//!     .expect("pipeline");
//! let metrics = rec.evaluate_rating().expect("rating holdout");
//! assert!(metrics.rmse.is_finite());
//! ```

use crate::artifact::{Artifact, Catalog};
use crate::error::EngineError;
use crate::estimator::{Estimator, FitData};
use crate::spec::ModelSpec;
use gmlfm_data::{loo_split, rating_split, Dataset, FieldKind, FieldMask, Instance, LooTestCase, Schema};
use gmlfm_eval::{evaluate_rating, evaluate_topn_backend, RatingMetrics, TopnMetrics};
use gmlfm_net::{NetServer, ServerConfig as NetServerConfig};
use gmlfm_online::{OnlineConfig, OnlineError, OnlineModel, OnlineServing};
use gmlfm_par::Parallelism;
use gmlfm_serve::{FrozenModel, IvfBuildOptions, IvfIndex, Precision, RetrievalStrategy};
use gmlfm_service::{
    exec, BatchRequest, ModelServer, ModelSnapshot, Reply, RequestError, Response, ScoreRequest,
    ScoringBackend, SeenItems, TopNRequest,
};
use gmlfm_train::{Scorer, TrainConfig, TrainReport};
use std::path::Path;

/// The generation stamped on responses from live (non-freezable,
/// non-swappable) recommenders: they serve exactly one model, forever.
const LIVE_GENERATION: u64 = 1;

/// How the engine splits a dataset before training.
#[derive(Debug, Clone, Copy)]
pub enum SplitPlan {
    /// The paper's rating protocol: ±1 implicit targets, sampled
    /// negatives, 70/20/10 split (Section 4.3.1).
    Rating {
        /// Sampled negatives per positive (2 in the paper).
        neg_per_pos: usize,
        /// Split seed.
        seed: u64,
    },
    /// The paper's leave-one-out top-n protocol (Section 4.3.2).
    TopN {
        /// Sampled training negatives per positive (2 in the paper).
        neg_per_pos: usize,
        /// Candidate negatives per test case (99 in the paper).
        n_candidates: usize,
        /// Split seed.
        seed: u64,
    },
}

impl SplitPlan {
    /// Rating protocol with the paper's defaults (2 negatives per
    /// positive).
    pub fn rating(seed: u64) -> Self {
        SplitPlan::Rating { neg_per_pos: 2, seed }
    }

    /// Leave-one-out protocol with the paper's defaults (2 training
    /// negatives per positive, 99 candidates).
    pub fn topn(seed: u64) -> Self {
        SplitPlan::TopN { neg_per_pos: 2, n_candidates: 99, seed }
    }
}

impl Default for SplitPlan {
    fn default() -> Self {
        SplitPlan::rating(7)
    }
}

/// Entry points of the unified pipeline.
pub struct Engine;

impl Engine {
    /// Starts the fluent config → train → freeze pipeline.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            dataset: None,
            mask: None,
            split: SplitPlan::default(),
            spec: None,
            train: TrainConfig::default(),
            par: Parallelism::auto(),
            retrieval: RetrievalStrategy::Exact,
            precision: Precision::F64,
            online: false,
        }
    }

    /// Restores a servable [`Recommender`] from an [`Artifact`] file.
    /// Only the frozen matrices are touched — no autograd, no trainers.
    pub fn load(path: impl AsRef<Path>) -> Result<Recommender, EngineError> {
        Recommender::from_artifact(Artifact::load(path)?)
    }

    /// [`Engine::load`] from an in-memory JSON string.
    pub fn load_json(text: &str) -> Result<Recommender, EngineError> {
        Recommender::from_artifact(Artifact::from_json(text)?)
    }
}

/// Fluent builder returned by [`Engine::builder`].
pub struct EngineBuilder {
    dataset: Option<Dataset>,
    mask: Option<FieldMask>,
    split: SplitPlan,
    spec: Option<ModelSpec>,
    train: TrainConfig,
    par: Parallelism,
    retrieval: RetrievalStrategy,
    precision: Precision,
    online: bool,
}

impl EngineBuilder {
    /// The dataset to split, train and build the serving catalog from.
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Restricts training and serving to an attribute subset (defaults
    /// to every field).
    pub fn mask(mut self, mask: FieldMask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// The split protocol (defaults to [`SplitPlan::rating`] with seed 7).
    pub fn split(mut self, split: SplitPlan) -> Self {
        self.split = split;
        self
    }

    /// Which model to construct and train.
    pub fn spec(mut self, spec: ModelSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Training-loop hyper-parameters for the autograd trainers
    /// (hand-derived SGD models carry their own in the spec; the
    /// `hogwild_threads` field opts them into parallel epochs).
    pub fn train_config(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Serving/eval parallelism for the resulting [`Recommender`]:
    /// batch scoring, `top_n` and holdout evaluation partition their
    /// work across this many pool workers. Defaults to
    /// [`Parallelism::auto`] (`GMLFM_THREADS` or the machine's core
    /// count); `threads(1)` is the deterministic serial escape hatch —
    /// though parallel results are bit-identical to serial anyway,
    /// pinned by the `parallel_parity` tests.
    pub fn threads(mut self, n: usize) -> Self {
        self.par = Parallelism::threads(n);
        self
    }

    /// Candidate-selection strategy for whole-catalogue top-n requests
    /// (defaults to [`RetrievalStrategy::Exact`]).
    /// [`RetrievalStrategy::Ivf`] builds a [`gmlfm_serve::IvfIndex`]
    /// over the serving catalog after freezing — scores stay exact, the
    /// candidate set becomes approximate (see [`RetrievalStrategy`]) —
    /// and persists it in the artifact (format v3) so load → serve
    /// needs no rebuild. Models without the metric linearisation, or
    /// catalogs too small to profit, skip the build and serve exactly.
    pub fn retrieval(mut self, strategy: RetrievalStrategy) -> Self {
        self.retrieval = strategy;
        self
    }

    /// Default scoring-table precision of the frozen snapshot (defaults
    /// to [`Precision::F64`]: exact scores, no extra tables). Lower
    /// precisions build the `f32`/quantized `i8` tables at freeze time
    /// and persist them with the model (artifact format v4 records the
    /// setting; the tables themselves are rebuilt on load from the
    /// exact matrices, so artifacts don't grow). Per-request
    /// `TopNRequest::precision` overrides this default either way; see
    /// [`Precision`] for the accuracy contract of each level. Models
    /// without the metric linearisation have no low-precision form and
    /// serve exactly regardless.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Opts the fitted [`Recommender`] into online learning: the trained
    /// estimator and the base training instances are retained so
    /// [`Recommender::serve_online`] can warm-start retraining rounds
    /// from the published weights. Off by default — retention costs one
    /// copy of the training set.
    pub fn online(mut self, online: bool) -> Self {
        self.online = online;
        self
    }

    /// Runs the pipeline: split, construct, train, freeze (when
    /// supported), and wrap into a [`Recommender`] with its serving
    /// catalog, seen sets and evaluation holdout.
    pub fn fit(self) -> Result<Recommender, EngineError> {
        let dataset = self.dataset.ok_or(EngineError::BuilderIncomplete { field: "dataset" })?;
        let spec = self.spec.ok_or(EngineError::BuilderIncomplete { field: "spec" })?;
        let mask = self.mask.unwrap_or_else(|| FieldMask::all(&dataset.schema));
        let mut estimator = spec.build(&dataset.schema, &mask);
        let (report, holdout, seen, base) = match self.split {
            SplitPlan::Rating { neg_per_pos, seed } => {
                if !spec.supports_rating() {
                    return Err(EngineError::UnsupportedTask {
                        model: spec.display_name().to_string(),
                        task: "rating",
                    });
                }
                let split = rating_split(&dataset, &mask, neg_per_pos, seed);
                let report = estimator.fit(&FitData::rating(&split), &self.train)?;
                let seen = rating_seen(&dataset.schema, &mask, &split.train, dataset.n_users);
                let base = self.online.then_some(split.train);
                (report, Holdout::Rating(split.test), seen, base)
            }
            SplitPlan::TopN { neg_per_pos, n_candidates, seed } => {
                if !spec.supports_topn() {
                    return Err(EngineError::UnsupportedTask {
                        model: spec.display_name().to_string(),
                        task: "top-n",
                    });
                }
                let split = loo_split(&dataset, &mask, neg_per_pos, n_candidates, seed);
                let report = estimator.fit(&FitData::topn(&split), &self.train)?;
                let seen = SeenItems::new(
                    split.train_user_items.iter().map(|s| s.iter().copied().collect()).collect(),
                );
                let base = self.online.then_some(split.train);
                (report, Holdout::TopN(split.test), Some(seen), base)
            }
        };
        let catalog = Catalog::from_dataset(&dataset, &mask);
        let schema = dataset.schema;
        let (serving, online) = match estimator.freeze_if_supported() {
            Some(frozen) => {
                let frozen = frozen.with_precision(self.precision);
                let index = match self.retrieval {
                    RetrievalStrategy::Exact => None,
                    RetrievalStrategy::Ivf { nprobe } => {
                        let opts = IvfBuildOptions { nprobe, ..IvfBuildOptions::default() };
                        IvfIndex::build(&frozen, &catalog, &opts, self.par)
                    }
                };
                let server = ModelServer::new(ModelSnapshot {
                    schema: schema.clone(),
                    frozen,
                    catalog: Some(catalog),
                    seen,
                    index,
                })?;
                // Online retraining needs the estimator's still-trainable
                // parameters (the warm-start state); without the opt-in
                // the estimator drops here as before.
                let online = base.map(|base| OnlineSeed { est: estimator, base });
                (Serving::Service(server), online)
            }
            None => (Serving::Live { est: estimator, catalog: Some(catalog), seen }, None),
        };
        Ok(Recommender {
            spec,
            schema,
            serving,
            holdout: Some(holdout),
            report: Some(report),
            par: self.par,
            online,
        })
    }
}

/// How a recommender answers scoring requests.
enum Serving {
    /// The hot-swappable serving handle over the frozen snapshot
    /// (GML-FM, FM, TransFM).
    Service(ModelServer),
    /// The trained estimator itself (models without a frozen form),
    /// answering the same request protocol through its own scorer.
    Live {
        /// The trained estimator.
        est: Box<dyn Estimator>,
        /// Serving catalog, when fit from a dataset.
        catalog: Option<Catalog>,
        /// Training-time seen sets, when fit from a dataset.
        seen: Option<SeenItems>,
    },
}

/// The held-out test portion of the fitted split.
enum Holdout {
    Rating(Vec<Instance>),
    TopN(Vec<LooTestCase>),
}

/// What [`EngineBuilder::online`] retains for warm-start retraining: the
/// trained estimator (its parameters *are* the published weights) and
/// the base training instances new interactions accumulate onto.
struct OnlineSeed {
    est: Box<dyn Estimator>,
    base: Vec<Instance>,
}

/// Adapts a trained [`Estimator`] onto the online loop's
/// [`OnlineModel`]: warm-starting is just calling `fit` again — every
/// estimator trains in place from its current parameters.
struct EstimatorModel {
    est: Box<dyn Estimator>,
}

impl OnlineModel for EstimatorModel {
    fn warm_fit(&mut self, train: &[Instance], cfg: &TrainConfig) -> Result<(), OnlineError> {
        if train.is_empty() {
            return Err(OnlineError::Train("empty training set".into()));
        }
        self.est
            .fit(&FitData::instances(train), cfg)
            .map(drop)
            .map_err(|e| OnlineError::Train(e.to_string()))
    }

    fn freeze(&self) -> Result<FrozenModel, OnlineError> {
        self.est
            .freeze_if_supported()
            .ok_or_else(|| OnlineError::Train("model has no frozen serving form".into()))
    }
}

/// A [`ScoringBackend`] over a live estimator, so non-freezable models
/// answer the exact same request protocol as frozen ones. Holds the
/// (`Sync`) estimator rather than its scorer so batches can fan out.
struct LiveBackend<'a>(&'a dyn Estimator);

impl ScoringBackend for LiveBackend<'_> {
    fn score_feats(&self, feats: &[u32]) -> f64 {
        self.0.scorer().score_one(&Instance::new(feats.to_vec(), 0.0))
    }

    fn candidate_scores(
        &self,
        catalog: &Catalog,
        template: &[u32],
        candidates: &[u32],
        _par: Parallelism,
    ) -> Vec<f64> {
        use gmlfm_serve::ItemFeatureSource;
        let instances: Vec<Instance> = candidates
            .iter()
            .map(|&item| Instance::new(catalog.splice(template, catalog.features_of(item)), 0.0))
            .collect();
        self.0.scorer().scores(&instances)
    }
}

/// A trained, servable model: typed request handling, catalog-wide top-n
/// ranking, holdout evaluation and artifact persistence behind one
/// handle. Freezable models are backed by a hot-swappable
/// [`ModelServer`] ([`Recommender::serve`] shares it).
pub struct Recommender {
    spec: ModelSpec,
    schema: Schema,
    serving: Serving,
    holdout: Option<Holdout>,
    report: Option<TrainReport>,
    /// Worker count for batch scoring, `top_n` and holdout evaluation.
    par: Parallelism,
    /// Warm-start state retained by [`EngineBuilder::online`]; taken by
    /// [`Recommender::serve_online`].
    online: Option<OnlineSeed>,
}

impl Recommender {
    pub(crate) fn from_artifact(artifact: Artifact) -> Result<Self, EngineError> {
        let spec = artifact.spec.clone();
        let snapshot = artifact.into_snapshot()?;
        let schema = snapshot.schema.clone();
        Ok(Self {
            spec,
            schema,
            serving: Serving::Service(ModelServer::new(snapshot)?),
            holdout: None,
            report: None,
            par: Parallelism::auto(),
            online: None,
        })
    }

    /// Overrides the serving/eval parallelism (loaded artifacts start at
    /// [`Parallelism::auto`]); `1` forces the serial path.
    pub fn set_threads(&mut self, n: usize) {
        self.par = Parallelism::threads(n);
    }

    /// The serving/eval worker count this recommender uses.
    pub fn threads(&self) -> usize {
        self.par.get()
    }

    /// The spec this recommender was built from (or restored with).
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The one-hot feature schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The serving catalog, when present.
    pub fn catalog(&self) -> Option<&Catalog> {
        match &self.serving {
            Serving::Service(server) => server.catalog(),
            Serving::Live { catalog, .. } => catalog.as_ref(),
        }
    }

    /// The per-user training-time seen sets, when present.
    pub fn seen(&self) -> Option<&SeenItems> {
        match &self.serving {
            Serving::Service(server) => server.seen(),
            Serving::Live { seen, .. } => seen.as_ref(),
        }
    }

    /// The training report, when this handle came out of a fit.
    pub fn report(&self) -> Option<&TrainReport> {
        self.report.as_ref()
    }

    /// The frozen serving model, when the spec supports freezing.
    pub fn frozen(&self) -> Option<&FrozenModel> {
        match &self.serving {
            Serving::Service(server) => Some(server.frozen()),
            Serving::Live { .. } => None,
        }
    }

    /// The IVF retrieval index of the current snapshot, when the
    /// pipeline built one ([`EngineBuilder::retrieval`]) or the loaded
    /// artifact carried one.
    pub fn index(&self) -> Option<&IvfIndex> {
        match &self.serving {
            Serving::Service(server) => server.snapshot().1.index.as_ref(),
            Serving::Live { .. } => None,
        }
    }

    /// The shared, hot-swappable serving handle backing this recommender
    /// (freezable models only).
    ///
    /// The returned [`ModelServer`] is `Clone + Send + Sync`: hand
    /// clones to every request thread. It is the *same* handle this
    /// recommender scores through, so a
    /// [`swap`](ModelServer::swap) through it also hot-reloads what
    /// `self.score*`/`top_n` answer — that is the zero-downtime refresh
    /// path, not a side effect.
    pub fn serve(&self) -> Result<ModelServer, EngineError> {
        match &self.serving {
            Serving::Service(server) => Ok(server.clone()),
            Serving::Live { .. } => {
                Err(EngineError::NotFreezable { model: self.spec.display_name().to_string() })
            }
        }
    }

    /// Serves this recommender over TCP: binds `addr` (port 0 for an
    /// ephemeral port) and answers the typed Score/TopN/Batch protocol
    /// with `gmlfm-net`'s robustness contract — length-prefixed JSON
    /// frames, per-connection deadlines, bounded connection budget with
    /// typed `overloaded` shedding, and graceful drain on
    /// [`NetServer::shutdown`].
    ///
    /// The network server shares the same hot-swappable handle as
    /// [`Recommender::serve`]: a [`ModelServer::swap`] through either
    /// handle hot-reloads what the network answers, generation-stamped
    /// and without mixing generations inside any in-flight reply.
    pub fn serve_net(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: NetServerConfig,
    ) -> Result<NetServer, EngineError> {
        let server = std::sync::Arc::new(self.serve()?);
        NetServer::bind(server, addr, config).map_err(EngineError::Io)
    }

    /// Starts the online learning loop over this recommender's serving
    /// handle: streamed interactions (fed through the returned
    /// [`OnlineServing::handle`]) fold into the live seen overlay
    /// immediately, a background thread warm-starts retraining from the
    /// published weights on the configured cadence, and candidates
    /// publish through an [`gmlfm_online::EvalGate`] pinned to this
    /// recommender's top-n holdout — so the in-process `score*`/`top_n`
    /// wrappers, [`Recommender::serve`] clones and
    /// [`Recommender::serve_net`] transports all hot-reload together.
    ///
    /// Requires a freezable model fit with
    /// [`EngineBuilder::online`]`(true)` and a top-n holdout
    /// ([`SplitPlan::topn`]). Consumes the retained warm-start state:
    /// a second call is [`EngineError::OnlineUnavailable`].
    pub fn serve_online(&mut self, cfg: OnlineConfig) -> Result<OnlineServing, EngineError> {
        let server = self.serve()?;
        let holdout = match &self.holdout {
            Some(Holdout::TopN(cases)) => cases.clone(),
            _ => {
                return Err(EngineError::OnlineUnavailable {
                    reason: "no top-n holdout to gate on (fit with SplitPlan::topn)",
                })
            }
        };
        let seed = self.online.take().ok_or(EngineError::OnlineUnavailable {
            reason: "warm-start state not retained (build with .online(true)) or already launched",
        })?;
        let model = Box::new(EstimatorModel { est: seed.est });
        Ok(OnlineServing::launch(server, model, seed.base, holdout, cfg)?)
    }

    /// Answers a typed [`ScoreRequest`] (the path every `score*`
    /// convenience wrapper routes through).
    pub fn handle_score(&self, req: &ScoreRequest) -> Result<Response<f64>, EngineError> {
        match &self.serving {
            Serving::Service(server) => Ok(server.score(req)?),
            Serving::Live { est, catalog, .. } => {
                let backend = LiveBackend(est.as_ref());
                let value = exec::execute_score(&backend, &self.schema, catalog.as_ref(), req)?;
                Ok(Response { generation: LIVE_GENERATION, value })
            }
        }
    }

    /// Answers a typed [`TopNRequest`]: `(item, score)` pairs, best
    /// first, ties broken by ascending item id. Unlike the
    /// [`Recommender::top_n`] convenience wrapper, the request's own
    /// seen-item exclusion default (exclude) applies.
    pub fn handle_top_n(&self, req: &TopNRequest) -> Result<Response<Vec<(u32, f64)>>, EngineError> {
        match &self.serving {
            Serving::Service(server) => Ok(server.top_n(&self.with_par(req))?),
            Serving::Live { est, catalog, seen } => {
                let backend = LiveBackend(est.as_ref());
                let value = exec::execute_topn(&backend, catalog.as_ref(), seen.as_ref(), req, self.par)?;
                Ok(Response { generation: LIVE_GENERATION, value })
            }
        }
    }

    /// Answers a [`BatchRequest`] against one model snapshot; each
    /// sub-request validates and fails independently. Like the other
    /// wrappers, a batch without its own [`BatchRequest::parallelism`]
    /// fans out across this recommender's configured worker count.
    pub fn handle_batch(&self, req: &BatchRequest) -> Response<Vec<Result<Reply, RequestError>>> {
        let mut req = req.clone();
        req.par = Some(req.par.unwrap_or(self.par));
        match &self.serving {
            Serving::Service(server) => server.batch(&req),
            Serving::Live { est, catalog, seen } => {
                let backend = LiveBackend(est.as_ref());
                let value =
                    exec::execute_batch(&backend, &self.schema, catalog.as_ref(), seen.as_ref(), &req);
                Response { generation: LIVE_GENERATION, value }
            }
        }
    }

    /// Scores one instance. Out-of-range feature indices are a typed
    /// [`EngineError::Request`], never a panic.
    pub fn score(&self, instance: &Instance) -> Result<f64, EngineError> {
        self.score_feats(&instance.feats)
    }

    /// Scores raw active feature indices (validated against the schema).
    pub fn score_feats(&self, feats: &[u32]) -> Result<f64, EngineError> {
        Ok(self.handle_score(&ScoreRequest::Feats(feats.to_vec()))?.value)
    }

    /// Scores a `(user, item)` pair through the catalog.
    pub fn score_pair(&self, user: u32, item: u32) -> Result<f64, EngineError> {
        Ok(self.handle_score(&ScoreRequest::Pair { user, item })?.value)
    }

    /// Ranks the entire item catalogue for `user` and returns the top
    /// `n` `(item, score)` pairs, best first — a thin wrapper over
    /// [`Recommender::handle_top_n`] that ranks every item (no seen-item
    /// exclusion, matching the evaluation protocols). Build a
    /// [`TopNRequest`] for the production default of excluding the
    /// user's training-time items, candidate subsets or explicit
    /// exclusions.
    ///
    /// Retrieval is the sharded bounded-heap path — never a full
    /// catalogue sort — under the deterministic total order documented
    /// on [`TopNRequest`]: score descending, equal scores broken by
    /// ascending item id.
    pub fn top_n(&self, user: u32, n: usize) -> Result<Vec<(u32, f64)>, EngineError> {
        let req = TopNRequest::new(user, n).include_seen().parallelism(self.par);
        Ok(self.handle_top_n(&req)?.value)
    }

    /// Fills a request's parallelism with this recommender's configured
    /// worker count when the request does not pin its own.
    fn with_par(&self, req: &TopNRequest) -> TopNRequest {
        let mut req = req.clone();
        req.par = Some(req.par.unwrap_or(self.par));
        req
    }

    /// RMSE/MAE on the rating holdout this recommender was fit with.
    pub fn evaluate_rating(&self) -> Result<RatingMetrics, EngineError> {
        match &self.holdout {
            Some(Holdout::Rating(test)) => Ok(evaluate_rating(self, test)),
            _ => Err(EngineError::MissingHoldout { expected: "rating" }),
        }
    }

    /// HR@k / NDCG@k on the leave-one-out holdout this recommender was
    /// fit with.
    pub fn evaluate_topn(&self, k: usize) -> Result<TopnMetrics, EngineError> {
        match &self.holdout {
            Some(Holdout::TopN(cases)) => self.topn_metrics(cases, k),
            _ => Err(EngineError::MissingHoldout { expected: "top-n" }),
        }
    }

    /// Leave-one-out metrics through the request path, shared with
    /// [`gmlfm_eval::evaluate_topn_service`] via
    /// [`evaluate_topn_backend`]: each case is a candidate-restricted
    /// ranking request against **one** pinned snapshot, fanned across
    /// the pool one contiguous block of cases per worker and merged in
    /// case order.
    fn topn_metrics(&self, cases: &[LooTestCase], k: usize) -> Result<TopnMetrics, EngineError> {
        if cases.is_empty() {
            // Align with gmlfm_eval's protocols, which reject empty test
            // sets — but as a typed error instead of a panic.
            return Err(EngineError::MissingHoldout { expected: "top-n" });
        }
        let metrics = match &self.serving {
            Serving::Service(server) => {
                let (_, snap) = server.snapshot();
                evaluate_topn_backend(
                    &snap.frozen,
                    snap.catalog.as_ref(),
                    snap.seen.as_ref(),
                    cases,
                    k,
                    self.par,
                )
            }
            Serving::Live { est, catalog, seen } => evaluate_topn_backend(
                &LiveBackend(est.as_ref()),
                catalog.as_ref(),
                seen.as_ref(),
                cases,
                k,
                self.par,
            ),
        };
        metrics.map_err(EngineError::from)
    }

    /// Captures the current frozen state as a versioned [`Artifact`]
    /// (after a hot swap, that is the *swapped-in* snapshot — online
    /// retrains publish straight into what `save` persists). Seen sets
    /// are the snapshot's folded with the server's live overlay, so
    /// interactions fed since the last retrain survive a save → load
    /// round trip instead of silently reappearing in top-n results.
    /// Fails with [`EngineError::NotFreezable`] for models without a
    /// frozen serving form.
    pub fn artifact(&self) -> Result<Artifact, EngineError> {
        match &self.serving {
            Serving::Service(server) => {
                let (_, snap) = server.snapshot();
                let overlay = server.overlay_seen();
                let seen = if overlay.total() == 0 {
                    snap.seen.clone()
                } else {
                    let mut merged = snap.seen.clone().unwrap_or_else(|| SeenItems::new(Vec::new()));
                    merged.merge(&overlay);
                    Some(merged)
                };
                Ok(Artifact::new(
                    self.spec.clone(),
                    &snap.schema,
                    &snap.frozen,
                    snap.catalog.clone(),
                    seen,
                    snap.index.as_ref(),
                ))
            }
            Serving::Live { .. } => {
                Err(EngineError::NotFreezable { model: self.spec.display_name().to_string() })
            }
        }
    }

    /// Saves the artifact as JSON (see [`Recommender::artifact`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        self.artifact()?.save(path)
    }
}

/// Reconstructs per-user seen sets from a rating split's training
/// instances by decoding the user/item one-hot indices through the
/// schema. `None` when the mask hides either id field (no way to
/// attribute interactions).
fn rating_seen(schema: &Schema, mask: &FieldMask, train: &[Instance], n_users: usize) -> Option<SeenItems> {
    let user_field = schema.field_of_kind(FieldKind::User)?;
    let item_field = schema.field_of_kind(FieldKind::Item)?;
    if !mask.is_active(user_field) || !mask.is_active(item_field) {
        return None;
    }
    let active = mask.active_fields();
    let user_slot = active.iter().position(|&f| f == user_field)?;
    let item_slot = active.iter().position(|&f| f == item_field)?;
    let user_off = schema.offset(user_field) as u32;
    let item_off = schema.offset(item_field) as u32;
    let mut per_user = vec![Vec::new(); n_users];
    for inst in train.iter().filter(|i| i.label > 0.0) {
        let (Some(&uf), Some(&itf)) = (inst.feats.get(user_slot), inst.feats.get(item_slot)) else {
            continue;
        };
        if let Some(items) = per_user.get_mut((uf - user_off) as usize) {
            items.push(itf - item_off);
        }
    }
    Some(SeenItems::new(per_user))
}

impl std::fmt::Debug for Recommender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recommender")
            .field("spec", &self.spec)
            .field("frozen", &matches!(self.serving, Serving::Service(_)))
            .field("has_catalog", &self.catalog().is_some())
            .field("has_holdout", &self.holdout.is_some())
            .finish_non_exhaustive()
    }
}

impl Scorer for Recommender {
    /// Batch scoring over trusted, pre-validated instances (the holdout
    /// evaluation path): frozen recommenders fan fixed-size chunks
    /// across the pool against the server's *current* snapshot; public
    /// per-request entry points go through [`Recommender::handle_score`]
    /// instead, which validates.
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        match &self.serving {
            Serving::Service(server) => {
                let (_, snap) = server.snapshot();
                gmlfm_serve::score_chunked_par(
                    &snap.frozen,
                    instances,
                    gmlfm_train::EVAL_CHUNK_SIZE,
                    self.par,
                )
            }
            Serving::Live { est, .. } => est.scorer().scores(instances),
        }
    }
}
