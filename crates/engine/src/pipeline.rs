//! The fluent engine pipeline: dataset → split → spec → train config →
//! [`Recommender`], and artifact load on the serving side.
//!
//! ```
//! use gmlfm_engine::{Engine, ModelSpec, SplitPlan};
//! use gmlfm_data::{generate, DatasetSpec};
//!
//! let dataset = generate(&DatasetSpec::AmazonAuto.config(42).scaled(0.15));
//! let rec = Engine::builder()
//!     .dataset(dataset)
//!     .split(SplitPlan::rating(7))
//!     .spec(ModelSpec::gml_fm_dnn(8, 1))
//!     .fit()
//!     .expect("pipeline");
//! let metrics = rec.evaluate_rating().expect("rating holdout");
//! assert!(metrics.rmse.is_finite());
//! ```

use crate::artifact::{Artifact, Catalog};
use crate::error::EngineError;
use crate::estimator::{Estimator, FitData};
use crate::spec::ModelSpec;
use gmlfm_data::{loo_split, rating_split, Dataset, FieldMask, Instance, LooTestCase, Schema};
use gmlfm_eval::{evaluate_rating, hit_ratio_at, ndcg_at, RatingMetrics, TopnMetrics};
use gmlfm_par::Parallelism;
use gmlfm_serve::FrozenModel;
use gmlfm_train::{Scorer, TrainConfig, TrainReport};
use std::path::Path;

/// How the engine splits a dataset before training.
#[derive(Debug, Clone, Copy)]
pub enum SplitPlan {
    /// The paper's rating protocol: ±1 implicit targets, sampled
    /// negatives, 70/20/10 split (Section 4.3.1).
    Rating {
        /// Sampled negatives per positive (2 in the paper).
        neg_per_pos: usize,
        /// Split seed.
        seed: u64,
    },
    /// The paper's leave-one-out top-n protocol (Section 4.3.2).
    TopN {
        /// Sampled training negatives per positive (2 in the paper).
        neg_per_pos: usize,
        /// Candidate negatives per test case (99 in the paper).
        n_candidates: usize,
        /// Split seed.
        seed: u64,
    },
}

impl SplitPlan {
    /// Rating protocol with the paper's defaults (2 negatives per
    /// positive).
    pub fn rating(seed: u64) -> Self {
        SplitPlan::Rating { neg_per_pos: 2, seed }
    }

    /// Leave-one-out protocol with the paper's defaults (2 training
    /// negatives per positive, 99 candidates).
    pub fn topn(seed: u64) -> Self {
        SplitPlan::TopN { neg_per_pos: 2, n_candidates: 99, seed }
    }
}

impl Default for SplitPlan {
    fn default() -> Self {
        SplitPlan::rating(7)
    }
}

/// Entry points of the unified pipeline.
pub struct Engine;

impl Engine {
    /// Starts the fluent config → train → freeze pipeline.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            dataset: None,
            mask: None,
            split: SplitPlan::default(),
            spec: None,
            train: TrainConfig::default(),
            par: Parallelism::auto(),
        }
    }

    /// Restores a servable [`Recommender`] from an [`Artifact`] file.
    /// Only the frozen matrices are touched — no autograd, no trainers.
    pub fn load(path: impl AsRef<Path>) -> Result<Recommender, EngineError> {
        Recommender::from_artifact(Artifact::load(path)?)
    }

    /// [`Engine::load`] from an in-memory JSON string.
    pub fn load_json(text: &str) -> Result<Recommender, EngineError> {
        Recommender::from_artifact(Artifact::from_json(text)?)
    }
}

/// Fluent builder returned by [`Engine::builder`].
pub struct EngineBuilder {
    dataset: Option<Dataset>,
    mask: Option<FieldMask>,
    split: SplitPlan,
    spec: Option<ModelSpec>,
    train: TrainConfig,
    par: Parallelism,
}

impl EngineBuilder {
    /// The dataset to split, train and build the serving catalog from.
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Restricts training and serving to an attribute subset (defaults
    /// to every field).
    pub fn mask(mut self, mask: FieldMask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// The split protocol (defaults to [`SplitPlan::rating`] with seed 7).
    pub fn split(mut self, split: SplitPlan) -> Self {
        self.split = split;
        self
    }

    /// Which model to construct and train.
    pub fn spec(mut self, spec: ModelSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Training-loop hyper-parameters for the autograd trainers
    /// (hand-derived SGD models carry their own in the spec; the
    /// `hogwild_threads` field opts them into parallel epochs).
    pub fn train_config(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Serving/eval parallelism for the resulting [`Recommender`]:
    /// batch scoring, `top_n` and holdout evaluation partition their
    /// work across this many pool workers. Defaults to
    /// [`Parallelism::auto`] (`GMLFM_THREADS` or the machine's core
    /// count); `threads(1)` is the deterministic serial escape hatch —
    /// though parallel results are bit-identical to serial anyway,
    /// pinned by the `parallel_parity` tests.
    pub fn threads(mut self, n: usize) -> Self {
        self.par = Parallelism::threads(n);
        self
    }

    /// Runs the pipeline: split, construct, train, freeze (when
    /// supported), and wrap into a [`Recommender`] with its serving
    /// catalog and evaluation holdout.
    pub fn fit(self) -> Result<Recommender, EngineError> {
        let dataset = self.dataset.ok_or(EngineError::BuilderIncomplete { field: "dataset" })?;
        let spec = self.spec.ok_or(EngineError::BuilderIncomplete { field: "spec" })?;
        let mask = self.mask.unwrap_or_else(|| FieldMask::all(&dataset.schema));
        let mut estimator = spec.build(&dataset.schema, &mask);
        let (report, holdout) = match self.split {
            SplitPlan::Rating { neg_per_pos, seed } => {
                if !spec.supports_rating() {
                    return Err(EngineError::UnsupportedTask {
                        model: spec.display_name().to_string(),
                        task: "rating",
                    });
                }
                let split = rating_split(&dataset, &mask, neg_per_pos, seed);
                let report = estimator.fit(&FitData::rating(&split), &self.train)?;
                (report, Holdout::Rating(split.test))
            }
            SplitPlan::TopN { neg_per_pos, n_candidates, seed } => {
                if !spec.supports_topn() {
                    return Err(EngineError::UnsupportedTask {
                        model: spec.display_name().to_string(),
                        task: "top-n",
                    });
                }
                let split = loo_split(&dataset, &mask, neg_per_pos, n_candidates, seed);
                let report = estimator.fit(&FitData::topn(&split), &self.train)?;
                (report, Holdout::TopN(split.test))
            }
        };
        let catalog = Catalog::from_dataset(&dataset, &mask);
        let serving = match estimator.freeze_if_supported() {
            Some(frozen) => Serving::Frozen(frozen),
            None => Serving::Live(estimator),
        };
        Ok(Recommender {
            spec,
            schema: dataset.schema,
            serving,
            catalog: Some(catalog),
            holdout: Some(holdout),
            report: Some(report),
            par: self.par,
        })
    }
}

/// How a recommender answers scoring requests.
enum Serving {
    /// Tape-free frozen matrices (GML-FM, FM, TransFM).
    Frozen(FrozenModel),
    /// The trained estimator itself (models without a frozen form).
    Live(Box<dyn Estimator>),
}

/// The held-out test portion of the fitted split.
enum Holdout {
    Rating(Vec<Instance>),
    TopN(Vec<LooTestCase>),
}

/// A trained, servable model: scoring, catalog-wide top-n ranking,
/// holdout evaluation and artifact persistence behind one handle.
pub struct Recommender {
    spec: ModelSpec,
    schema: Schema,
    serving: Serving,
    catalog: Option<Catalog>,
    holdout: Option<Holdout>,
    report: Option<TrainReport>,
    /// Worker count for batch scoring, `top_n` and holdout evaluation.
    par: Parallelism,
}

impl Recommender {
    pub(crate) fn from_artifact(artifact: Artifact) -> Result<Self, EngineError> {
        Ok(Self {
            spec: artifact.spec,
            schema: artifact.schema.into_schema()?,
            serving: Serving::Frozen(artifact.frozen.into_frozen()?),
            catalog: artifact.catalog,
            holdout: None,
            report: None,
            par: Parallelism::auto(),
        })
    }

    /// Overrides the serving/eval parallelism (loaded artifacts start at
    /// [`Parallelism::auto`]); `1` forces the serial path.
    pub fn set_threads(&mut self, n: usize) {
        self.par = Parallelism::threads(n);
    }

    /// The serving/eval worker count this recommender uses.
    pub fn threads(&self) -> usize {
        self.par.get()
    }

    /// The spec this recommender was built from (or restored with).
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The one-hot feature schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The serving catalog, when present.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog.as_ref()
    }

    /// The training report, when this handle came out of a fit.
    pub fn report(&self) -> Option<&TrainReport> {
        self.report.as_ref()
    }

    /// The frozen serving model, when the spec supports freezing.
    pub fn frozen(&self) -> Option<&FrozenModel> {
        match &self.serving {
            Serving::Frozen(f) => Some(f),
            Serving::Live(_) => None,
        }
    }

    /// Scores one instance.
    pub fn score(&self, instance: &Instance) -> f64 {
        self.score_feats(&instance.feats)
    }

    /// Scores raw active feature indices.
    pub fn score_feats(&self, feats: &[u32]) -> f64 {
        match &self.serving {
            Serving::Frozen(frozen) => frozen.predict_feats(feats),
            Serving::Live(est) => est.scorer().score_one(&Instance::new(feats.to_vec(), 0.0)),
        }
    }

    /// Scores a `(user, item)` pair through the catalog.
    pub fn score_pair(&self, user: u32, item: u32) -> Result<f64, EngineError> {
        let catalog = self.catalog.as_ref().ok_or(EngineError::MissingCatalog)?;
        Ok(self.score_feats(&checked_feats(catalog, user, item)?))
    }

    /// Ranks the entire item catalogue for `user` and returns the top
    /// `n` `(item, score)` pairs, best first. Frozen models rank through
    /// the [`gmlfm_serve::TopNRanker`] item-delta path, partitioning the
    /// catalogue across the builder's [`EngineBuilder::threads`] workers
    /// (one ranker per worker, scores merged in item order — identical
    /// to serial); live models score every candidate instance.
    pub fn top_n(&self, user: u32, n: usize) -> Result<Vec<(u32, f64)>, EngineError> {
        let catalog = self.catalog.as_ref().ok_or(EngineError::MissingCatalog)?;
        let template = catalog
            .template(user)
            .ok_or(EngineError::UnknownUser { user, n_users: catalog.n_users() })?;
        let n_items = catalog.n_items();
        let mut scored: Vec<(u32, f64)>;
        match &self.serving {
            Serving::Frozen(frozen) => {
                let item_slots = catalog.item_slots();
                scored = gmlfm_par::par_blocks(self.par, n_items, |range| {
                    // One ranker per worker block: the context partial
                    // sums are computed once and reused for every item
                    // in the block.
                    let mut ranker = frozen.ranker(template, item_slots);
                    range
                        .map(|item| {
                            let item = item as u32;
                            let group =
                                catalog.item_features(item).expect("item enumerated from the catalog");
                            (item, ranker.score(group))
                        })
                        .collect()
                });
            }
            Serving::Live(est) => {
                let instances: Vec<Instance> = (0..n_items as u32)
                    .map(|item| Instance::new(catalog.feats(user, item).expect("user checked above"), 0.0))
                    .collect();
                let scores = est.scorer().scores(&instances);
                scored = (0..n_items as u32).zip(scores).collect();
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(n);
        Ok(scored)
    }

    /// RMSE/MAE on the rating holdout this recommender was fit with.
    pub fn evaluate_rating(&self) -> Result<RatingMetrics, EngineError> {
        match &self.holdout {
            Some(Holdout::Rating(test)) => Ok(evaluate_rating(self, test)),
            _ => Err(EngineError::MissingHoldout { expected: "rating" }),
        }
    }

    /// HR@k / NDCG@k on the leave-one-out holdout this recommender was
    /// fit with.
    pub fn evaluate_topn(&self, k: usize) -> Result<TopnMetrics, EngineError> {
        match &self.holdout {
            Some(Holdout::TopN(cases)) => self.topn_metrics(cases, k),
            _ => Err(EngineError::MissingHoldout { expected: "top-n" }),
        }
    }

    fn topn_metrics(&self, cases: &[LooTestCase], k: usize) -> Result<TopnMetrics, EngineError> {
        let catalog = self.catalog.as_ref().ok_or(EngineError::MissingCatalog)?;
        if cases.is_empty() {
            // Align with gmlfm_eval's protocols, which reject empty test
            // sets — but as a typed error instead of a panic.
            return Err(EngineError::MissingHoldout { expected: "top-n" });
        }
        let per_user: Vec<Result<(f64, f64), EngineError>> = match &self.serving {
            // Frozen: fan the test cases out across the pool, one
            // ranker + scratch per case, merged in case order (identical
            // per-user vectors at every thread count).
            Serving::Frozen(frozen) => gmlfm_par::par_blocks(self.par, cases.len(), |range| {
                let mut out = Vec::with_capacity(range.len());
                let mut scores: Vec<f64> = Vec::new();
                for case in &cases[range] {
                    out.push(frozen_case_metrics(frozen, catalog, case, k, &mut scores));
                }
                out
            }),
            Serving::Live(est) => cases
                .iter()
                .map(|case| {
                    let mut instances = Vec::with_capacity(1 + case.negatives.len());
                    for &item in std::iter::once(&case.pos_item).chain(&case.negatives) {
                        instances.push(Instance::new(checked_feats(catalog, case.user, item)?, 0.0));
                    }
                    let scores = est.scorer().scores(&instances);
                    Ok((hit_ratio_at(&scores, k), ndcg_at(&scores, k)))
                })
                .collect(),
        };
        let mut per_user_hr = Vec::with_capacity(cases.len());
        let mut per_user_ndcg = Vec::with_capacity(cases.len());
        for result in per_user {
            let (hr, ndcg) = result?;
            per_user_hr.push(hr);
            per_user_ndcg.push(ndcg);
        }
        let hr = per_user_hr.iter().sum::<f64>() / per_user_hr.len() as f64;
        let ndcg = per_user_ndcg.iter().sum::<f64>() / per_user_ndcg.len() as f64;
        Ok(TopnMetrics { hr, ndcg, per_user_hr, per_user_ndcg })
    }

    /// Captures the current frozen state as a versioned [`Artifact`].
    /// Fails with [`EngineError::NotFreezable`] for models without a
    /// frozen serving form.
    pub fn artifact(&self) -> Result<Artifact, EngineError> {
        let frozen = match &self.serving {
            Serving::Frozen(frozen) => frozen.clone(),
            Serving::Live(est) => est
                .freeze_if_supported()
                .ok_or_else(|| EngineError::NotFreezable { model: self.spec.display_name().to_string() })?,
        };
        Ok(Artifact::new(self.spec.clone(), &self.schema, &frozen, self.catalog.clone()))
    }

    /// Saves the artifact as JSON (see [`Recommender::artifact`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        self.artifact()?.save(path)
    }
}

/// One leave-one-out case through the frozen ranker: context partials
/// once, item delta per candidate, reusing the caller's score buffer.
fn frozen_case_metrics(
    frozen: &FrozenModel,
    catalog: &Catalog,
    case: &LooTestCase,
    k: usize,
    scores: &mut Vec<f64>,
) -> Result<(f64, f64), EngineError> {
    scores.clear();
    let template = checked_feats(catalog, case.user, case.pos_item)?;
    let mut ranker = frozen.ranker(&template, catalog.item_slots());
    for &item in std::iter::once(&case.pos_item).chain(&case.negatives) {
        let group = catalog
            .item_features(item)
            .ok_or(EngineError::UnknownItem { item, n_items: catalog.n_items() })?;
        scores.push(ranker.score(group));
    }
    Ok((hit_ratio_at(scores, k), ndcg_at(scores, k)))
}

/// [`Catalog::feats`] with the user/item bound reported distinctly, so
/// an out-of-range item is never misdiagnosed as an unknown user.
fn checked_feats(catalog: &Catalog, user: u32, item: u32) -> Result<Vec<u32>, EngineError> {
    let template = catalog
        .template(user)
        .ok_or(EngineError::UnknownUser { user, n_users: catalog.n_users() })?;
    let group = catalog
        .item_features(item)
        .ok_or(EngineError::UnknownItem { item, n_items: catalog.n_items() })?;
    let mut out = template.to_vec();
    for (&slot, &f) in catalog.item_slots().iter().zip(group) {
        out[slot] = f;
    }
    Ok(out)
}

impl std::fmt::Debug for Recommender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recommender")
            .field("spec", &self.spec)
            .field("frozen", &matches!(self.serving, Serving::Frozen(_)))
            .field("has_catalog", &self.catalog.is_some())
            .field("has_holdout", &self.holdout.is_some())
            .finish_non_exhaustive()
    }
}

impl Scorer for Recommender {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        match &self.serving {
            Serving::Frozen(frozen) => {
                gmlfm_serve::score_chunked_par(frozen, instances, gmlfm_train::EVAL_CHUNK_SIZE, self.par)
            }
            Serving::Live(est) => est.scorer().scores(instances),
        }
    }
}
