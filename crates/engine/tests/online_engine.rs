//! Engine-level tests of the online loop wiring: `serve_online` gates on
//! the builder opt-in and the top-n holdout, fed interactions are
//! excluded from the recommender's own read path before any retrain, a
//! published round hot-reloads every handle, and — the checkpointing
//! contract — `artifact`/`save` persist the *current* snapshot including
//! the live overlay, so fed interactions survive a save → load round
//! trip instead of silently reappearing in top-n results.

use gmlfm_data::{generate, DatasetSpec};
use gmlfm_engine::{
    Engine, EngineError, Interaction, ModelSpec, OnlineConfig, Recommender, RoundOutcome, SplitPlan,
    TopNRequest,
};
use gmlfm_models::fm::FmConfig;
use gmlfm_train::TrainConfig;

fn spec() -> ModelSpec {
    ModelSpec::fm(FmConfig { k: 4, epochs: 2, ..FmConfig::default() })
}

/// Top-n item ids under the production default: seen items excluded.
fn topn_items(rec: &Recommender, user: u32, n: usize) -> Vec<u32> {
    rec.handle_top_n(&TopNRequest::new(user, n))
        .expect("ranks")
        .value
        .into_iter()
        .map(|(item, _)| item)
        .collect()
}

fn online_cfg() -> OnlineConfig {
    OnlineConfig {
        background: false,
        min_events: 1,
        gate_tolerance: 1.0,
        negatives_per_event: 1,
        train: TrainConfig { epochs: 1, ..TrainConfig::default() },
        ..OnlineConfig::default()
    }
}

#[test]
fn serve_online_requires_the_builder_opt_in_and_a_topn_holdout() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(81).scaled(0.15));

    // Without `.online(true)` the warm-start state was not retained.
    let mut rec = Engine::builder()
        .dataset(dataset.clone())
        .split(SplitPlan::topn(5))
        .spec(spec())
        .fit()
        .expect("fits");
    match rec.serve_online(online_cfg()) {
        Err(EngineError::OnlineUnavailable { reason }) => {
            assert!(reason.contains("online(true)"), "reason names the fix: {reason}")
        }
        other => panic!("expected OnlineUnavailable, got {:?}", other.map(|_| ())),
    }

    // With the opt-in but a rating split there is no holdout to gate on.
    let mut rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::rating(5))
        .spec(spec())
        .online(true)
        .fit()
        .expect("fits");
    match rec.serve_online(online_cfg()) {
        Err(EngineError::OnlineUnavailable { reason }) => {
            assert!(reason.contains("top-n holdout"), "reason names the fix: {reason}")
        }
        other => panic!("expected OnlineUnavailable, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn online_loop_publishes_and_checkpoints_persist_the_overlay() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(82).scaled(0.15));
    let mut rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(5))
        .spec(spec())
        .online(true)
        .fit()
        .expect("fits");
    let serving = rec.serve_online(online_cfg()).expect("opt-in + top-n holdout");

    // Launching consumed the warm-start state: a second loop would race
    // the first for the same serving handle.
    assert!(matches!(rec.serve_online(online_cfg()), Err(EngineError::OnlineUnavailable { .. })));

    // Feed the user's current top recommendation back as an interaction
    // (ranked with the production default of excluding seen items, so
    // the item is genuinely recommendable right now).
    let user = 0u32;
    let item = topn_items(&rec, user, 1)[0];
    let ack = serving.handle().feed(&Interaction::new(user, item)).expect("feed validates");
    assert!(ack.value.accepted);

    // The recommender's own read path shares the serving handle: the fed
    // item is excluded immediately, before any retrain.
    assert!(
        !topn_items(&rec, user, 10).contains(&item),
        "fed item must leave the recommender's own top-n immediately"
    );

    // Checkpointing BEFORE the retrain: the artifact folds the live
    // overlay into its seen sets, so the exclusion survives load.
    let reloaded = Engine::load_json(&rec.artifact().expect("freezable").to_json()).expect("round trip");
    assert!(
        reloaded.seen().expect("artifact keeps seen sets").contains(user, item),
        "overlay interaction must be persisted by save"
    );
    assert!(
        !topn_items(&reloaded, user, 10).contains(&item),
        "exclusion survives the save → load round trip"
    );

    // One synchronous round: warm-fit over base + the event, gate, swap.
    match serving.trainer().run_once() {
        RoundOutcome::Published { generation, report } => {
            assert_eq!(generation, 2);
            assert!(report.passed);
        }
        other => panic!("expected a published round, got {other:?}"),
    }

    // The hot swap reloads the recommender in place...
    assert!(!topn_items(&rec, user, 10).contains(&item), "exclusion survives the published swap");
    // ...and `artifact` now captures the *swapped-in* snapshot, whose
    // own seen sets carry the folded interaction.
    let reloaded =
        Engine::load_json(&rec.artifact().expect("freezable").to_json()).expect("round trip after publish");
    assert!(reloaded.seen().expect("seen sets").contains(user, item));

    let status = serving.shutdown();
    assert_eq!(status.published, 1);
    assert_eq!(status.rejected, 0);
}
