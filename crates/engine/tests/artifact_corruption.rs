//! Crash-safety and corruption tests for artifact persistence:
//! `Artifact::save` must leave either the old file or the new one
//! (temp-file + fsync + atomic rename, never a torn write), and loading
//! truncated or bit-flipped artifact bytes must yield a typed
//! [`EngineError`] — never a panic, never a silently wrong model.

use gmlfm_data::{generate, DatasetSpec};
use gmlfm_engine::{Engine, EngineError, ModelSpec, SplitPlan};
use gmlfm_train::TrainConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One trained v3 artifact's JSON, shared across every property case.
fn artifact_json() -> &'static str {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(91).scaled(0.15));
        let rec = Engine::builder()
            .dataset(dataset)
            .split(SplitPlan::topn(5))
            .spec(ModelSpec::gml_fm_md(4))
            .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
            .fit()
            .expect("GML-FM fits the top-n task");
        rec.artifact().expect("freezable").to_json()
    })
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gmlfm_artifact_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn save_leaves_no_temp_files_and_loads_back() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(92).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(5))
        .spec(ModelSpec::gml_fm_md(4))
        .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
        .fit()
        .expect("fit");
    let artifact = rec.artifact().expect("freezable");

    let dir = temp_dir("save");
    let path = dir.join("nested").join("model.json");
    artifact.save(&path).expect("atomic save");
    // Overwriting an existing artifact goes through the same rename.
    artifact.save(&path).expect("atomic overwrite");

    let reloaded = Engine::load(&path).expect("load what save wrote");
    assert_eq!(
        rec.score_pair(0, 0).expect("score").to_bits(),
        reloaded.score_pair(0, 0).expect("score").to_bits(),
        "saved artifact serves identically"
    );

    // The atomic-rename protocol must not leak its temp files.
    let leftovers: Vec<_> = std::fs::read_dir(path.parent().expect("parent"))
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name != "model.json")
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn save_into_an_unwritable_location_is_a_typed_error() {
    // A path whose parent is a *file* cannot be created.
    let dir = temp_dir("unwritable");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").expect("blocker file");
    let artifact_text = artifact_json();
    let artifact = gmlfm_engine::Artifact::from_json(artifact_text).expect("valid artifact");
    let err = artifact.save(blocker.join("model.json")).expect_err("parent is a file");
    assert!(matches!(err, EngineError::Io(_)), "typed I/O error, got {err:?}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the artifact at any byte loads as a typed error —
    /// the empty prefix included — and never panics.
    #[test]
    fn truncated_artifacts_load_as_typed_errors(frac in 0.0f64..1.0) {
        let json = artifact_json();
        let cut = ((json.len() as f64 * frac) as usize).min(json.len() - 1);
        // Cut on a char boundary (the artifact is ASCII JSON, but stay
        // honest about it).
        let mut cut = cut;
        while !json.is_char_boundary(cut) {
            cut -= 1;
        }
        let err = Engine::load_json(&json[..cut]).expect_err("truncated artifact must not load");
        prop_assert!(
            matches!(err, EngineError::Json(_) | EngineError::BadArtifact(_)),
            "typed parse/shape error, got {:?}", err
        );
    }

    /// Flipping a bit anywhere in the byte stream either still parses
    /// to a *valid* artifact (a digit changed inside a number, say) or
    /// fails with a typed error. It never panics — and a flip that
    /// lands in the version field can only produce the typed
    /// unsupported-version error, not a misdecoded body.
    #[test]
    fn bit_flipped_artifacts_never_panic(pos_frac in 0.0f64..1.0, bit in 0u32..8) {
        let json = artifact_json();
        let mut bytes = json.as_bytes().to_vec();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        match String::from_utf8(bytes) {
            // Not UTF-8 any more: the read layer reports it typed
            // before parsing begins (exercised via the raw fs path).
            Err(_) => {}
            Ok(corrupt) => {
                // Any outcome but a panic is in-contract; an Ok must
                // still be a coherent, servable artifact.
                match Engine::load_json(&corrupt) {
                    Ok(rec) => {
                        let scored = rec.score_pair(0, 0);
                        prop_assert!(
                            scored.is_ok() || scored.is_err(),
                            "served or typed-failed, never panicked"
                        );
                    }
                    Err(e) => {
                        let text = e.to_string();
                        prop_assert!(!text.is_empty(), "typed error renders a message");
                    }
                }
            }
        }
    }

    /// The same bit-flip through the *file* path: `load` on corrupt
    /// bytes (including invalid UTF-8) is a typed error or a valid
    /// artifact, never a panic.
    #[test]
    fn bit_flipped_files_load_typed(pos_frac in 0.0f64..1.0, bit in 0u32..8, case in 0u64..1000) {
        let json = artifact_json();
        let mut bytes = json.as_bytes().to_vec();
        let pos = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;

        let dir = temp_dir("bitflip");
        let path = dir.join(format!("corrupt_{case}.json"));
        std::fs::write(&path, &bytes).expect("write corrupt bytes");
        let result = gmlfm_engine::Artifact::load(&path);
        std::fs::remove_file(&path).expect("cleanup");
        if let Err(e) = result {
            prop_assert!(
                matches!(
                    e,
                    EngineError::Io(_)
                        | EngineError::Json(_)
                        | EngineError::BadArtifact(_)
                        | EngineError::UnsupportedVersion { .. }
                ),
                "typed load failure, got {:?}", e
            );
        }
    }
}
