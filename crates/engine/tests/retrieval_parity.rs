//! Property tests pinning sharded bounded-heap top-N retrieval
//! **item-for-item identical** — scores bitwise, tie order included — to
//! the full-sort reference, across all 10 freezable [`ModelSpec`]
//! variants, shard counts {1, 3, 8}, thread counts {1, 2, 5} and
//! `n ∈ {1, 5, catalog_size, catalog_size + 10}`.
//!
//! The reference is the pre-retrieval-redesign path, re-implemented
//! here: score every candidate with one ranker, stable-sort the full
//! vector under the shared total order ([`gmlfm_serve::rank_cmp`]:
//! score desc, item id asc), truncate. The fast path must reproduce it
//! exactly — no approximation budget — both when called directly
//! ([`gmlfm_serve::sharded_top_n`]) and through the serving request
//! path (`ModelServer::top_n`).

use gmlfm_core::{Distance, GmlFmConfig};
use gmlfm_data::{generate, DatasetSpec, FieldMask};
use gmlfm_engine::ModelSpec;
use gmlfm_models::fm::FmConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_par::Parallelism;
use gmlfm_serve::{rank_cmp, sharded_top_n, FrozenModel};
use gmlfm_service::{Catalog, ModelServer, ModelSnapshot, TopNRequest};
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const THREAD_COUNTS: [usize; 3] = [1, 2, 5];

/// Every spec whose estimator has a frozen serving form, covering all
/// transform/distance/weight corners of GML-FM plus FM and TransFM.
fn freezable_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::gml_fm_md(6),
        ModelSpec::gml_fm(GmlFmConfig::mahalanobis(6).without_weight()),
        ModelSpec::gml_fm(GmlFmConfig::euclidean_plain(6)),
        ModelSpec::gml_fm_dnn(6, 0),
        ModelSpec::gml_fm_dnn(6, 2),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Manhattan)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Chebyshev)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Cosine)),
        ModelSpec::fm(FmConfig { k: 6, epochs: 1, ..FmConfig::default() }),
        ModelSpec::trans_fm(TransFmConfig { k: 6, seed: 29 }),
    ]
}

struct Fixture {
    catalog: Catalog,
    /// `(display name, frozen model, server over the same snapshot)` per
    /// freezable spec.
    frozen: Vec<(&'static str, FrozenModel, ModelServer)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(97).scaled(0.15));
        let mask = FieldMask::all(&dataset.schema);
        let catalog = Catalog::from_dataset(&dataset, &mask);
        // Untrained estimators are enough: retrieval parity is
        // independent of the parameter values, and freezing at init
        // keeps the fixture fast.
        let frozen = freezable_specs()
            .into_iter()
            .map(|spec| {
                let name = spec.display_name();
                let estimator = spec.build(&dataset.schema, &mask);
                let frozen = estimator.freeze_if_supported().expect("freezable spec");
                let server = ModelServer::new(ModelSnapshot {
                    schema: dataset.schema.clone(),
                    frozen: frozen.clone(),
                    catalog: Some(catalog.clone()),
                    seen: None,
                    index: None,
                })
                .expect("consistent snapshot");
                (name, frozen, server)
            })
            .collect();
        Fixture { catalog, frozen }
    })
}

/// The full-sort reference: one ranker over all candidates, stable sort
/// under the shared total order, truncate.
fn reference_top_n(model: &FrozenModel, catalog: &Catalog, user: u32, n: usize) -> Vec<(u32, f64)> {
    let template = catalog.template(user).expect("user in catalog");
    let mut ranker = model.ranker(template, catalog.item_slots());
    let mut scored: Vec<(u32, f64)> = (0..catalog.n_items() as u32)
        .map(|item| (item, ranker.score(catalog.item_features(item).expect("item in catalog"))))
        .collect();
    scored.sort_by(rank_cmp);
    scored.truncate(n);
    scored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Direct sharded retrieval equals the full sort at every
    /// (shard count × thread count × n) combination.
    #[test]
    fn sharded_heap_matches_full_sort(variant in 0usize..10, user in 0u32..200, n_kind in 0usize..4) {
        let f = fixture();
        let (name, model, _) = &f.frozen[variant];
        let user = user % f.catalog.n_users() as u32;
        let catalog_size = f.catalog.n_items();
        let n = [1, 5, catalog_size, catalog_size + 10][n_kind];
        let reference = reference_top_n(model, &f.catalog, user, n);
        let candidates: Vec<u32> = (0..catalog_size as u32).collect();
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let got = sharded_top_n(
                    &candidates,
                    n,
                    NonZeroUsize::new(shards).expect("non-zero"),
                    Parallelism::threads(threads),
                    || model.ranker(f.catalog.template(user).expect("user"), f.catalog.item_slots()),
                    |ranker, item| ranker.score(f.catalog.item_features(item).expect("item")),
                );
                prop_assert_eq!(got.len(), reference.len(), "{} shards={} threads={}", name, shards, threads);
                for (g, r) in got.iter().zip(&reference) {
                    prop_assert_eq!(g.0, r.0, "{} item order drifted (shards={}, threads={}, n={})", name, shards, threads, n);
                    prop_assert_eq!(g.1.to_bits(), r.1.to_bits(), "{} score drifted (shards={}, threads={}, n={})", name, shards, threads, n);
                }
            }
        }
    }

    /// The serving request path — default sharding = the request's
    /// worker count — equals the same reference.
    #[test]
    fn request_path_matches_full_sort(variant in 0usize..10, user in 0u32..200, n_kind in 0usize..4) {
        let f = fixture();
        let (name, model, server) = &f.frozen[variant];
        let user = user % f.catalog.n_users() as u32;
        let catalog_size = f.catalog.n_items();
        let n = [1, 5, catalog_size, catalog_size + 10][n_kind];
        let reference = reference_top_n(model, &f.catalog, user, n);
        for threads in THREAD_COUNTS {
            let req = TopNRequest::new(user, n).include_seen().parallelism(Parallelism::threads(threads));
            let got = server.top_n(&req).expect("valid request").value;
            prop_assert_eq!(&got, &reference, "{} request path drifted (threads={}, n={})", name, threads, n);
        }
    }
}

/// Equal-score candidates must rank by ascending item id on both paths:
/// a model with zero interaction weights scores every item identically,
/// so the whole ranking is decided by the tie contract.
#[test]
fn exact_ties_rank_by_item_id_on_both_paths() {
    use gmlfm_serve::SecondOrder;
    use gmlfm_tensor::Matrix;
    let n_items = 57usize;
    let dim = 1 + n_items;
    let frozen = FrozenModel::from_parts(0.5, vec![0.0; dim], Matrix::zeros(dim, 4), SecondOrder::Dot);
    let catalog =
        Catalog::new(vec![1], vec![vec![0u32, 1]], (0..n_items as u32).map(|i| vec![1 + i]).collect());
    let reference = reference_top_n(&frozen, &catalog, 0, 10);
    let expected: Vec<(u32, f64)> = (0..10u32).map(|i| (i, 0.5)).collect();
    assert_eq!(reference, expected, "full sort ranks ties by ascending item id");
    let candidates: Vec<u32> = (0..n_items as u32).collect();
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let got = sharded_top_n(
                &candidates,
                10,
                NonZeroUsize::new(shards).expect("non-zero"),
                Parallelism::threads(threads),
                || frozen.ranker(catalog.template(0).expect("user"), catalog.item_slots()),
                |ranker, item| ranker.score(catalog.item_features(item).expect("item")),
            );
            assert_eq!(got, expected, "shards={shards} threads={threads}");
        }
    }
}
