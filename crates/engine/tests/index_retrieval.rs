//! The IVF retrieval index's four pinned properties:
//!
//! 1. [`RetrievalStrategy::Exact`] stays **bitwise identical** to the
//!    sharded bounded-heap path of the pre-index design, across every
//!    freezable [`ModelSpec`] variant and thread counts {1, 2, 5} —
//!    with an index installed in the snapshot, pinning `Exact` must
//!    change nothing.
//! 2. IVF with `nprobe = n_clusters` is **item-for-item** (scores
//!    bitwise, tie order included) the exact result: the index only
//!    narrows the candidate set, never rescores, so probing everything
//!    is the exhaustive scan.
//! 3. Measured recall@10 at the default `nprobe` knob is ≥ 0.95 on a
//!    seeded 10k-item catalogue, and every returned score is bitwise
//!    the true model score.
//! 4. Artifacts: the index round-trips through format v3 (cluster
//!    means, radii, assignments and knobs all bit-preserved), and v2
//!    artifacts — which predate the `index` field — still load, with
//!    no index and exact serving.

use gmlfm_core::{Distance, GmlFmConfig};
use gmlfm_data::{generate, generate_scale, DatasetSpec, FieldKind, FieldMask, ScaleConfig};
use gmlfm_engine::{Engine, ModelSpec, SplitPlan, TopNRequest};
use gmlfm_models::fm::FmConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_par::Parallelism;
use gmlfm_serve::{rank_cmp, FrozenModel, IvfBuildOptions, IvfIndex, Precision, RetrievalStrategy};
use gmlfm_service::{Catalog, IndexedModel, ModelServer, ModelSnapshot, ScoringBackend};
use gmlfm_train::TrainConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

const THREAD_COUNTS: [usize; 3] = [1, 2, 5];

/// Every spec whose estimator has a frozen serving form, covering all
/// transform/distance/weight corners of GML-FM plus FM and TransFM.
/// Only the squared-Euclidean metric variants get an index; the rest
/// pin the exact fallback.
fn freezable_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::gml_fm_md(6),
        ModelSpec::gml_fm(GmlFmConfig::mahalanobis(6).without_weight()),
        ModelSpec::gml_fm(GmlFmConfig::euclidean_plain(6)),
        ModelSpec::gml_fm_dnn(6, 0),
        ModelSpec::gml_fm_dnn(6, 2),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Manhattan)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Chebyshev)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Cosine)),
        ModelSpec::fm(FmConfig { k: 6, epochs: 1, ..FmConfig::default() }),
        ModelSpec::trans_fm(TransFmConfig { k: 6, seed: 29 }),
    ]
}

struct Variant {
    name: &'static str,
    frozen: FrozenModel,
    /// Index over the fixture catalogue, `None` for models without the
    /// metric linearisation. `min_candidates` is lowered so the indexed
    /// path engages on the small fixture.
    index: Option<IvfIndex>,
    /// Server whose snapshot carries the index (when one exists) — the
    /// post-index serving configuration.
    indexed: ModelServer,
    /// Index-less server — exactly the pre-index (PR 5) serving path.
    plain: ModelServer,
}

struct Fixture {
    catalog: Catalog,
    variants: Vec<Variant>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(61).scaled(0.15));
        let mask = FieldMask::all(&dataset.schema);
        let catalog = Catalog::from_dataset(&dataset, &mask);
        // Untrained estimators are enough: retrieval parity is
        // independent of the parameter values.
        let variants = freezable_specs()
            .into_iter()
            .map(|spec| {
                let name = spec.display_name();
                let estimator = spec.build(&dataset.schema, &mask);
                let frozen = estimator.freeze_if_supported().expect("freezable spec");
                let opts = IvfBuildOptions { min_candidates: 1, ..IvfBuildOptions::default() };
                let index = IvfIndex::build(&frozen, &catalog, &opts, Parallelism::auto());
                let snapshot = |index: Option<IvfIndex>| ModelSnapshot {
                    schema: dataset.schema.clone(),
                    frozen: frozen.clone(),
                    catalog: Some(catalog.clone()),
                    seen: None,
                    index,
                };
                let indexed = ModelServer::new(snapshot(index.clone())).expect("consistent snapshot");
                let plain = ModelServer::new(snapshot(None)).expect("consistent snapshot");
                Variant { name, frozen, index, indexed, plain }
            })
            .collect();
        Fixture { catalog, variants }
    })
}

/// The exact reference: one ranker over the whole catalogue, stable
/// sort under the shared total order, truncate.
fn reference_top_n(model: &FrozenModel, catalog: &Catalog, user: u32, n: usize) -> Vec<(u32, f64)> {
    let template = catalog.template(user).expect("user in catalog");
    let mut ranker = model.ranker(template, catalog.item_slots());
    let mut scored: Vec<(u32, f64)> = (0..catalog.n_items() as u32)
        .map(|item| (item, ranker.score(catalog.item_features(item).expect("item in catalog"))))
        .collect();
    scored.sort_by(rank_cmp);
    scored.truncate(n);
    scored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: pinning `Exact` — even on a snapshot that carries an
    /// index — answers bitwise identically to the index-less sharded
    /// heap path, at every thread count.
    #[test]
    fn exact_strategy_is_bit_identical_to_sharded_heap_path(
        variant in 0usize..10,
        user in 0u32..200,
        n_kind in 0usize..3,
    ) {
        let f = fixture();
        let v = &f.variants[variant];
        let user = user % f.catalog.n_users() as u32;
        let n = [1, 10, f.catalog.n_items()][n_kind];
        let reference = reference_top_n(&v.frozen, &f.catalog, user, n);
        for threads in THREAD_COUNTS {
            let base = TopNRequest::new(user, n)
                .include_seen()
                .parallelism(Parallelism::threads(threads));
            // The pre-index serving path, unchanged.
            let plain = v.plain.top_n(&base.clone()).expect("valid request").value;
            prop_assert_eq!(&plain, &reference, "{} plain path drifted (threads={})", v.name, threads);
            // Exact pinned on the indexed snapshot: same bits.
            let exact = v.indexed
                .top_n(&base.strategy(RetrievalStrategy::Exact))
                .expect("valid request")
                .value;
            prop_assert_eq!(&exact, &reference, "{} Exact on indexed snapshot drifted (threads={})", v.name, threads);
        }
    }

    /// Property 2: probing every cluster is the exhaustive scan —
    /// item-for-item, scores bitwise, through both the backend and the
    /// request path.
    #[test]
    fn full_probe_ivf_equals_exact(variant in 0usize..10, user in 0u32..200) {
        let f = fixture();
        let v = &f.variants[variant];
        let Some(index) = &v.index else {
            // Non-metric models never build an index; the indexed
            // backend must report ineligibility, not guess.
            let backend = IndexedModel { frozen: &v.frozen, index: None };
            let template = f.catalog.template(0).expect("fixture has user 0");
            prop_assert!(backend
                .select_top_n_indexed(&f.catalog, template, 10, None, &[], Precision::F64, Parallelism::serial())
                .is_none());
            return Ok(());
        };
        let user = user % f.catalog.n_users() as u32;
        let n = 10;
        prop_assert!(f.catalog.n_items() >= 4 * n, "fixture large enough for the indexed path");
        let reference = reference_top_n(&v.frozen, &f.catalog, user, n);
        let backend = IndexedModel { frozen: &v.frozen, index: Some(index) };
        for threads in THREAD_COUNTS {
            let got = backend
                .select_top_n_indexed(
                    &f.catalog,
                    f.catalog.template(user).expect("fixture user in range"),
                    n,
                    Some(index.n_clusters()),
                    &[],
                    Precision::F64,
                    Parallelism::threads(threads),
                )
                .expect("eligible whole-catalogue request takes the indexed path");
            prop_assert_eq!(got.len(), reference.len(), "{}", v.name);
            for (g, r) in got.iter().zip(&reference) {
                prop_assert_eq!(g.0, r.0, "{} item order drifted (threads={})", v.name, threads);
                prop_assert_eq!(g.1.to_bits(), r.1.to_bits(), "{} score drifted (threads={})", v.name, threads);
            }
            // Same through the typed request path.
            let req = TopNRequest::new(user, n)
                .include_seen()
                .parallelism(Parallelism::threads(threads))
                .strategy(RetrievalStrategy::Ivf { nprobe: Some(index.n_clusters()) });
            let served = v.indexed.top_n(&req).expect("valid request").value;
            prop_assert_eq!(&served, &reference, "{} request path drifted (threads={})", v.name, threads);
        }
    }
}

/// Property 3: at the default knob, recall@10 on a seeded 10k-item
/// catalogue is ≥ 0.95 — and every score the index returns is bitwise
/// the true model score (the approximation lives only in the candidate
/// set).
#[test]
fn default_nprobe_recall_at_10_is_at_least_095_on_10k_items() {
    let dataset = generate_scale(&ScaleConfig::new(128, 10_000, 4242));
    let mask = FieldMask::all(&dataset.schema);
    let catalog = Catalog::from_dataset(&dataset, &mask);
    // The trained-model shape: item-id embeddings damped against the
    // shared attribute structure (see `synthetic_metric_damped`) — on
    // fully iid parameters most of every score is per-item noise no
    // candidate index could predict.
    let item_field = dataset.schema.field_of_kind(FieldKind::Item).expect("item field");
    let item_off = dataset.schema.offset(item_field);
    let frozen = FrozenModel::synthetic_metric_damped(
        dataset.schema.total_dim(),
        8,
        17,
        item_off..item_off + 10_000,
        0.5,
    );
    let index = IvfIndex::build(&frozen, &catalog, &IvfBuildOptions::default(), Parallelism::auto())
        .expect("metric models build an index");

    let n = 10;
    let users = 64u32;
    let mut hits = 0usize;
    for user in 0..users {
        let exact = reference_top_n(&frozen, &catalog, user, n);
        let got = index.search(
            &frozen,
            &catalog,
            catalog.template(user).expect("user in catalog"),
            catalog.item_slots(),
            n,
            index.default_nprobe(),
            Parallelism::auto(),
            &|_| false,
        );
        assert_eq!(got.len(), n, "complete result for user {user}");
        for (item, score) in &got {
            if let Some((_, s)) = exact.iter().find(|(i, _)| i == item) {
                assert_eq!(score.to_bits(), s.to_bits(), "approximate candidates, exact scores");
            }
        }
        hits += got.iter().filter(|(i, _)| exact.iter().any(|(e, _)| e == i)).count();
    }
    let recall = hits as f64 / (users as usize * n) as f64;
    assert!(recall >= 0.95, "recall@10 = {recall:.3} at nprobe = {}", index.default_nprobe());
}

/// Property 4a: the index round-trips through the v3 artifact — every
/// cluster mean, radius, assignment and knob bit-preserved, and the
/// reloaded index searches identically.
#[test]
fn index_round_trips_through_current_artifacts() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(91).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(3))
        .spec(ModelSpec::gml_fm_md(6))
        .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
        .retrieval(RetrievalStrategy::Ivf { nprobe: None })
        .fit()
        .expect("pipeline");
    let index = rec.index().expect("metric specs build an index through the pipeline");

    let json = rec.artifact().expect("freezable").to_json();
    assert!(json.contains("\"format_version\":4"), "this build writes v4");
    assert!(json.contains("\"index\":{"), "the index travels in v3+ artifacts");

    let reloaded = Engine::load_json(&json).expect("round trip");
    let loaded = reloaded.index().expect("the index survives the round trip");
    assert_eq!(loaded.kind(), index.kind());
    assert_eq!(loaded.k(), index.k());
    assert_eq!(loaded.n_items(), index.n_items());
    assert_eq!(loaded.n_clusters(), index.n_clusters());
    assert_eq!(loaded.default_nprobe(), index.default_nprobe());
    assert_eq!(loaded.min_candidates(), index.min_candidates());
    assert_eq!(loaded.assignments(), index.assignments());
    for c in 0..index.n_clusters() {
        assert_eq!(loaded.radius()[c].to_bits(), index.radius()[c].to_bits(), "cluster {c} radius");
        for (a, b) in loaded.phi_mean().row(c).iter().zip(index.phi_mean().row(c)) {
            assert_eq!(a.to_bits(), b.to_bits(), "cluster {c} mean");
        }
    }

    // The reloaded index answers searches identically to the original.
    let catalog = rec.catalog().expect("catalog");
    let frozen = rec.frozen().expect("freezable");
    for user in 0..4u32 {
        let template = catalog.template(user).expect("user in catalog");
        let search = |idx: &IvfIndex| {
            idx.search(
                frozen,
                catalog,
                template,
                catalog.item_slots(),
                10,
                idx.default_nprobe(),
                Parallelism::serial(),
                &|_| false,
            )
        };
        assert_eq!(search(index), search(loaded), "user {user}");
    }
}

/// Property 4b: v2 artifacts predate the `index` field — they still
/// load, with no index and fully exact serving.
#[test]
fn v2_artifacts_without_an_index_field_still_load() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(93).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(3))
        .spec(ModelSpec::gml_fm_md(6))
        .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
        .fit()
        .expect("pipeline");
    let json = rec.artifact().expect("freezable").to_json();
    assert!(json.contains(",\"index\":null"), "Exact pipelines persist no index");

    let v2 = json
        .replacen("\"format_version\":4", "\"format_version\":2", 1)
        .replacen(",\"index\":null", "", 1)
        .replacen(",\"precision\":null", "", 1);
    assert!(!v2.contains("\"index\""), "index field must be gone from the v2 fixture");
    let legacy = Engine::load_json(&v2).expect("v2 artifacts still load");
    assert!(legacy.index().is_none(), "v2 artifacts carry no index");

    // And the loaded recommender serves — exactly — without one.
    let reference =
        reference_top_n(legacy.frozen().expect("freezable"), legacy.catalog().expect("catalog"), 0, 5);
    let served = legacy
        .handle_top_n(&TopNRequest::new(0, 5).include_seen())
        .expect("valid request")
        .value;
    assert_eq!(served, reference);
}
