//! Property tests pinning the redesigned request path **bit-identical**
//! to the pre-redesign `Recommender` behaviour across every freezable
//! [`ModelSpec`] variant:
//!
//! * `score_feats` / `ScoreRequest::Feats` ≡ `FrozenModel::predict_feats`
//!   (which is exactly what the pre-redesign `score_feats` computed);
//! * `top_n` / `TopNRequest` (seen-exclusion off) ≡ the pre-redesign
//!   whole-catalogue ranking loop, re-implemented here as the reference;
//! * malformed requests are typed [`RequestError`]s, never panics.
//!
//! Plus the engine-level serving lifecycle: seen sets built by `fit` and
//! persisted in v2 artifacts (with the v1 decode fallback), and hot
//! swaps through `Recommender::serve()`.

use gmlfm_core::{Distance, GmlFmConfig};
use gmlfm_data::{generate, DatasetSpec};
use gmlfm_engine::{
    Engine, EngineError, ModelSpec, Recommender, RequestError, ScoreRequest, SplitPlan, TopNRequest,
};
use gmlfm_models::fm::FmConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_train::TrainConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every spec whose estimator has a frozen serving form, covering all
/// transform/distance/weight corners of GML-FM plus FM and TransFM.
fn freezable_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::gml_fm_md(6),
        ModelSpec::gml_fm(GmlFmConfig::mahalanobis(6).without_weight()),
        ModelSpec::gml_fm(GmlFmConfig::euclidean_plain(6)),
        ModelSpec::gml_fm_dnn(6, 0),
        ModelSpec::gml_fm_dnn(6, 2),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Manhattan)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Chebyshev)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Cosine)),
        ModelSpec::fm(FmConfig { k: 6, epochs: 1, ..FmConfig::default() }),
        ModelSpec::trans_fm(TransFmConfig { k: 6, seed: 29 }),
    ]
}

struct Fixture {
    name: &'static str,
    n_features: usize,
    rec: Recommender,
}

fn fixtures() -> &'static [Fixture] {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(83).scaled(0.15));
        let n_features = dataset.schema.total_dim();
        freezable_specs()
            .into_iter()
            .map(|spec| {
                let name = spec.display_name();
                let rec = Engine::builder()
                    .dataset(dataset.clone())
                    .split(SplitPlan::topn(5))
                    .spec(spec)
                    .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
                    .fit()
                    .expect("freezable specs support the top-n task");
                Fixture { name, n_features, rec }
            })
            .collect()
    })
}

/// The pre-redesign `Recommender::top_n`: serial whole-catalogue ranking
/// with one ranker, sorted best-first with ties broken by item id.
fn reference_top_n(rec: &Recommender, user: u32, n: usize) -> Vec<(u32, f64)> {
    let frozen = rec.frozen().expect("freezable spec");
    let catalog = rec.catalog().expect("fit keeps a catalog");
    let template = catalog.template(user).expect("user in catalog");
    let mut ranker = frozen.ranker(template, catalog.item_slots());
    let mut scored: Vec<(u32, f64)> = (0..catalog.n_items() as u32)
        .map(|item| (item, ranker.score(catalog.item_features(item).expect("item in catalog"))))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(n);
    scored
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The request path scores raw feature indices bit-identically to the
    /// pre-redesign direct frozen evaluation, through both the
    /// `Recommender` wrapper and the shared `ModelServer` handle.
    #[test]
    fn request_path_score_is_bit_identical_to_pre_redesign(
        variant in 0usize..10,
        raw_feats in proptest::collection::vec(0u32..100_000, 1..6),
    ) {
        let fixture = &fixtures()[variant];
        let mut feats: Vec<u32> =
            raw_feats.iter().map(|f| f % fixture.n_features as u32).collect();
        feats.sort_unstable();
        feats.dedup();
        // Pre-redesign `score_feats` evaluated the frozen model directly.
        let reference = fixture.rec.frozen().expect("freezable").predict_feats(&feats);
        let wrapper = fixture.rec.score_feats(&feats).expect("in-range feats");
        prop_assert_eq!(wrapper.to_bits(), reference.to_bits(), "{} wrapper drifted", fixture.name);
        let served = fixture.rec.serve().expect("freezable").score(&ScoreRequest::feats(feats.clone()))
            .expect("in-range feats");
        prop_assert_eq!(served.value.to_bits(), reference.to_bits(), "{} server drifted", fixture.name);
        prop_assert_eq!(served.generation, 1, "fresh fits serve generation 1");
    }

    /// The request path ranks the catalogue bit-identically to the
    /// pre-redesign `top_n` loop at several thread counts.
    #[test]
    fn request_path_top_n_is_bit_identical_to_pre_redesign(
        variant in 0usize..10,
        user in 0u32..40,
        threads in 1usize..5,
    ) {
        let fixture = &fixtures()[variant];
        let n_users = fixture.rec.catalog().expect("catalog").n_users() as u32;
        let user = user % n_users;
        let reference = reference_top_n(&fixture.rec, user, 10);
        let wrapper = fixture.rec.top_n(user, 10).expect("user in catalog");
        prop_assert_eq!(&wrapper, &reference, "{} wrapper drifted for user {}", fixture.name, user);
        let req = TopNRequest::new(user, 10)
            .include_seen()
            .parallelism(gmlfm_par::Parallelism::threads(threads));
        let served = fixture.rec.serve().expect("freezable").top_n(&req).expect("user in catalog");
        prop_assert_eq!(&served.value, &reference, "{} server drifted for user {}", fixture.name, user);
    }
}

#[test]
fn malformed_requests_through_the_recommender_are_typed_errors() {
    let fixture = &fixtures()[0];
    let n = fixture.n_features as u32;

    let err = fixture.rec.score_feats(&[0, n + 7]).unwrap_err();
    assert!(
        matches!(err, EngineError::Request(RequestError::FeatureOutOfRange { feature, .. }) if feature == n + 7),
        "{err}"
    );
    let err = fixture.rec.score(&gmlfm_data::Instance::new(vec![n], 0.0)).unwrap_err();
    assert!(matches!(err, EngineError::Request(RequestError::FeatureOutOfRange { .. })), "{err}");

    let n_users = fixture.rec.catalog().expect("catalog").n_users() as u32;
    let err = fixture.rec.top_n(n_users, 5).unwrap_err();
    assert!(matches!(err, EngineError::Request(RequestError::UnknownUser { .. })), "{err}");

    let err = fixture
        .rec
        .handle_score(&ScoreRequest::cold(0, &[("no_such_field", 0)]))
        .unwrap_err();
    assert!(matches!(err, EngineError::Request(RequestError::UnknownField { .. })), "{err}");
}

#[test]
fn fit_builds_seen_sets_and_serving_excludes_them_by_default() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(85).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset.clone())
        .split(SplitPlan::topn(9))
        .spec(ModelSpec::gml_fm_md(6))
        .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
        .fit()
        .expect("pipeline");
    let seen = rec.seen().expect("top-n fits build seen sets");
    assert!(seen.total() > 0, "synthetic dataset has training interactions");
    let user = (0..dataset.n_users as u32)
        .find(|&u| !seen.items(u).is_empty())
        .expect("some user has history");
    let seen_items = seen.items(user).to_vec();

    let server = rec.serve().expect("freezable");
    let n_items = rec.catalog().expect("catalog").n_items();
    let recommended = server.top_n(&TopNRequest::new(user, n_items)).expect("valid request").value;
    assert_eq!(recommended.len(), n_items - seen_items.len());
    assert!(
        recommended.iter().all(|(item, _)| !seen_items.contains(item)),
        "default requests must not recommend items the user already interacted with"
    );
    // The opt-out restores the evaluation-protocol view.
    let all = server.top_n(&TopNRequest::new(user, n_items).include_seen()).unwrap().value;
    assert_eq!(all.len(), n_items);

    // Rating fits reconstruct seen sets from the training instances.
    let rating_rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::rating(9))
        .spec(ModelSpec::gml_fm_md(6))
        .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
        .fit()
        .expect("pipeline");
    assert!(rating_rec.seen().expect("rating fits build seen sets too").total() > 0);
}

#[test]
fn seen_sets_persist_in_current_artifacts_and_v1_artifacts_still_load() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(87).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(3))
        .spec(ModelSpec::gml_fm_md(6))
        .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
        .fit()
        .expect("pipeline");
    let json = rec.artifact().expect("freezable").to_json();
    assert!(json.contains("\"format_version\":4"), "this build writes v4");

    // v2 round trip: the seen sets travel with the artifact.
    let reloaded = Engine::load_json(&json).expect("round trip");
    let (a, b) = (rec.seen().expect("seen"), reloaded.seen().expect("seen survives"));
    assert_eq!(a.n_users(), b.n_users());
    for user in 0..a.n_users() as u32 {
        assert_eq!(a.items(user), b.items(user), "user {user}");
    }

    // v1 fallback: strip the seen field and downgrade the version — the
    // artifact still loads, with no seen sets and no exclusion.
    let seen_json = {
        let mut out = String::from(",\"seen\":");
        serde::Serialize::serialize_json(a, &mut out);
        out
    };
    let v1 = json
        .replacen("\"format_version\":4", "\"format_version\":1", 1)
        .replacen(&seen_json, "", 1)
        .replacen(",\"precision\":null", "", 1);
    assert!(!v1.contains("\"seen\""), "seen field must be gone from the v1 fixture");
    let legacy = Engine::load_json(&v1).expect("v1 artifacts still load");
    assert!(legacy.seen().is_none());
    let n_items = legacy.catalog().expect("catalog").n_items();
    let server = legacy.serve().expect("freezable");
    let ranked = server.top_n(&TopNRequest::new(0, n_items)).expect("valid request").value;
    assert_eq!(ranked.len(), n_items, "no seen sets -> nothing excluded");
}

#[test]
fn hot_swap_through_the_served_handle_reloads_the_recommender() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(89).scaled(0.15));
    let make = |seed: u64| {
        Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::topn(5))
            .spec(ModelSpec::gml_fm(GmlFmConfig::mahalanobis(6).with_seed(seed)))
            .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
            .fit()
            .expect("pipeline")
    };
    let serving = make(1);
    let retrained = make(2);

    let probe: Vec<u32> = vec![0, 40];
    let before = serving.score_feats(&probe).expect("in-range");
    let retrained_score = retrained.score_feats(&probe).expect("in-range");
    assert_ne!(before.to_bits(), retrained_score.to_bits(), "different seeds, different models");

    // The artifact → snapshot → swap path a serving process runs on a
    // model refresh.
    let server = serving.serve().expect("freezable");
    let snapshot = retrained.artifact().expect("freezable").into_snapshot().expect("decodes");
    let generation = server.swap(snapshot).expect("schema-identical retrain");
    assert_eq!(generation, 2);

    // The swap is visible through every route: the served handle and the
    // recommender it came from now answer with the retrained model.
    let resp = server.score(&ScoreRequest::feats(probe.clone())).expect("in-range");
    assert_eq!(resp.generation, 2);
    assert_eq!(resp.value.to_bits(), retrained_score.to_bits());
    assert_eq!(serving.score_feats(&probe).expect("in-range").to_bits(), retrained_score.to_bits());
    // And the captured artifact now reflects the swapped-in snapshot.
    let reloaded = Engine::load_json(&serving.artifact().expect("freezable").to_json()).expect("load");
    assert_eq!(reloaded.score_feats(&probe).expect("in-range").to_bits(), retrained_score.to_bits());
}
