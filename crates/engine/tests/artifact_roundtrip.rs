//! Property tests for the artifact round trip: `save → load → score`
//! must be bit-identical (well under the 1e-12 budget) to the in-memory
//! recommender for every freezable [`ModelSpec`] variant, and version
//! mismatches must fail with a typed error, not a panic.

use gmlfm_core::{Distance, GmlFmConfig};
use gmlfm_data::{generate, DatasetSpec, Instance};
use gmlfm_engine::{Engine, EngineError, ModelSpec, Recommender, SplitPlan, ARTIFACT_VERSION};
use gmlfm_models::fm::FmConfig;
use gmlfm_models::mf::MfConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_train::TrainConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Every spec whose estimator has a frozen serving form, covering all
/// transform/distance/weight corners of GML-FM plus FM and TransFM.
fn freezable_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::gml_fm_md(6),
        ModelSpec::gml_fm(GmlFmConfig::mahalanobis(6).without_weight()),
        ModelSpec::gml_fm(GmlFmConfig::euclidean_plain(6)),
        ModelSpec::gml_fm_dnn(6, 0),
        ModelSpec::gml_fm_dnn(6, 2),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Manhattan)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Chebyshev)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Cosine)),
        ModelSpec::fm(FmConfig { k: 6, epochs: 2, ..FmConfig::default() }),
        ModelSpec::trans_fm(TransFmConfig { k: 6, seed: 29 }),
    ]
}

struct Fixture {
    name: &'static str,
    n_features: usize,
    trained: Recommender,
    reloaded: Recommender,
}

/// Trains each freezable spec once on a tiny dataset and round-trips it
/// through the JSON artifact; the property tests then probe the pair.
fn fixtures() -> &'static [Fixture] {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(77).scaled(0.15));
        let n_features = dataset.schema.total_dim();
        freezable_specs()
            .into_iter()
            .map(|spec| {
                let name = spec.display_name();
                let trained = Engine::builder()
                    .dataset(dataset.clone())
                    .split(SplitPlan::topn(5))
                    .spec(spec)
                    .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
                    .fit()
                    .expect("freezable specs support the top-n task");
                let json = trained.artifact().expect("freezable").to_json();
                let reloaded = Engine::load_json(&json).expect("round trip");
                Fixture { name, n_features, trained, reloaded }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `save → load → score` is bit-identical for random instances over
    /// every freezable variant.
    #[test]
    fn reloaded_scores_are_bit_identical(
        variant in 0usize..10,
        raw_feats in proptest::collection::vec(0u32..100_000, 1..6),
    ) {
        let fixture = &fixtures()[variant];
        let mut feats: Vec<u32> =
            raw_feats.iter().map(|f| f % fixture.n_features as u32).collect();
        feats.sort_unstable();
        feats.dedup();
        let a = fixture.trained.score_feats(&feats).expect("in-range feats");
        let b = fixture.reloaded.score_feats(&feats).expect("in-range feats");
        prop_assert_eq!(
            a.to_bits(), b.to_bits(),
            "{}: in-memory {} vs reloaded {} on {:?}", fixture.name, a, b, &feats
        );
        prop_assert!((a - b).abs() <= 1e-12);
    }

    /// Full-catalogue rankings survive the round trip exactly.
    #[test]
    fn reloaded_top_n_matches(variant in 0usize..10, user in 0u32..40) {
        let fixture = &fixtures()[variant];
        let n_users = fixture.trained.catalog().expect("fit keeps a catalog").n_users() as u32;
        let user = user % n_users;
        let a = fixture.trained.top_n(user, 10).expect("rank");
        let b = fixture.reloaded.top_n(user, 10).expect("rank");
        prop_assert_eq!(a, b, "{} user {}", fixture.name, user);
    }
}

#[test]
fn reloaded_recommender_scores_instances_like_the_frozen_model() {
    for fixture in fixtures() {
        let inst = Instance::new(vec![1, (fixture.n_features / 2) as u32], 0.0);
        let frozen = fixture.trained.frozen().expect("freezable spec");
        assert_eq!(
            frozen.predict(&inst).to_bits(),
            fixture.reloaded.score(&inst).expect("in-range instance").to_bits(),
            "{}",
            fixture.name
        );
    }
}

#[test]
fn bumped_artifact_version_fails_with_a_typed_error() {
    let json = fixtures()[0].trained.artifact().expect("freezable").to_json();
    let bumped = json.replacen(
        &format!("\"format_version\":{ARTIFACT_VERSION}"),
        &format!("\"format_version\":{}", ARTIFACT_VERSION + 1),
        1,
    );
    assert_ne!(json, bumped, "version field must appear in the artifact");
    match Engine::load_json(&bumped) {
        Err(EngineError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, ARTIFACT_VERSION + 1);
            assert_eq!(supported, ARTIFACT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}", other = other.err()),
    }
}

#[test]
fn loaded_recommender_has_no_holdout_but_keeps_the_catalog() {
    let fixture = &fixtures()[0];
    assert!(matches!(fixture.reloaded.evaluate_topn(10), Err(EngineError::MissingHoldout { .. })));
    assert!(matches!(fixture.reloaded.evaluate_rating(), Err(EngineError::MissingHoldout { .. })));
    assert_eq!(
        fixture.reloaded.catalog().expect("catalog travels with the artifact").n_items(),
        fixture.trained.catalog().expect("catalog").n_items()
    );
}

#[test]
fn out_of_range_item_is_reported_as_unknown_item_not_user() {
    use gmlfm_engine::RequestError;
    let fixture = &fixtures()[0];
    let n_items = fixture.trained.catalog().expect("catalog").n_items() as u32;
    let err = fixture.trained.score_pair(0, n_items + 5).unwrap_err();
    assert!(matches!(err, EngineError::Request(RequestError::UnknownItem { .. })), "{err}");
    let n_users = fixture.trained.catalog().expect("catalog").n_users() as u32;
    let err = fixture.trained.score_pair(n_users + 5, 0).unwrap_err();
    assert!(matches!(err, EngineError::Request(RequestError::UnknownUser { .. })), "{err}");
}

/// A non-default scoring precision survives `save → load` (the v4
/// artifact stores the name; tables are rebuilt at load), and the
/// quantized default still serves rankings with scores bitwise the
/// exact `f64` model's — the i8 probe re-ranks exactly by contract.
#[test]
fn precision_survives_the_round_trip_and_keeps_scores_exact() {
    use gmlfm_engine::Precision;
    let dataset = generate(&DatasetSpec::AmazonAuto.config(81).scaled(0.15));
    let fit = |precision: Precision| {
        Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::topn(5))
            .spec(ModelSpec::gml_fm_md(6))
            .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
            .precision(precision)
            .fit()
            .expect("gml_fm_md fits the top-n task")
    };
    let exact = fit(Precision::F64);
    let quant = fit(Precision::I8);
    let json = quant.artifact().expect("freezable").to_json();
    assert!(json.contains("\"precision\":\"i8\""), "v4 artifact records the precision name: {json}");
    assert!(
        !exact.artifact().expect("freezable").to_json().contains("\"precision\":\"i8\""),
        "the f64 default is omitted from the artifact"
    );
    let reloaded = Engine::load_json(&json).expect("round trip");
    assert_eq!(reloaded.frozen().expect("freezable").precision(), Precision::I8);
    // Same dataset, spec and seed: training is deterministic, so the
    // two recommenders hold the same parameters and the i8-served
    // ranking (probe + exact re-rank) must be bitwise the f64 one.
    let n_users = exact.catalog().expect("catalog").n_users() as u32;
    for user in [0u32, 7 % n_users, n_users - 1] {
        let want = exact.top_n(user, 10).expect("rank");
        for served in [&quant, &reloaded] {
            let got = served.top_n(user, 10).expect("rank");
            assert_eq!(got.len(), want.len(), "user {user}");
            for ((gi, gs), (wi, ws)) in got.iter().zip(&want) {
                assert_eq!(gi, wi, "user {user}");
                assert_eq!(gs.to_bits(), ws.to_bits(), "user {user} item {gi}: {gs} vs {ws}");
            }
        }
    }
}

#[test]
fn non_freezable_models_refuse_to_save() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(78).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::topn(5))
        .spec(ModelSpec::BprMf { config: MfConfig { epochs: 2, ..MfConfig::default() } })
        .fit()
        .expect("BPR-MF fits the top-n task");
    assert!(matches!(rec.artifact(), Err(EngineError::NotFreezable { .. })));
}

#[test]
fn task_mismatch_is_a_typed_error() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(79).scaled(0.15));
    let err = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::rating(3))
        .spec(ModelSpec::BprMf { config: MfConfig::default() })
        .fit()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedTask { task: "rating", .. }));
}

#[test]
fn builder_without_dataset_is_a_typed_error() {
    let err = Engine::builder().spec(ModelSpec::gml_fm_dnn(4, 1)).fit().unwrap_err();
    assert!(matches!(err, EngineError::BuilderIncomplete { field: "dataset" }));
}
