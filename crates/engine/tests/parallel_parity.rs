//! Property tests pinning every parallel serving/eval path **bit-identical**
//! to its serial evaluation, across all freezable [`ModelSpec`] variants
//! and thread counts {1, 2, 5}.
//!
//! The guarantee under test is structural: the `gmlfm-par` helpers
//! partition work into contiguous blocks and merge the per-block outputs
//! in input order, and every per-item computation is pure — so no thread
//! count, not even one larger than the machine's core count, may change
//! a single bit of any score or per-user metric.

use gmlfm_core::{Distance, GmlFmConfig};
use gmlfm_data::{generate, loo_split, DatasetSpec, FieldMask, Instance, LooSplit};
use gmlfm_engine::{Engine, ModelSpec, SplitPlan};
use gmlfm_eval::{evaluate_rating, evaluate_topn_frozen_with};
use gmlfm_models::fm::FmConfig;
use gmlfm_models::transfm::TransFmConfig;
use gmlfm_par::Parallelism;
use gmlfm_serve::{score_chunked, score_chunked_par, FrozenModel};
use gmlfm_train::{Scorer, TrainConfig};
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

const THREAD_COUNTS: [usize; 3] = [1, 2, 5];

/// Every spec whose estimator has a frozen serving form, covering all
/// transform/distance/weight corners of GML-FM plus FM and TransFM.
fn freezable_specs() -> Vec<ModelSpec> {
    vec![
        ModelSpec::gml_fm_md(6),
        ModelSpec::gml_fm(GmlFmConfig::mahalanobis(6).without_weight()),
        ModelSpec::gml_fm(GmlFmConfig::euclidean_plain(6)),
        ModelSpec::gml_fm_dnn(6, 0),
        ModelSpec::gml_fm_dnn(6, 2),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Manhattan)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Chebyshev)),
        ModelSpec::gml_fm(GmlFmConfig::dnn(6, 1).with_distance(Distance::Cosine)),
        ModelSpec::fm(FmConfig { k: 6, epochs: 1, ..FmConfig::default() }),
        ModelSpec::trans_fm(TransFmConfig { k: 6, seed: 29 }),
    ]
}

struct Fixture {
    dataset: gmlfm_data::Dataset,
    mask: FieldMask,
    split: LooSplit,
    /// `(display name, frozen model)` for every freezable spec.
    frozen: Vec<(&'static str, FrozenModel)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = generate(&DatasetSpec::AmazonAuto.config(91).scaled(0.15));
        let mask = FieldMask::all(&dataset.schema);
        let split = loo_split(&dataset, &mask, 2, 20, 6);
        // Untrained estimators are enough: scoring parity is independent
        // of the parameter values, and freezing at init keeps the
        // fixture fast.
        let frozen = freezable_specs()
            .into_iter()
            .map(|spec| {
                let name = spec.display_name();
                let estimator = spec.build(&dataset.schema, &mask);
                (name, estimator.freeze_if_supported().expect("freezable spec"))
            })
            .collect();
        Fixture { dataset, mask, split, frozen }
    })
}

/// A scorer that forces a fixed parallelism through the frozen batch
/// path, so `evaluate_rating` can be compared across thread counts.
struct ParScorer<'m>(&'m FrozenModel, Parallelism);

impl Scorer for ParScorer<'_> {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        score_chunked_par(self.0, instances, NonZeroUsize::new(64).expect("non-zero"), self.1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel chunked scoring is bit-identical to serial for random
    /// instance batches, chunk sizes and thread counts.
    #[test]
    fn score_chunked_parallel_is_bit_identical(
        variant in 0usize..10,
        chunk in 1usize..80,
        raw in proptest::collection::vec(proptest::collection::vec(0u32..100_000, 1..5), 1..60),
    ) {
        let f = fixture();
        let (name, model) = &f.frozen[variant];
        let n = model.n_features() as u32;
        let instances: Vec<Instance> = raw
            .into_iter()
            .map(|feats| {
                let mut feats: Vec<u32> = feats.into_iter().map(|x| x % n).collect();
                feats.sort_unstable();
                feats.dedup();
                Instance::new(feats, 1.0)
            })
            .collect();
        let chunk = NonZeroUsize::new(chunk).expect("non-zero");
        let serial = score_chunked(model, &instances, chunk);
        for t in THREAD_COUNTS {
            let par = score_chunked_par(model, &instances, chunk, Parallelism::threads(t));
            prop_assert_eq!(
                par.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "{} at {} threads", name, t
            );
        }
    }

    /// The frozen leave-one-out protocol produces bit-identical per-user
    /// metric vectors at every thread count.
    #[test]
    fn evaluate_topn_frozen_parallel_is_bit_identical(variant in 0usize..10) {
        let f = fixture();
        let (name, model) = &f.frozen[variant];
        let serial = evaluate_topn_frozen_with(
            model, &f.dataset, &f.mask, &f.split.test, 10, Parallelism::serial(),
        );
        for t in THREAD_COUNTS {
            let par = evaluate_topn_frozen_with(
                model, &f.dataset, &f.mask, &f.split.test, 10, Parallelism::threads(t),
            );
            prop_assert_eq!(&par.per_user_hr, &serial.per_user_hr, "{} HR at {} threads", name, t);
            prop_assert_eq!(
                par.per_user_ndcg.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                serial.per_user_ndcg.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                "{} NDCG at {} threads", name, t
            );
            prop_assert_eq!(par.hr.to_bits(), serial.hr.to_bits());
            prop_assert_eq!(par.ndcg.to_bits(), serial.ndcg.to_bits());
        }
    }

    /// Rating evaluation through the parallel batch scorer matches the
    /// serial scorer bit-for-bit at every thread count.
    #[test]
    fn evaluate_rating_parallel_is_bit_identical(variant in 0usize..10) {
        let f = fixture();
        let (name, model) = &f.frozen[variant];
        let test: Vec<Instance> = f.split.train.iter().take(300).cloned().collect();
        let serial = evaluate_rating(&ParScorer(model, Parallelism::serial()), &test);
        for t in THREAD_COUNTS {
            let par = evaluate_rating(&ParScorer(model, Parallelism::threads(t)), &test);
            prop_assert_eq!(par.rmse.to_bits(), serial.rmse.to_bits(), "{} RMSE at {} threads", name, t);
            prop_assert_eq!(par.mae.to_bits(), serial.mae.to_bits(), "{} MAE at {} threads", name, t);
            prop_assert_eq!(par.n, serial.n);
        }
    }
}

/// The engine's builder-level `threads(..)` knob must not change
/// rankings or holdout metrics either.
#[test]
fn engine_threads_knob_is_output_invariant() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(93).scaled(0.15));
    let build = |threads: usize| {
        Engine::builder()
            .dataset(dataset.clone())
            .split(SplitPlan::topn(5))
            .spec(ModelSpec::gml_fm_md(6))
            .train_config(TrainConfig { epochs: 1, ..TrainConfig::default() })
            .threads(threads)
            .fit()
            .expect("pipeline")
    };
    let serial = build(1);
    let parallel = build(5);
    assert_eq!(parallel.threads(), 5);
    for user in 0..8u32 {
        assert_eq!(serial.top_n(user, 10).unwrap(), parallel.top_n(user, 10).unwrap(), "user {user}");
    }
    let a = serial.evaluate_topn(10).unwrap();
    let b = parallel.evaluate_topn(10).unwrap();
    assert_eq!(a.per_user_hr, b.per_user_hr);
    assert_eq!(a.per_user_ndcg, b.per_user_ndcg);
}

/// Hogwild opt-in through the engine trains and serves end to end (the
/// result is not reproducible across runs by design, so this pins only
/// that the mode works and produces finite, usable models).
#[test]
fn engine_hogwild_opt_in_trains_end_to_end() {
    let dataset = generate(&DatasetSpec::AmazonAuto.config(95).scaled(0.15));
    let rec = Engine::builder()
        .dataset(dataset)
        .split(SplitPlan::rating(7))
        .spec(ModelSpec::fm(FmConfig { k: 6, epochs: 3, ..FmConfig::default() }))
        .train_config(TrainConfig { hogwild_threads: 3, ..TrainConfig::default() })
        .fit()
        .expect("hogwild pipeline");
    let report = rec.report().expect("fit keeps a report");
    assert_eq!(report.train_losses.len(), 3);
    assert!(report.train_losses.iter().all(|l| l.is_finite()));
    let metrics = rec.evaluate_rating().expect("rating holdout");
    assert!(metrics.rmse.is_finite() && metrics.rmse > 0.0);
}
