//! The bounded, typed interaction log between ingest and retraining.
//!
//! [`InteractionLog`] is the hand-off buffer of the online loop: feeds
//! push validated [`Interaction`]s in, the [`crate::OnlineTrainer`]
//! drains them at the start of each warm-start round. It is **bounded**
//! — a full log rejects with the typed, retryable
//! [`RequestError::Backpressure`] instead of growing without limit — and
//! **idempotent** for retries: an event carrying an [`Interaction::id`]
//! already accepted is acknowledged as a duplicate, not enqueued twice
//! (the retrying `gmlfm-net` client may deliver an ambiguous-failure
//! feed more than once).

use gmlfm_service::{Interaction, RequestError};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// What one [`InteractionLog::push`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Newly enqueued; `pending` events now await the next retrain.
    Accepted {
        /// Events in the log after this push.
        pending: usize,
    },
    /// The event's `id` was already accepted — an idempotent retry.
    Duplicate,
}

/// Counters describing a log's lifetime traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Events accepted (including already-drained ones).
    pub accepted: u64,
    /// Idempotent duplicates acknowledged without enqueueing.
    pub duplicates: u64,
    /// Events rejected with [`RequestError::Backpressure`].
    pub rejected: u64,
}

struct LogInner {
    events: Vec<Interaction>,
    /// Every `Interaction::id` ever accepted — the deduplication window
    /// for idempotent retries. Grows 8 bytes per distinct id; events
    /// without ids cost nothing here.
    ids: BTreeSet<u64>,
    stats: LogStats,
}

/// A bounded FIFO of validated interactions shared between feeders and
/// the trainer. All operations are short critical sections (a push, a
/// membership check, a buffer swap) — never a scan or a retrain.
pub struct InteractionLog {
    inner: Mutex<LogInner>,
    capacity: usize,
}

impl InteractionLog {
    /// An empty log holding at most `capacity` undrained events.
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LogInner {
                events: Vec::new(),
                ids: BTreeSet::new(),
                stats: LogStats::default(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// The log's event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues one validated event. A full log is the typed, retryable
    /// [`RequestError::Backpressure`]; a repeated [`Interaction::id`] is
    /// acknowledged as [`PushOutcome::Duplicate`] without enqueueing.
    pub fn push(&self, event: Interaction) -> Result<PushOutcome, RequestError> {
        let mut inner = self.lock();
        if let Some(id) = event.id {
            if inner.ids.contains(&id) {
                inner.stats.duplicates += 1;
                return Ok(PushOutcome::Duplicate);
            }
        }
        if inner.events.len() >= self.capacity {
            inner.stats.rejected += 1;
            return Err(RequestError::Backpressure { capacity: self.capacity });
        }
        if let Some(id) = event.id {
            inner.ids.insert(id);
        }
        inner.events.push(event);
        inner.stats.accepted += 1;
        Ok(PushOutcome::Accepted { pending: inner.events.len() })
    }

    /// Events currently awaiting the next retrain.
    pub fn pending(&self) -> usize {
        self.lock().events.len()
    }

    /// Takes every pending event (in arrival order), leaving the log
    /// empty — what a retrain round calls. Accepted ids stay in the
    /// deduplication window, so a late retry of a drained event is
    /// still a duplicate, not a double-count.
    pub fn drain(&self) -> Vec<Interaction> {
        std::mem::take(&mut self.lock().events)
    }

    /// Lifetime accept/duplicate/reject counters.
    pub fn stats(&self) -> LogStats {
        self.lock().stats
    }

    /// Locks the log, recovering from poisoning: every mutation under
    /// this lock is a single push/swap, so a panicking holder cannot
    /// leave the buffer torn.
    fn lock(&self) -> MutexGuard<'_, LogInner> {
        self.inner.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_log_accepts_dedups_and_backpressures() {
        let log = InteractionLog::new(2);
        assert_eq!(log.push(Interaction::new(0, 1).id(7)), Ok(PushOutcome::Accepted { pending: 1 }));
        // Same id again: idempotent duplicate, not a second entry.
        assert_eq!(log.push(Interaction::new(0, 1).id(7)), Ok(PushOutcome::Duplicate));
        assert_eq!(log.push(Interaction::new(1, 2)), Ok(PushOutcome::Accepted { pending: 2 }));
        // Full: typed backpressure carrying the capacity.
        assert_eq!(log.push(Interaction::new(2, 3)), Err(RequestError::Backpressure { capacity: 2 }));
        assert_eq!(log.pending(), 2);

        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(log.pending(), 0);
        // Ids survive the drain: a late retry is still a duplicate.
        assert_eq!(log.push(Interaction::new(0, 1).id(7)), Ok(PushOutcome::Duplicate));
        let stats = log.stats();
        assert_eq!((stats.accepted, stats.duplicates, stats.rejected), (2, 2, 1));
    }
}
