//! The eval gate between a retrained candidate and the serving slot.

use crate::error::OnlineError;
use gmlfm_data::LooTestCase;
use gmlfm_eval::evaluate_topn_backend;
use gmlfm_par::Parallelism;
use gmlfm_service::{Catalog, RequestError, ScoringBackend};

/// The ranking quality of one model on the gate's pinned holdout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateMetrics {
    /// Hit Ratio@k.
    pub hr: f64,
    /// NDCG@k.
    pub ndcg: f64,
}

/// The typed verdict of one gate comparison: both sides' metrics, the
/// knobs that judged them, and the decision. Returned on rejections so
/// an operator can see *by how much* the candidate regressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateReport {
    /// Metrics of the serving snapshot the candidate challenged.
    pub baseline: GateMetrics,
    /// Metrics of the retrained candidate.
    pub candidate: GateMetrics,
    /// Ranking cutoff the metrics were computed at.
    pub k: usize,
    /// Allowed absolute regression per metric.
    pub tolerance: f64,
    /// Whether the candidate may be published.
    pub passed: bool,
}

/// Gatekeeper of [`gmlfm_service::ModelServer::swap`]: scores candidates
/// on a **pinned holdout** (leave-one-out cases fixed at launch, so
/// every round is judged on the same ground truth) and only passes
/// candidates whose HR@k *and* NDCG@k stay within `tolerance` of the
/// serving baseline.
///
/// Evaluation goes through the snapshot-pinned eval core
/// ([`evaluate_topn_backend`]); its per-case requests are candidate-
/// restricted and opt out of seen filtering, so neither the seen sets
/// nor the live overlay can skew the comparison.
#[derive(Debug, Clone)]
pub struct EvalGate {
    cases: Vec<LooTestCase>,
    k: usize,
    tolerance: f64,
}

impl EvalGate {
    /// A gate over `cases` at cutoff `k`, allowing an absolute per-metric
    /// regression of `tolerance`. Fails typed on an empty holdout or a
    /// zero cutoff — a gate that can judge nothing must not exist.
    pub fn new(cases: Vec<LooTestCase>, k: usize, tolerance: f64) -> Result<Self, OnlineError> {
        if cases.is_empty() {
            return Err(OnlineError::Launch("eval gate needs a non-empty holdout".into()));
        }
        if k == 0 {
            return Err(OnlineError::Launch("eval gate needs a cutoff k >= 1".into()));
        }
        Ok(Self { cases, k, tolerance: tolerance.max(0.0) })
    }

    /// Number of pinned holdout cases.
    pub fn n_cases(&self) -> usize {
        self.cases.len()
    }

    /// The gate's ranking cutoff.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Scores one model on the pinned holdout.
    pub fn score<B: ScoringBackend + Sync + ?Sized>(
        &self,
        backend: &B,
        catalog: Option<&Catalog>,
        par: Parallelism,
    ) -> Result<GateMetrics, RequestError> {
        let metrics = evaluate_topn_backend(backend, catalog, None, &self.cases, self.k, par)?;
        Ok(GateMetrics { hr: metrics.hr, ndcg: metrics.ndcg })
    }

    /// Judges a candidate against the baseline: passes iff **both**
    /// metrics stay within the tolerance.
    pub fn judge(&self, baseline: GateMetrics, candidate: GateMetrics) -> GateReport {
        let passed =
            candidate.hr + self.tolerance >= baseline.hr && candidate.ndcg + self.tolerance >= baseline.ndcg;
        GateReport { baseline, candidate, k: self.k, tolerance: self.tolerance, passed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> EvalGate {
        let case = LooTestCase { user: 0, pos_item: 1, negatives: vec![2, 3] };
        EvalGate::new(vec![case], 5, 0.01).expect("valid gate")
    }

    #[test]
    fn judge_passes_within_tolerance_and_rejects_regressions() {
        let g = gate();
        let base = GateMetrics { hr: 0.50, ndcg: 0.30 };
        assert!(g.judge(base, GateMetrics { hr: 0.495, ndcg: 0.295 }).passed);
        assert!(g.judge(base, GateMetrics { hr: 0.60, ndcg: 0.40 }).passed);
        // Either metric regressing past the tolerance rejects.
        assert!(!g.judge(base, GateMetrics { hr: 0.40, ndcg: 0.30 }).passed);
        assert!(!g.judge(base, GateMetrics { hr: 0.50, ndcg: 0.20 }).passed);
    }

    #[test]
    fn empty_holdout_and_zero_k_are_typed_launch_errors() {
        assert!(matches!(EvalGate::new(vec![], 5, 0.0), Err(OnlineError::Launch(_))));
        let case = LooTestCase { user: 0, pos_item: 1, negatives: vec![2] };
        assert!(matches!(EvalGate::new(vec![case], 0, 0.0), Err(OnlineError::Launch(_))));
    }
}
