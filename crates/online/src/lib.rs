//! Online learning loop for GML-FM serving: streaming ingest,
//! warm-start retraining, eval-gated hot swap.
//!
//! This crate closes the loop from an interaction stream back to the
//! published model, in three stages that never block readers:
//!
//! 1. **Ingest** ([`OnlineHandle`], [`InteractionLog`]) — validated
//!    events fold into the serving seen overlay *immediately* (the item
//!    leaves the user's top-n before any retrain) and queue in a
//!    bounded, idempotent log;
//! 2. **Retrain** ([`OnlineTrainer`]) — on cadence or event count, a
//!    background thread warm-starts SGD from the serving snapshot's
//!    weights over base + accumulated interactions;
//! 3. **Gate + publish** ([`EvalGate`]) — the candidate is scored on a
//!    pinned holdout and only a non-regressing candidate reaches
//!    [`ModelServer::swap`](gmlfm_service::ModelServer::swap); rejected
//!    candidates come back as a typed [`GateReport`].
//!
//! Everything is std-only, mirroring the rest of the workspace.

mod error;
mod gate;
mod handle;
mod log;
mod trainer;

pub use error::OnlineError;
pub use gate::{EvalGate, GateMetrics, GateReport};
pub use handle::OnlineHandle;
pub use log::{InteractionLog, LogStats, PushOutcome};
pub use trainer::{OnlineConfig, OnlineModel, OnlineServing, OnlineStatus, OnlineTrainer, RoundOutcome};
