//! Warm-start retraining on a background thread, published through the
//! eval gate.

use crate::error::OnlineError;
use crate::gate::{EvalGate, GateMetrics, GateReport};
use crate::handle::OnlineHandle;
use crate::log::InteractionLog;
use gmlfm_data::{Instance, LooTestCase};
use gmlfm_par::Parallelism;
use gmlfm_serve::{Freeze, FrozenModel, IvfBuildOptions, IvfIndex};
use gmlfm_service::{exec, Interaction, ModelServer, ModelSnapshot, SeenItems};
use gmlfm_train::TrainConfig;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// A model the online loop can keep training from its current weights.
///
/// Implementations hold *trainable* parameters whose current values
/// match the serving snapshot (the snapshot was frozen from them), so
/// calling [`warm_fit`](OnlineModel::warm_fit) again continues SGD from
/// the published weights — the warm start — and
/// [`freeze`](OnlineModel::freeze) extracts the next serving candidate.
///
/// `gmlfm-engine` adapts its `Estimator`s onto this trait; the direct
/// implementation for [`FactorizationMachine`] serves tests, benches and
/// engine-free deployments.
///
/// [`FactorizationMachine`]: gmlfm_models::FactorizationMachine
pub trait OnlineModel: Send {
    /// Continues training from the current parameters over `train`
    /// (base + accumulated interactions). `cfg` carries the per-round
    /// knobs; SGD trainers with their own epoch configuration may
    /// consume only `cfg.hogwild_threads`.
    fn warm_fit(&mut self, train: &[Instance], cfg: &TrainConfig) -> Result<(), OnlineError>;

    /// Extracts the frozen serving candidate at the current weights.
    fn freeze(&self) -> Result<FrozenModel, OnlineError>;
}

impl OnlineModel for gmlfm_models::FactorizationMachine {
    fn warm_fit(&mut self, train: &[Instance], cfg: &TrainConfig) -> Result<(), OnlineError> {
        if train.is_empty() {
            return Err(OnlineError::Train("empty training set".into()));
        }
        // Epochs/lr come from the FM's own `FmConfig`; the round config
        // only sizes the Hogwild pool.
        self.fit_hogwild(train, cfg.hogwild_threads.max(1));
        Ok(())
    }

    fn freeze(&self) -> Result<FrozenModel, OnlineError> {
        Ok(Freeze::freeze(self))
    }
}

/// Tuning knobs of the online loop.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Event count that triggers a background retrain round.
    pub min_events: usize,
    /// Retrain at least this often while any events are pending.
    pub cadence: Duration,
    /// Background thread poll interval (upper bound on trigger latency).
    pub poll: Duration,
    /// Capacity of the bounded [`InteractionLog`].
    pub log_capacity: usize,
    /// Ranking cutoff of the eval gate.
    pub gate_k: usize,
    /// Allowed absolute per-metric regression before the gate rejects.
    pub gate_tolerance: f64,
    /// Per-round training knobs handed to [`OnlineModel::warm_fit`].
    pub train: TrainConfig,
    /// Sampled negatives per positive event (label `-1`, drawn from
    /// items the user has not seen), matching the paper's
    /// implicit-feedback protocol. `0` trains on positives only.
    pub negatives_per_event: usize,
    /// Seed of the deterministic negative-sampling stream.
    pub seed: u64,
    /// Whether to spawn the background trainer thread. `false` gives a
    /// loop driven only by explicit [`OnlineTrainer::run_once`] calls
    /// (deterministic tests, benches).
    pub background: bool,
    /// Worker count for gate evaluation and index rebuilds.
    pub par: Parallelism,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            min_events: 64,
            cadence: Duration::from_secs(30),
            poll: Duration::from_millis(50),
            log_capacity: 65_536,
            gate_k: 10,
            gate_tolerance: 0.01,
            train: TrainConfig::default(),
            negatives_per_event: 2,
            seed: 0x6f6e_6c69,
            background: true,
            par: Parallelism::serial(),
        }
    }
}

/// What one retrain round did.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// The candidate passed the gate and now serves as `generation`.
    Published {
        /// The generation installed by the swap.
        generation: u64,
        /// The gate comparison that admitted it.
        report: GateReport,
    },
    /// The candidate regressed past the tolerance and was **not**
    /// published; the serving snapshot is unchanged.
    Rejected {
        /// The gate comparison that refused it.
        report: GateReport,
    },
    /// Nothing to do: no events arrived since the last round.
    Skipped,
    /// The round failed before reaching the gate (trainer error, swap
    /// validation); the serving snapshot is unchanged.
    Failed {
        /// What went wrong.
        error: String,
    },
}

/// Point-in-time observability of the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStatus {
    /// Retrain rounds run (including skipped/failed ones).
    pub rounds: u64,
    /// Rounds that published through the gate.
    pub published: u64,
    /// Rounds the gate rejected.
    pub rejected: u64,
    /// Events dropped because they no longer validated at round time.
    pub skipped_events: u64,
    /// Events awaiting the next round.
    pub pending: usize,
    /// Outcome of the most recent non-skipped round.
    pub last: Option<RoundOutcome>,
}

/// Mutable round state, serialised by its mutex: the trainable model,
/// the accumulated training set, and the cached baseline metrics.
struct RoundState {
    model: Box<dyn OnlineModel>,
    /// Base training instances + instances folded from drained events.
    train: Vec<Instance>,
    /// Cached `(generation, metrics)` of the serving baseline, so the
    /// gate scores the baseline once per published generation.
    baseline: Option<(u64, GateMetrics)>,
    last: Option<RoundOutcome>,
    /// Deterministic xorshift state of the negative sampler.
    neg_rng: u64,
}

/// Wake-up channel between the public API and the background thread.
struct Signal {
    kicked: bool,
}

struct Shared {
    server: ModelServer,
    log: Arc<InteractionLog>,
    gate: EvalGate,
    cfg: OnlineConfig,
    round: Mutex<RoundState>,
    signal: Mutex<Signal>,
    wake: Condvar,
    shutdown: AtomicBool,
    rounds: AtomicU64,
    published: AtomicU64,
    rejected: AtomicU64,
    skipped_events: AtomicU64,
}

impl Shared {
    fn lock_round(&self) -> MutexGuard<'_, RoundState> {
        self.round.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    fn lock_signal(&self) -> MutexGuard<'_, Signal> {
        self.signal.lock().unwrap_or_else(|poison| poison.into_inner())
    }
}

/// The retrain half of the online loop: drains the [`InteractionLog`],
/// warm-starts the model from its current (published) weights over the
/// base plus accumulated interactions, rebuilds the IVF index for
/// metric-mode snapshots, and publishes via [`ModelServer::swap`]
/// **only** when the [`EvalGate`] passes the candidate. Readers are
/// never blocked: all heavy work happens off the request path, and the
/// swap itself is the server's wait-free pointer store.
pub struct OnlineTrainer {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl OnlineTrainer {
    /// Launches the loop over an already-serving `server`.
    ///
    /// `model` must hold the weights the serving snapshot was frozen
    /// from (that is what makes re-fitting a *warm* start); `base` is
    /// the original training set new interactions accumulate onto.
    /// Fails typed when the server has no catalog (events could never
    /// validate), the gate holdout is empty, or `base` is.
    pub fn launch(
        server: ModelServer,
        log: Arc<InteractionLog>,
        model: Box<dyn OnlineModel>,
        base: Vec<Instance>,
        holdout: Vec<LooTestCase>,
        cfg: OnlineConfig,
    ) -> Result<Self, OnlineError> {
        if server.catalog().is_none() {
            return Err(OnlineError::Launch("serving snapshot carries no catalog".into()));
        }
        if base.is_empty() {
            return Err(OnlineError::Launch("base training set is empty".into()));
        }
        let gate = EvalGate::new(holdout, cfg.gate_k, cfg.gate_tolerance)?;
        let shared = Arc::new(Shared {
            server,
            log,
            gate,
            round: Mutex::new(RoundState {
                model,
                train: base,
                baseline: None,
                last: None,
                neg_rng: cfg.seed | 1, // xorshift state must be non-zero
            }),
            signal: Mutex::new(Signal { kicked: false }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            rounds: AtomicU64::new(0),
            published: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            skipped_events: AtomicU64::new(0),
            cfg,
        });
        let worker = if shared.cfg.background {
            let thread_shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("gmlfm-online-trainer".into())
                    .spawn(move || worker_loop(thread_shared))
                    .map_err(|e| OnlineError::Launch(format!("cannot spawn trainer thread: {e}")))?,
            )
        } else {
            None
        };
        Ok(Self { shared, worker })
    }

    /// Runs one retrain round synchronously in the calling thread
    /// (serialised with the background thread on the round mutex) and
    /// returns its outcome. Rounds with no new events are
    /// [`RoundOutcome::Skipped`] unless a previous round was rejected —
    /// a rejected candidate keeps training on the same data until it
    /// either passes or new events arrive.
    pub fn run_once(&self) -> RoundOutcome {
        run_round(&self.shared)
    }

    /// Nudges the background thread to consider a round now instead of
    /// at the next poll tick.
    pub fn kick(&self) {
        self.shared.lock_signal().kicked = true;
        self.shared.wake.notify_all();
    }

    /// Point-in-time counters and the last round's outcome.
    pub fn status(&self) -> OnlineStatus {
        // Independent monitoring counters; no reader derives
        // cross-variable invariants from them.
        OnlineStatus {
            rounds: self.shared.rounds.load(Ordering::Relaxed), // ORDERING: Relaxed — monitoring counter.
            published: self.shared.published.load(Ordering::Relaxed), // ORDERING: Relaxed — monitoring counter.
            rejected: self.shared.rejected.load(Ordering::Relaxed), // ORDERING: Relaxed — monitoring counter.
            skipped_events: self.shared.skipped_events.load(Ordering::Relaxed), // ORDERING: Relaxed — monitoring counter.
            pending: self.shared.log.pending(),
            last: self.shared.lock_round().last.clone(),
        }
    }

    /// The serving handle the loop publishes to.
    pub fn server(&self) -> &ModelServer {
        &self.shared.server
    }

    /// Stops the background thread (if any) after its current round and
    /// returns the final status.
    pub fn shutdown(mut self) -> OnlineStatus {
        self.stop_worker();
        self.status()
    }

    fn stop_worker(&mut self) {
        // ORDERING: Relaxed store is sufficient — the worker re-checks
        // the flag under the signal mutex, whose lock/unlock pair
        // already orders the store before the wait-side load.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for OnlineTrainer {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

impl std::fmt::Debug for OnlineTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = self.status();
        f.debug_struct("OnlineTrainer")
            .field("rounds", &status.rounds)
            .field("published", &status.published)
            .field("rejected", &status.rejected)
            .field("pending", &status.pending)
            .field("background", &self.worker.is_some())
            .finish_non_exhaustive()
    }
}

/// The background cadence loop: waits for the event-count trigger, the
/// cadence timer, or a [`OnlineTrainer::kick`], then runs a round.
fn worker_loop(shared: Arc<Shared>) {
    let mut last_round = Instant::now();
    loop {
        // ORDERING: Relaxed — the flag is a latch set once; the signal
        // mutex below synchronises the wake-up itself.
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let due = {
            let mut signal = shared.lock_signal();
            let pending = shared.log.pending();
            let due = signal.kicked
                || pending >= shared.cfg.min_events
                || (pending > 0 && last_round.elapsed() >= shared.cfg.cadence);
            if due {
                signal.kicked = false;
            } else {
                let (guard, _) = shared
                    .wake
                    .wait_timeout(signal, shared.cfg.poll)
                    .unwrap_or_else(|poison| poison.into_inner());
                drop(guard);
            }
            due
        };
        if due {
            run_round(&shared);
            last_round = Instant::now();
        }
    }
}

/// One complete retrain round; serialised on the round mutex.
fn run_round(shared: &Shared) -> RoundOutcome {
    let mut st = shared.lock_round();
    // ORDERING: Relaxed — monitoring counter, no invariants derived.
    shared.rounds.fetch_add(1, Ordering::Relaxed);

    // Pin one snapshot for the whole round: events validate against it,
    // the candidate's schema/catalog/seen assemble from it, and the gate
    // baseline is its frozen model.
    let (generation, snap) = shared.server.snapshot();
    let drained = shared.log.drain();
    let had_new = !drained.is_empty();
    for event in &drained {
        match fold_event(&mut st, shared, snap, event) {
            Ok(()) => {}
            Err(_) => {
                // The event validated at feed time but not against the
                // round's snapshot (e.g. an operator swapped in a
                // different catalog since): drop it, counted.
                // ORDERING: Relaxed — monitoring counter.
                shared.skipped_events.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let retry_rejected = matches!(st.last, Some(RoundOutcome::Rejected { .. }));
    if !had_new && !retry_rejected {
        return RoundOutcome::Skipped;
    }

    let outcome = retrain_and_publish(&mut st, shared, generation, snap);
    match &outcome {
        RoundOutcome::Published { .. } => {
            // ORDERING: Relaxed — monitoring counter.
            shared.published.fetch_add(1, Ordering::Relaxed);
        }
        RoundOutcome::Rejected { .. } => {
            // ORDERING: Relaxed — monitoring counter.
            shared.rejected.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    st.last = Some(outcome.clone());
    outcome
}

/// Converts one drained event into training instances: the validated
/// positive plus `negatives_per_event` sampled unseen negatives.
fn fold_event(
    st: &mut RoundState,
    shared: &Shared,
    snap: &ModelSnapshot,
    event: &Interaction,
) -> Result<(), OnlineError> {
    let feats = exec::resolve_interaction(&snap.schema, snap.catalog.as_ref(), event)?;
    st.train.push(Instance::new(feats, event.label()));
    let catalog = snap.catalog.as_ref().ok_or(gmlfm_service::RequestError::MissingCatalog)?;
    let n_items = catalog.n_items() as u32;
    if n_items <= 1 {
        return Ok(());
    }
    for _ in 0..shared.cfg.negatives_per_event {
        // A few rejection-sampling attempts; on a dense user the
        // negative is simply skipped rather than looping unboundedly.
        for _ in 0..8 {
            let candidate = (next_u64(&mut st.neg_rng) % u64::from(n_items)) as u32;
            let seen = candidate == event.item
                || snap.seen.as_ref().is_some_and(|s| s.contains(event.user, candidate));
            if seen {
                continue;
            }
            if let Some(neg_feats) = catalog.feats(event.user, candidate) {
                st.train.push(Instance::new(neg_feats, -1.0));
            }
            break;
        }
    }
    Ok(())
}

/// Warm-fit, freeze, rebuild the index, judge, publish.
fn retrain_and_publish(
    st: &mut RoundState,
    shared: &Shared,
    generation: u64,
    snap: &ModelSnapshot,
) -> RoundOutcome {
    if let Err(e) = st.model.warm_fit(&st.train, &shared.cfg.train) {
        return RoundOutcome::Failed { error: e.to_string() };
    }
    let frozen = match st.model.freeze() {
        Ok(frozen) => frozen,
        Err(e) => return RoundOutcome::Failed { error: e.to_string() },
    };
    let catalog = match snap.catalog.clone() {
        Some(catalog) => catalog,
        None => return RoundOutcome::Failed { error: "round snapshot carries no catalog".into() },
    };

    // Candidate seen sets: the snapshot's, folded with everything the
    // overlay accumulated (which includes every fed event).
    let mut seen = snap.seen.clone().unwrap_or_else(|| SeenItems::new(Vec::new()));
    seen.merge(&shared.server.overlay_seen());

    // Metric-mode snapshots rebuild their IVF index at the candidate's
    // weights — sublinear retrieval must never serve a stale index.
    let index = if snap.index.is_some() {
        IvfIndex::build(&frozen, &catalog, &IvfBuildOptions::default(), shared.cfg.par)
    } else {
        None
    };

    // Gate: candidate vs (cached) baseline on the pinned holdout.
    let baseline = match st.baseline {
        Some((cached_generation, metrics)) if cached_generation == generation => metrics,
        _ => match shared.gate.score(&snap.frozen, snap.catalog.as_ref(), shared.cfg.par) {
            Ok(metrics) => {
                st.baseline = Some((generation, metrics));
                metrics
            }
            Err(e) => return RoundOutcome::Failed { error: format!("baseline eval failed: {e}") },
        },
    };
    let candidate = match shared.gate.score(&frozen, Some(&catalog), shared.cfg.par) {
        Ok(metrics) => metrics,
        Err(e) => return RoundOutcome::Failed { error: format!("candidate eval failed: {e}") },
    };
    let report = shared.gate.judge(baseline, candidate);
    if !report.passed {
        return RoundOutcome::Rejected { report };
    }

    let snapshot = ModelSnapshot {
        schema: snap.schema.clone(),
        frozen,
        catalog: Some(catalog),
        seen: Some(seen),
        index,
    };
    match shared.server.swap(snapshot) {
        Ok(new_generation) => {
            st.baseline = Some((new_generation, candidate));
            RoundOutcome::Published { generation: new_generation, report }
        }
        Err(e) => RoundOutcome::Failed { error: format!("swap rejected: {e}") },
    }
}

/// xorshift64*: tiny deterministic sampling stream (not cryptographic).
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Everything [`OnlineTrainer::launch`] wires together, bundled: the
/// serving handle, the ingest [`OnlineHandle`], and the trainer. What
/// `Recommender::serve_online` returns.
pub struct OnlineServing {
    handle: OnlineHandle,
    trainer: OnlineTrainer,
}

impl OnlineServing {
    /// Builds the log + handle + trainer stack over a serving handle.
    /// See [`OnlineTrainer::launch`] for the validation rules.
    pub fn launch(
        server: ModelServer,
        model: Box<dyn OnlineModel>,
        base: Vec<Instance>,
        holdout: Vec<LooTestCase>,
        cfg: OnlineConfig,
    ) -> Result<Self, OnlineError> {
        let log = Arc::new(InteractionLog::new(cfg.log_capacity));
        let handle = OnlineHandle::new(server.clone(), Arc::clone(&log));
        let trainer = OnlineTrainer::launch(server, log, model, base, holdout, cfg)?;
        Ok(Self { handle, trainer })
    }

    /// The serving handle (cheap to clone into transports).
    pub fn server(&self) -> &ModelServer {
        self.trainer.server()
    }

    /// The ingest endpoint (cheap to clone; implements
    /// [`gmlfm_service::FeedSink`]).
    pub fn handle(&self) -> &OnlineHandle {
        &self.handle
    }

    /// The retrain loop.
    pub fn trainer(&self) -> &OnlineTrainer {
        &self.trainer
    }

    /// Stops the loop and returns its final status.
    pub fn shutdown(self) -> OnlineStatus {
        self.trainer.shutdown()
    }
}

impl std::fmt::Debug for OnlineServing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineServing")
            .field("trainer", &self.trainer)
            .finish_non_exhaustive()
    }
}
