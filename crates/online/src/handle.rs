//! The in-process ingest endpoint of the online loop.

use crate::log::{InteractionLog, PushOutcome};
use gmlfm_service::{exec, FeedAck, FeedSink, Interaction, ModelServer, RequestError, Response};
use std::sync::Arc;

/// The ingest half of the online loop: validates streamed
/// [`Interaction`]s against the *current* snapshot, folds them into the
/// server's live seen overlay **immediately** (so the item leaves the
/// user's top-n before any retrain), and enqueues them for the next
/// warm-start round.
///
/// Cheap to clone; implements [`FeedSink`] so `gmlfm-net` can serve the
/// wire `Feed` request through it without depending on this crate's
/// trainer.
#[derive(Clone)]
pub struct OnlineHandle {
    server: ModelServer,
    log: Arc<InteractionLog>,
}

impl OnlineHandle {
    /// A handle feeding `log` and folding exclusions into `server`.
    pub fn new(server: ModelServer, log: Arc<InteractionLog>) -> Self {
        Self { server, log }
    }

    /// The serving handle events are validated against.
    pub fn server(&self) -> &ModelServer {
        &self.server
    }

    /// The shared interaction log.
    pub fn log(&self) -> &Arc<InteractionLog> {
        &self.log
    }

    /// Validates and ingests one interaction:
    ///
    /// 1. full validation against the current snapshot's schema and
    ///    catalog (ids, named fields) — any failure is a typed
    ///    [`RequestError`] and nothing is recorded;
    /// 2. the `(user, item)` pair is folded into the serving seen
    ///    overlay, so `exclude_seen` top-n requests stop recommending
    ///    the item immediately;
    /// 3. the event is enqueued for the next retrain. A full log is the
    ///    retryable [`RequestError::Backpressure`] (the overlay fold
    ///    from step 2 is retained); a repeated [`Interaction::id`] is
    ///    acknowledged with `accepted: false` and not enqueued twice.
    pub fn feed(&self, event: &Interaction) -> Result<Response<FeedAck>, RequestError> {
        let (generation, snap) = self.server.snapshot();
        // Resolving the full training feature vector *is* the
        // validation: ids and named fields all checked, typed errors.
        let _feats = exec::resolve_interaction(&snap.schema, snap.catalog.as_ref(), event)?;
        self.server.record_seen(event.user, event.item)?;
        let ack = match self.log.push(event.clone())? {
            PushOutcome::Accepted { pending } => FeedAck { accepted: true, pending },
            PushOutcome::Duplicate => FeedAck { accepted: false, pending: self.log.pending() },
        };
        Ok(Response { generation, value: ack })
    }
}

impl FeedSink for OnlineHandle {
    fn feed(&self, event: &Interaction) -> Result<Response<FeedAck>, RequestError> {
        OnlineHandle::feed(self, event)
    }
}
