//! Typed failures of the online learning loop.

use gmlfm_service::RequestError;
use std::fmt;

/// Why an online-loop operation failed. Construction-time misuse and
/// per-round training failures are separated from request validation
/// ([`RequestError`]) so callers can tell a misconfigured loop from a
/// malformed event.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// An event or snapshot failed request-level validation.
    Request(RequestError),
    /// The loop cannot be launched as configured (no catalog, empty
    /// holdout, empty base training set, ...).
    Launch(String),
    /// A warm-start round failed inside the model's trainer.
    Train(String),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Request(e) => write!(f, "{e}"),
            OnlineError::Launch(reason) => write!(f, "online loop cannot launch: {reason}"),
            OnlineError::Train(reason) => write!(f, "warm-start round failed: {reason}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<RequestError> for OnlineError {
    fn from(e: RequestError) -> Self {
        OnlineError::Request(e)
    }
}
