//! End-to-end tests of the online loop: ingest folds exclusions before
//! any retrain, warm-start rounds publish only through the eval gate, a
//! planted regression is refused with a typed report, and readers
//! hammering the serving handle through real trainer-driven swaps never
//! block or observe a torn generation.

use gmlfm_data::{FieldKind, Instance, LooTestCase, Schema};
use gmlfm_models::fm::FmConfig;
use gmlfm_models::FactorizationMachine;
use gmlfm_online::{OnlineConfig, OnlineError, OnlineModel, OnlineServing, RoundOutcome};
use gmlfm_serve::{Freeze, FrozenModel, SecondOrder};
use gmlfm_service::{
    Interaction, ModelServer, ModelSnapshot, RequestError, ScoreRequest, SeenItems, TopNRequest,
};
use gmlfm_tensor::Matrix;
use gmlfm_train::TrainConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_USERS: usize = 6;
const N_ITEMS: usize = 10;
const N_FEATS: usize = N_USERS + N_ITEMS;

fn schema() -> Schema {
    Schema::from_specs(&[("user", N_USERS, FieldKind::User), ("item", N_ITEMS, FieldKind::Item)])
}

fn catalog() -> gmlfm_service::Catalog {
    gmlfm_service::Catalog::new(
        vec![1],
        (0..N_USERS as u32).map(|u| vec![u, N_USERS as u32]).collect(),
        (0..N_ITEMS as u32).map(|i| vec![N_USERS as u32 + i]).collect(),
    )
}

fn feats(user: u32, item: u32) -> Vec<u32> {
    vec![user, N_USERS as u32 + item]
}

/// Base training set: each user has interacted with items `u` and
/// `(u+1) % N_ITEMS` (positives) and disliked `(u+5) % N_ITEMS`.
fn base_train() -> Vec<Instance> {
    let mut out = Vec::new();
    for u in 0..N_USERS as u32 {
        out.push(Instance::new(feats(u, u % N_ITEMS as u32), 1.0));
        out.push(Instance::new(feats(u, (u + 1) % N_ITEMS as u32), 1.0));
        out.push(Instance::new(feats(u, (u + 5) % N_ITEMS as u32), -1.0));
    }
    out
}

/// Seen sets matching the base positives.
fn base_seen() -> SeenItems {
    SeenItems::new(
        (0..N_USERS as u32)
            .map(|u| {
                let mut row = vec![u % N_ITEMS as u32, (u + 1) % N_ITEMS as u32];
                row.sort_unstable();
                row
            })
            .collect(),
    )
}

/// One leave-one-out case per user; with `gate_tolerance: 1.0` any
/// candidate passes, so the cases only need to be *valid*.
fn holdout() -> Vec<LooTestCase> {
    (0..N_USERS as u32)
        .map(|u| LooTestCase {
            user: u,
            pos_item: (u + 2) % N_ITEMS as u32,
            negatives: vec![(u + 3) % N_ITEMS as u32, (u + 6) % N_ITEMS as u32],
        })
        .collect()
}

/// A warm-fitted FM plus the snapshot frozen from its current weights —
/// the invariant `OnlineTrainer::launch` documents.
fn fitted_fm(base: &[Instance]) -> (FactorizationMachine, ModelSnapshot) {
    let mut fm =
        FactorizationMachine::new(N_FEATS, FmConfig { k: 4, lr: 0.05, reg: 0.01, epochs: 5, seed: 7 });
    fm.fit_hogwild(base, 1);
    let snapshot = ModelSnapshot {
        schema: schema(),
        frozen: Freeze::freeze(&fm),
        catalog: Some(catalog()),
        seen: Some(base_seen()),
        index: None,
    };
    (fm, snapshot)
}

fn topn_items(server: &ModelServer, user: u32, n: usize) -> Vec<u32> {
    server
        .top_n(&TopNRequest::new(user, n))
        .expect("top-n serves")
        .value
        .into_iter()
        .map(|(item, _)| item)
        .collect()
}

#[test]
fn fed_events_leave_topn_immediately_and_publish_through_the_gate() {
    let base = base_train();
    let (fm, snapshot) = fitted_fm(&base);
    let server = ModelServer::new(snapshot).expect("consistent snapshot");
    let cfg = OnlineConfig {
        background: false,
        min_events: 1,
        gate_tolerance: 1.0,
        negatives_per_event: 1,
        ..OnlineConfig::default()
    };
    let serving =
        OnlineServing::launch(server.clone(), Box::new(fm), base, holdout(), cfg).expect("launch validates");

    // User 0 has seen {0, 1}; item 5 is still recommendable.
    assert!(topn_items(&server, 0, N_ITEMS).contains(&5), "item 5 starts recommendable");

    // Feed (user 0, item 5): acknowledged at the current generation and
    // excluded by the very next ranking request — before any retrain.
    let ack = serving.handle().feed(&Interaction::new(0, 5).id(1)).expect("feed validates");
    assert_eq!(ack.generation, 1);
    assert!(ack.value.accepted);
    assert_eq!(ack.value.pending, 1);
    assert!(!topn_items(&server, 0, N_ITEMS).contains(&5), "fed item leaves top-n immediately");
    assert_eq!(server.generation(), 1, "no retrain has happened yet");

    // A retried feed carrying the same id is acknowledged idempotently.
    let dup = serving
        .handle()
        .feed(&Interaction::new(0, 5).id(1))
        .expect("duplicate validates");
    assert!(!dup.value.accepted, "duplicate id is not enqueued twice");
    assert_eq!(dup.value.pending, 1);

    // The round warm-fits over base + the fed event and publishes.
    match serving.trainer().run_once() {
        RoundOutcome::Published { generation, report } => {
            assert_eq!(generation, 2);
            assert!(report.passed);
            assert_eq!(report.tolerance, 1.0);
        }
        other => panic!("expected a published round, got {other:?}"),
    }
    assert_eq!(server.generation(), 2);

    // The published snapshot's own seen sets carry the fed event, so the
    // exclusion survives even without the overlay.
    let (_, snap) = server.snapshot();
    let seen = snap.seen.as_ref().expect("published snapshot keeps seen sets");
    assert!(seen.contains(0, 5), "fed interaction folded into the published seen sets");

    // With nothing new pending, the next round is a no-op.
    assert_eq!(serving.trainer().run_once(), RoundOutcome::Skipped);

    let status = serving.shutdown();
    assert_eq!(status.published, 1);
    assert_eq!(status.rejected, 0);
    assert_eq!(status.pending, 0);
}

#[test]
fn backpressure_is_typed_and_retains_the_exclusion() {
    let base = base_train();
    let (fm, snapshot) = fitted_fm(&base);
    let server = ModelServer::new(snapshot).expect("consistent snapshot");
    let cfg =
        OnlineConfig { background: false, log_capacity: 1, gate_tolerance: 1.0, ..OnlineConfig::default() };
    let serving =
        OnlineServing::launch(server.clone(), Box::new(fm), base, holdout(), cfg).expect("launch validates");

    assert!(
        serving
            .handle()
            .feed(&Interaction::new(0, 5))
            .expect("fills the log")
            .value
            .accepted
    );
    let err = serving.handle().feed(&Interaction::new(1, 5)).expect_err("log is full");
    assert_eq!(err, RequestError::Backpressure { capacity: 1 });
    // The overlay fold happened before the log rejected the event: the
    // caller retries, but the exclusion is already serving.
    assert!(!topn_items(&server, 1, N_ITEMS).contains(&5), "exclusion survives backpressure");

    // Draining the log (one round) clears the pressure.
    assert!(matches!(serving.trainer().run_once(), RoundOutcome::Published { .. }));
    assert!(
        serving
            .handle()
            .feed(&Interaction::new(1, 5))
            .expect("room again")
            .value
            .accepted
    );
}

/// A trainer whose candidate is always the planted `worse` model —
/// simulating a retrain gone wrong (bad data, diverged SGD).
struct Saboteur {
    worse: FrozenModel,
}

impl OnlineModel for Saboteur {
    fn warm_fit(&mut self, _train: &[Instance], _cfg: &TrainConfig) -> Result<(), OnlineError> {
        Ok(())
    }

    fn freeze(&self) -> Result<FrozenModel, OnlineError> {
        Ok(self.worse.clone())
    }
}

/// A purely linear model whose item weights are `weight(i)`; ranking is
/// then exactly the descending order of `weight`.
fn linear_items(weight: impl Fn(u32) -> f64) -> FrozenModel {
    let mut w = vec![0.0; N_FEATS];
    for i in 0..N_ITEMS as u32 {
        w[N_USERS + i as usize] = weight(i);
    }
    FrozenModel::from_parts(0.0, w, Matrix::zeros(N_FEATS, 2), SecondOrder::Dot)
}

#[test]
fn a_planted_regression_is_refused_with_a_typed_report() {
    // Baseline ranks item 0 first for every user; every holdout case
    // has pos_item 0, so baseline HR@1 is exactly 1. The saboteur's
    // candidate reverses the ranking: its HR@1 is exactly 0.
    let baseline = linear_items(|i| (N_ITEMS as u32 - i) as f64);
    let saboteur = Saboteur { worse: linear_items(f64::from) };
    let cases: Vec<LooTestCase> = (0..N_USERS as u32)
        .map(|u| LooTestCase { user: u, pos_item: 0, negatives: vec![7, 8, 9] })
        .collect();

    let snapshot = ModelSnapshot {
        schema: schema(),
        frozen: baseline,
        catalog: Some(catalog()),
        seen: None,
        index: None,
    };
    let server = ModelServer::new(snapshot).expect("consistent snapshot");
    let cfg = OnlineConfig {
        background: false,
        min_events: 1,
        gate_k: 1,
        gate_tolerance: 0.0,
        negatives_per_event: 0,
        ..OnlineConfig::default()
    };
    let serving = OnlineServing::launch(server.clone(), Box::new(saboteur), base_train(), cases, cfg)
        .expect("launch validates");

    serving.handle().feed(&Interaction::new(0, 5)).expect("feed validates");
    match serving.trainer().run_once() {
        RoundOutcome::Rejected { report } => {
            assert!(!report.passed);
            assert_eq!(report.baseline.hr, 1.0, "baseline finds the pinned positive");
            assert_eq!(report.candidate.hr, 0.0, "the regression is measured, not assumed");
        }
        other => panic!("expected the gate to refuse, got {other:?}"),
    }

    // The regression never served: generation and ranking are untouched.
    assert_eq!(server.generation(), 1);
    assert_eq!(topn_items(&server, 0, 1), vec![0], "baseline ranking still serves");

    // A rejected round retries on the same data even with no new events
    // — and is refused again, deterministically.
    assert!(matches!(serving.trainer().run_once(), RoundOutcome::Rejected { .. }));
    let status = serving.shutdown();
    assert_eq!(status.published, 0);
    assert_eq!(status.rejected, 2);
}

#[test]
fn readers_never_block_or_tear_through_trainer_driven_swaps() {
    let base = base_train();
    let (fm, snapshot) = fitted_fm(&base);
    let server = ModelServer::new(snapshot).expect("consistent snapshot");
    let cfg = OnlineConfig {
        background: true,
        min_events: 1,
        poll: Duration::from_millis(2),
        cadence: Duration::from_millis(10),
        gate_tolerance: 1.0,
        negatives_per_event: 1,
        ..OnlineConfig::default()
    };
    let serving =
        OnlineServing::launch(server.clone(), Box::new(fm), base, holdout(), cfg).expect("launch validates");

    // Readers hammer scoring and ranking through whatever swaps the
    // background trainer publishes; every request must succeed and the
    // observed generation must never run backwards.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3u32)
        .map(|r| {
            let server = server.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut served = 0u64;
                // ORDERING: Relaxed — a stop latch; no data is published
                // through it.
                while !stop.load(Ordering::Relaxed) {
                    let user = (r + served as u32) % N_USERS as u32;
                    let scored = server.score(&ScoreRequest::pair(user, served as u32 % N_ITEMS as u32));
                    let resp = scored.expect("scores serve throughout retrains");
                    assert!(resp.value.is_finite());
                    assert!(resp.generation >= last_generation, "generation ran backwards");
                    last_generation = resp.generation;
                    let ranked = server.top_n(&TopNRequest::new(user, 3));
                    let resp = ranked.expect("top-n serves throughout retrains");
                    assert!(resp.generation >= last_generation, "generation ran backwards");
                    last_generation = resp.generation;
                    served += 2;
                }
                served
            })
        })
        .collect();

    // Feed two fresh items per user; each must be excluded by the very
    // next ranking request, before any retrain lands.
    let mut fed: Vec<(u32, u32)> = Vec::new();
    for (step, user) in (0..N_USERS as u32).chain(0..N_USERS as u32).enumerate() {
        let item = (user + 2 + 2 * (step / N_USERS) as u32) % N_ITEMS as u32;
        let ack = serving
            .handle()
            .feed(&Interaction::new(user, item).id(1000 + step as u64))
            .expect("feed validates");
        assert!(ack.value.accepted);
        assert!(!topn_items(&server, user, N_ITEMS).contains(&item), "excluded before retrain");
        fed.push((user, item));
        std::thread::sleep(Duration::from_millis(2));
    }

    // Wait for the background loop to publish at least one round.
    let deadline = Instant::now() + Duration::from_secs(10);
    while serving.trainer().status().published == 0 {
        assert!(Instant::now() < deadline, "background trainer never published");
        serving.trainer().kick();
        std::thread::sleep(Duration::from_millis(5));
    }

    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let served = reader.join().expect("reader saw no failure");
        assert!(served > 0, "readers made progress during retrains");
    }

    // Exclusions survive every published swap: the retrained snapshots
    // merged the overlay, and reads union it regardless.
    for &(user, item) in &fed {
        assert!(!topn_items(&server, user, N_ITEMS).contains(&item), "exclusion lost in a swap");
    }

    let status = serving.shutdown();
    assert!(status.published >= 1, "at least one gated publish: {status:?}");
    assert_eq!(server.generation(), 1 + status.published, "one generation per publish");
}
