//! Property tests: randomly composed graphs still backpropagate exactly
//! (finite-difference certified), and gradients obey linearity.

use gmlfm_autograd::{gradient_check, Graph, ParamSet, Var};
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use proptest::prelude::*;

/// A random sequence of unary/binary smooth ops applied to two parameter
/// leaves, ending in a scalar reduction.
fn build_random(ops: &[u8]) -> impl Fn(&mut Graph, &ParamSet) -> Var + '_ {
    move |g, p| {
        let ids: Vec<_> = p.iter().map(|(id, _)| id).collect();
        let mut cur = g.param(p, ids[0]);
        let other = g.param(p, ids[1]);
        for &op in ops {
            cur = match op % 7 {
                0 => g.add(cur, other),
                1 => g.mul(cur, other),
                2 => g.tanh(cur),
                3 => g.sigmoid(cur),
                4 => g.square(cur),
                5 => g.scale(cur, 0.7),
                _ => {
                    let t = g.transpose(cur);
                    g.transpose(t)
                }
            };
        }
        g.mean_all(cur)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn random_smooth_graphs_pass_gradient_check(
        ops in proptest::collection::vec(0u8..7, 1..8),
        seed in 0u64..500,
    ) {
        let mut rng = seeded_rng(seed);
        let mut params = ParamSet::new();
        params.add("a", normal(&mut rng, 3, 3, 0.0, 0.5));
        params.add("b", normal(&mut rng, 3, 3, 0.0, 0.5));
        let report = gradient_check(&mut params, 1e-6, build_random(&ops));
        prop_assert!(report.passes(1e-6), "{report:?} for ops {ops:?}");
    }

    #[test]
    fn gradient_of_scaled_loss_scales(seed in 0u64..200, alpha in 0.1f64..5.0) {
        let mut rng = seeded_rng(seed);
        let mut params = ParamSet::new();
        let a = params.add("a", normal(&mut rng, 2, 3, 0.0, 1.0));

        let grad_for = |scale: f64, params: &ParamSet| {
            let mut g = Graph::new();
            let av = g.param(params, a);
            let sq = g.square(av);
            let s = g.sum_all(sq);
            let loss = g.scale(s, scale);
            g.backward(loss).get(a).unwrap().clone()
        };
        let g1 = grad_for(1.0, &params);
        let ga = grad_for(alpha, &params);
        for (x, y) in g1.as_slice().iter().zip(ga.as_slice()) {
            prop_assert!((x * alpha - y).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_of_sum_is_sum_of_gradients(seed in 0u64..200) {
        // d(f+g)/dp == df/dp + dg/dp with f = sum(a^2), g = sum(tanh(a)).
        let mut rng = seeded_rng(seed);
        let mut params = ParamSet::new();
        let a = params.add("a", normal(&mut rng, 2, 2, 0.0, 1.0));

        let grad_f = {
            let mut g = Graph::new();
            let av = g.param(&params, a);
            let sq = g.square(av);
            let loss = g.sum_all(sq);
            g.backward(loss).get(a).unwrap().clone()
        };
        let grad_g = {
            let mut g = Graph::new();
            let av = g.param(&params, a);
            let t = g.tanh(av);
            let loss = g.sum_all(t);
            g.backward(loss).get(a).unwrap().clone()
        };
        let grad_sum = {
            let mut g = Graph::new();
            let av = g.param(&params, a);
            let sq = g.square(av);
            let f = g.sum_all(sq);
            let t = g.tanh(av);
            let gg = g.sum_all(t);
            let loss = g.add(f, gg);
            g.backward(loss).get(a).unwrap().clone()
        };
        for ((f, gg), s) in grad_f.as_slice().iter().zip(grad_g.as_slice()).zip(grad_sum.as_slice()) {
            prop_assert!((f + gg - s).abs() < 1e-9);
        }
    }

    #[test]
    fn constants_receive_no_gradients(seed in 0u64..100) {
        let mut rng = seeded_rng(seed);
        let mut params = ParamSet::new();
        let a = params.add("a", normal(&mut rng, 2, 2, 0.0, 1.0));
        let mut g = Graph::new();
        let av = g.param(&params, a);
        let c = g.constant(normal(&mut rng, 2, 2, 0.0, 1.0));
        let prod = g.mul(av, c);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        // Exactly one parameter entry, no spurious ones.
        prop_assert_eq!(grads.iter().count(), 1);
        prop_assert!(grads.get(a).is_some());
    }
}
