//! The tape: eager forward evaluation, reverse-mode backward pass.

use crate::params::{Gradients, ParamId, ParamSet};
use gmlfm_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Recorded operation. Each variant stores the indices of its inputs plus
/// whatever forward-pass data its backward rule needs.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf holding a constant (no gradient flows out).
    Constant,
    /// Leaf holding a copy of a trainable parameter.
    Param(ParamId),
    Add(usize, usize),
    Sub(usize, usize),
    /// Element-wise (Hadamard) product.
    Mul(usize, usize),
    /// Element-wise quotient `a / b`.
    Div(usize, usize),
    MatMul(usize, usize),
    /// `[B,k] + [1,k]`: add a row vector to every row (bias add).
    AddRowBroadcast(usize, usize),
    /// `[B,k] * [B,1]`: scale each row by a per-row scalar.
    MulColBroadcast(usize, usize),
    Scale(usize, f64),
    /// The constant is kept for tape readability in Debug output even
    /// though the backward rule (identity) never reads it.
    AddScalar(usize, #[allow(dead_code)] f64),
    Neg(usize),
    Square(usize),
    Abs(usize),
    /// `x^p` for `x >= 0` (used after [`Op::Abs`] for Minkowski distances).
    PowNonNeg(usize, f64),
    Sqrt(usize),
    Tanh(usize),
    Sigmoid(usize),
    Relu(usize),
    Exp(usize),
    Ln(usize),
    /// Sum of all entries, producing a `1x1` matrix.
    SumAll(usize),
    /// Mean of all entries, producing a `1x1` matrix.
    MeanAll(usize),
    /// Row-wise sum: `[B,k] -> [B,1]`.
    SumRows(usize),
    /// Column-wise sum: `[B,k] -> [1,k]`.
    SumCols(usize),
    /// Row-wise max with stored argmax columns: `[B,k] -> [B,1]`.
    MaxRows(usize, Vec<usize>),
    /// Row gather (embedding lookup): input `[N,k]`, output `[B,k]`.
    GatherRows(usize, Vec<usize>),
    /// Horizontal concatenation `[A | B]`.
    ConcatCols(usize, usize),
    /// Column slice `[start, end)`.
    SliceCols(usize, usize, usize),
    /// Inverted dropout with the stored keep-mask already scaled by
    /// `1/(1-p)`.
    Dropout(usize, Matrix),
    /// Row-wise softmax.
    SoftmaxRows(usize),
    Transpose(usize),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// A dynamically built computation graph.
///
/// Values are computed eagerly as operations are recorded, so a `Graph` is
/// also usable for pure inference; [`Graph::backward`] replays the tape in
/// reverse to produce exact gradients for every [`ParamSet`] leaf.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    n_params_seen: usize,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Forward value of a `1x1` node as a scalar.
    ///
    /// # Panics
    /// Panics when the node is not `1x1`.
    pub fn scalar(&self, v: Var) -> f64 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar: node is {}x{}", m.rows(), m.cols());
        m.as_slice()[0]
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Records a constant leaf. No gradient is produced for it.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(Op::Constant, value)
    }

    /// Records a parameter leaf by copying the current parameter value.
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        self.n_params_seen = self.n_params_seen.max(id.index() + 1);
        self.push(Op::Param(id), params.get(id).clone())
    }

    /// Element-wise sum of two same-shape nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.push(Op::Add(a.0, b.0), v)
    }

    /// Element-wise difference `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.push(Op::Sub(a.0, b.0), v)
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Mul(a.0, b.0), v)
    }

    /// Element-wise quotient `a / b`. The caller must keep `b` bounded away
    /// from zero (used for cosine-distance normalisation).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.zip_with(&self.nodes[b.0].value, |x, y| x / y);
        self.push(Op::Div(a.0, b.0), v)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a.0, b.0), v)
    }

    /// Adds a `1 x k` row vector to every row of a `B x k` node.
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let (am, rm) = (&self.nodes[a.0].value, &self.nodes[row.0].value);
        assert_eq!(rm.rows(), 1, "add_row_broadcast: rhs must be 1 x k");
        assert_eq!(am.cols(), rm.cols(), "add_row_broadcast: col mismatch");
        let mut v = am.clone();
        for r in 0..v.rows() {
            for (o, &b) in v.row_mut(r).iter_mut().zip(rm.row(0)) {
                *o += b;
            }
        }
        self.push(Op::AddRowBroadcast(a.0, row.0), v)
    }

    /// Multiplies each row of a `B x k` node by the matching entry of a
    /// `B x 1` node.
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let (am, cm) = (&self.nodes[a.0].value, &self.nodes[col.0].value);
        assert_eq!(cm.cols(), 1, "mul_col_broadcast: rhs must be B x 1");
        assert_eq!(am.rows(), cm.rows(), "mul_col_broadcast: row mismatch");
        let mut v = am.clone();
        for r in 0..v.rows() {
            let s = cm[(r, 0)];
            for o in v.row_mut(r) {
                *o *= s;
            }
        }
        self.push(Op::MulColBroadcast(a.0, col.0), v)
    }

    /// Multiplies every entry by a constant.
    pub fn scale(&mut self, a: Var, alpha: f64) -> Var {
        let v = self.nodes[a.0].value.scale(alpha);
        self.push(Op::Scale(a.0, alpha), v)
    }

    /// Adds a constant to every entry.
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + c);
        self.push(Op::AddScalar(a.0, c), v)
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = -&self.nodes[a.0].value;
        self.push(Op::Neg(a.0), v)
    }

    /// Element-wise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x * x);
        self.push(Op::Square(a.0), v)
    }

    /// Element-wise absolute value (subgradient 0 at 0).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::abs);
        self.push(Op::Abs(a.0), v)
    }

    /// Element-wise `x^p` for non-negative inputs.
    pub fn pow_non_neg(&mut self, a: Var, p: f64) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0).powf(p));
        self.push(Op::PowNonNeg(a.0, p), v)
    }

    /// Element-wise square root of non-negative inputs.
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0).sqrt());
        self.push(Op::Sqrt(a.0), v)
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        self.push(Op::Tanh(a.0), v)
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(sigmoid_scalar);
        self.push(Op::Sigmoid(a.0), v)
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a.0), v)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::exp);
        self.push(Op::Exp(a.0), v)
    }

    /// Element-wise natural logarithm (caller keeps inputs positive).
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::ln);
        self.push(Op::Ln(a.0), v)
    }

    /// Numerically stable `ln(sigmoid(x))`, used by the BPR loss.
    pub fn ln_sigmoid(&mut self, a: Var) -> Var {
        // ln σ(x) = -softplus(-x); composed from primitives so the backward
        // pass needs no dedicated rule: σ(x) then ln would overflow for very
        // negative x, so clamp through sigmoid which is already stable.
        let s = self.sigmoid(a);
        let s = self.add_scalar(s, 1e-12);
        self.ln(s)
    }

    /// Sum of all entries as a `1x1` node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Matrix::filled(1, 1, self.nodes[a.0].value.sum());
        self.push(Op::SumAll(a.0), v)
    }

    /// Mean of all entries as a `1x1` node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Matrix::filled(1, 1, self.nodes[a.0].value.mean());
        self.push(Op::MeanAll(a.0), v)
    }

    /// Row-wise sums: `[B,k] -> [B,1]`.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sum_rows();
        self.push(Op::SumRows(a.0), v)
    }

    /// Column-wise sums: `[B,k] -> [1,k]`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.sum_cols();
        self.push(Op::SumCols(a.0), v)
    }

    /// Row-wise max (Chebyshev distance): `[B,k] -> [B,1]`.
    ///
    /// Gradient flows only to the arg-max entry of each row, the standard
    /// subgradient choice.
    pub fn max_rows(&mut self, a: Var) -> Var {
        let m = &self.nodes[a.0].value;
        let mut argmax = Vec::with_capacity(m.rows());
        let mut v = Matrix::zeros(m.rows(), 1);
        for r in 0..m.rows() {
            let row = m.row(r);
            let (mut best_c, mut best) = (0usize, f64::NEG_INFINITY);
            for (c, &x) in row.iter().enumerate() {
                if x > best {
                    best = x;
                    best_c = c;
                }
            }
            argmax.push(best_c);
            v[(r, 0)] = best;
        }
        self.push(Op::MaxRows(a.0, argmax), v)
    }

    /// Embedding lookup: gathers `indices` rows of a `[N,k]` node into a
    /// `[B,k]` node; the backward pass scatter-adds into the source rows.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let v = self.nodes[a.0].value.gather_rows(indices);
        self.push(Op::GatherRows(a.0, indices.to_vec()), v)
    }

    /// Horizontal concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hcat(&self.nodes[b.0].value);
        self.push(Op::ConcatCols(a.0, b.0), v)
    }

    /// Column slice `a[:, start..end]`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = &self.nodes[a.0].value;
        assert!(start < end && end <= src.cols(), "slice_cols: [{start},{end}) out of {} cols", src.cols());
        let mut v = Matrix::zeros(src.rows(), end - start);
        for r in 0..src.rows() {
            v.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
        }
        self.push(Op::SliceCols(a.0, start, end), v)
    }

    /// Inverted dropout: keeps each entry with probability `1-p`, scaling
    /// kept entries by `1/(1-p)` so the expectation is unchanged. With
    /// `p == 0` this is the identity (used at evaluation time).
    pub fn dropout(&mut self, a: Var, p: f64, rng: &mut StdRng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout: p must be in [0,1), got {p}");
        if p == 0.0 {
            // Identity via a kept-everything mask keeps the tape uniform.
            let shape = self.nodes[a.0].value.shape();
            let mask = Matrix::filled(shape.0, shape.1, 1.0);
            let v = self.nodes[a.0].value.clone();
            return self.push(Op::Dropout(a.0, mask), v);
        }
        let keep = 1.0 - p;
        let src = &self.nodes[a.0].value;
        let mask =
            Matrix::from_fn(
                src.rows(),
                src.cols(),
                |_, _| {
                    if rng.gen::<f64>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                },
            );
        let v = src.hadamard(&mask);
        self.push(Op::Dropout(a.0, mask), v)
    }

    /// Row-wise softmax (used by the AFM attention network).
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let src = &self.nodes[a.0].value;
        let mut v = src.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut z = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                z += *x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        self.push(Op::SoftmaxRows(a.0), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.transpose();
        self.push(Op::Transpose(a.0), v)
    }

    /// Convenience: mean squared error between a prediction column and a
    /// target column, as a `1x1` node.
    pub fn mse(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.square(d);
        self.mean_all(sq)
    }

    /// Runs the backward pass from a `1x1` loss node, returning gradients
    /// for every [`ParamSet`] leaf that participated.
    ///
    /// # Panics
    /// Panics when `loss` is not `1x1`.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.nodes[loss.0].value.shape(), (1, 1), "backward: loss must be a 1x1 node");
        let mut adj: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        adj[loss.0] = Some(Matrix::filled(1, 1, 1.0));
        let mut grads = Gradients::new(self.n_params_seen);

        for idx in (0..=loss.0).rev() {
            let Some(g) = adj[idx].take() else { continue };
            match &self.nodes[idx].op {
                Op::Constant => {}
                Op::Param(id) => grads.accumulate(*id, &g),
                Op::Add(a, b) => {
                    accumulate(&mut adj, *a, &g);
                    accumulate(&mut adj, *b, &g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut adj, *a, &g);
                    accumulate_scaled(&mut adj, *b, &g, -1.0);
                }
                Op::Mul(a, b) => {
                    let da = g.hadamard(&self.nodes[*b].value);
                    let db = g.hadamard(&self.nodes[*a].value);
                    accumulate(&mut adj, *a, &da);
                    accumulate(&mut adj, *b, &db);
                }
                Op::Div(a, b) => {
                    let bv = &self.nodes[*b].value;
                    let da = g.zip_with(bv, |gi, bi| gi / bi);
                    let av = &self.nodes[*a].value;
                    let db = Matrix::from_fn(bv.rows(), bv.cols(), |r, c| {
                        -g[(r, c)] * av[(r, c)] / (bv[(r, c)] * bv[(r, c)])
                    });
                    accumulate(&mut adj, *a, &da);
                    accumulate(&mut adj, *b, &db);
                }
                Op::MatMul(a, b) => {
                    let da = g.matmul_nt(&self.nodes[*b].value);
                    let db = self.nodes[*a].value.matmul_tn(&g);
                    accumulate(&mut adj, *a, &da);
                    accumulate(&mut adj, *b, &db);
                }
                Op::AddRowBroadcast(a, row) => {
                    accumulate(&mut adj, *a, &g);
                    let drow = g.sum_cols();
                    accumulate(&mut adj, *row, &drow);
                }
                Op::MulColBroadcast(a, col) => {
                    let cv = &self.nodes[*col].value;
                    let av = &self.nodes[*a].value;
                    let mut da = g.clone();
                    let mut dcol = Matrix::zeros(cv.rows(), 1);
                    for r in 0..da.rows() {
                        let s = cv[(r, 0)];
                        let mut acc = 0.0;
                        for (o, &aval) in da.row_mut(r).iter_mut().zip(av.row(r)) {
                            acc += *o * aval;
                            *o *= s;
                        }
                        dcol[(r, 0)] = acc;
                    }
                    accumulate(&mut adj, *a, &da);
                    accumulate(&mut adj, *col, &dcol);
                }
                Op::Scale(a, alpha) => accumulate_scaled(&mut adj, *a, &g, *alpha),
                Op::AddScalar(a, _) => accumulate(&mut adj, *a, &g),
                Op::Neg(a) => accumulate_scaled(&mut adj, *a, &g, -1.0),
                Op::Square(a) => {
                    let da = g.zip_with(&self.nodes[*a].value, |gi, ai| 2.0 * ai * gi);
                    accumulate(&mut adj, *a, &da);
                }
                Op::Abs(a) => {
                    let da = g.zip_with(&self.nodes[*a].value, |gi, ai| gi * sign(ai));
                    accumulate(&mut adj, *a, &da);
                }
                Op::PowNonNeg(a, p) => {
                    let da = g.zip_with(&self.nodes[*a].value, |gi, ai| {
                        if ai > 0.0 {
                            gi * p * ai.powf(p - 1.0)
                        } else {
                            0.0
                        }
                    });
                    accumulate(&mut adj, *a, &da);
                }
                Op::Sqrt(a) => {
                    let y = &self.nodes[idx].value;
                    let da = g.zip_with(y, |gi, yi| if yi > 0.0 { gi * 0.5 / yi } else { 0.0 });
                    accumulate(&mut adj, *a, &da);
                }
                Op::Tanh(a) => {
                    let da = g.zip_with(&self.nodes[idx].value, |gi, yi| gi * (1.0 - yi * yi));
                    accumulate(&mut adj, *a, &da);
                }
                Op::Sigmoid(a) => {
                    let da = g.zip_with(&self.nodes[idx].value, |gi, yi| gi * yi * (1.0 - yi));
                    accumulate(&mut adj, *a, &da);
                }
                Op::Relu(a) => {
                    let da = g.zip_with(&self.nodes[*a].value, |gi, ai| if ai > 0.0 { gi } else { 0.0 });
                    accumulate(&mut adj, *a, &da);
                }
                Op::Exp(a) => {
                    let da = g.hadamard(&self.nodes[idx].value);
                    accumulate(&mut adj, *a, &da);
                }
                Op::Ln(a) => {
                    let da = g.zip_with(&self.nodes[*a].value, |gi, ai| gi / ai);
                    accumulate(&mut adj, *a, &da);
                }
                Op::SumAll(a) => {
                    let s = g.as_slice()[0];
                    let src = &self.nodes[*a].value;
                    let da = Matrix::filled(src.rows(), src.cols(), s);
                    accumulate(&mut adj, *a, &da);
                }
                Op::MeanAll(a) => {
                    let src = &self.nodes[*a].value;
                    let s = g.as_slice()[0] / src.len() as f64;
                    let da = Matrix::filled(src.rows(), src.cols(), s);
                    accumulate(&mut adj, *a, &da);
                }
                Op::SumRows(a) => {
                    let src = &self.nodes[*a].value;
                    let da = Matrix::from_fn(src.rows(), src.cols(), |r, _| g[(r, 0)]);
                    accumulate(&mut adj, *a, &da);
                }
                Op::SumCols(a) => {
                    let src = &self.nodes[*a].value;
                    let da = Matrix::from_fn(src.rows(), src.cols(), |_, c| g[(0, c)]);
                    accumulate(&mut adj, *a, &da);
                }
                Op::MaxRows(a, argmax) => {
                    let src = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(src.rows(), src.cols());
                    for (r, &c) in argmax.iter().enumerate() {
                        da[(r, c)] = g[(r, 0)];
                    }
                    accumulate(&mut adj, *a, &da);
                }
                Op::GatherRows(a, indices) => {
                    let src = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(src.rows(), src.cols());
                    for (r, &idx_row) in indices.iter().enumerate() {
                        for (o, &gi) in da.row_mut(idx_row).iter_mut().zip(g.row(r)) {
                            *o += gi;
                        }
                    }
                    accumulate(&mut adj, *a, &da);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.nodes[*a].value.cols();
                    let bc = self.nodes[*b].value.cols();
                    let rows = g.rows();
                    let mut da = Matrix::zeros(rows, ac);
                    let mut db = Matrix::zeros(rows, bc);
                    for r in 0..rows {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut adj, *a, &da);
                    accumulate(&mut adj, *b, &db);
                }
                Op::SliceCols(a, start, _end) => {
                    let src = &self.nodes[*a].value;
                    let mut da = Matrix::zeros(src.rows(), src.cols());
                    for r in 0..g.rows() {
                        da.row_mut(r)[*start..*start + g.cols()].copy_from_slice(g.row(r));
                    }
                    accumulate(&mut adj, *a, &da);
                }
                Op::Dropout(a, mask) => {
                    let da = g.hadamard(mask);
                    accumulate(&mut adj, *a, &da);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[idx].value;
                    let mut da = Matrix::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let gy: f64 = g.row(r).iter().zip(y.row(r)).map(|(gi, yi)| gi * yi).sum();
                        for ((o, &gi), &yi) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r)) {
                            *o = yi * (gi - gy);
                        }
                    }
                    accumulate(&mut adj, *a, &da);
                }
                Op::Transpose(a) => {
                    let da = g.transpose();
                    accumulate(&mut adj, *a, &da);
                }
            }
        }
        grads
    }
}

#[inline]
fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

#[inline]
fn sigmoid_scalar(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn accumulate(adj: &mut [Option<Matrix>], idx: usize, g: &Matrix) {
    match &mut adj[idx] {
        Some(existing) => existing.axpy(1.0, g),
        slot @ None => *slot = Some(g.clone()),
    }
}

fn accumulate_scaled(adj: &mut [Option<Matrix>], idx: usize, g: &Matrix, alpha: f64) {
    match &mut adj[idx] {
        Some(existing) => existing.axpy(alpha, g),
        slot @ None => *slot = Some(g.scale(alpha)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::{approx_eq, seeded_rng};

    #[test]
    fn forward_values_are_eager() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::row_vector(&[1.0, 2.0]));
        let b = g.constant(Matrix::row_vector(&[3.0, 4.0]));
        let c = g.add(a, b);
        assert_eq!(g.value(c).as_slice(), &[4.0, 6.0]);
        let d = g.mul(a, b);
        assert_eq!(g.value(d).as_slice(), &[3.0, 8.0]);
        let s = g.sum_all(d);
        assert_eq!(g.scalar(s), 11.0);
    }

    #[test]
    fn backward_through_linear_layer() {
        // loss = mean((x W + b - t)^2) with hand-checked gradient.
        let mut params = ParamSet::new();
        let w = params.add("w", Matrix::from_rows(&[&[1.0], &[1.0]]));
        let b = params.add("b", Matrix::from_rows(&[&[0.0]]));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let bv = g.param(&params, b);
        let x = g.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let t = g.constant(Matrix::from_rows(&[&[2.0], &[8.0]]));
        let xw = g.matmul(x, wv);
        let pred = g.add_row_broadcast(xw, bv);
        let loss = g.mse(pred, t);
        // residuals: (3-2)=1, (7-8)=-1; loss = (1+1)/2 = 1
        assert!((g.scalar(loss) - 1.0).abs() < 1e-12);
        let grads = g.backward(loss);
        // dL/dpred = [2r/2] = [1, -1] scaled by 1/B... mean over 2 entries:
        // dL/dpred_i = 2 * r_i / 2 = r_i => [1, -1]
        // dW = xᵀ dpred = [1*1 + 3*(-1); 2*1 + 4*(-1)] = [-2; -2]
        let gw = grads.get(w).unwrap();
        assert!(approx_eq(gw, &Matrix::from_rows(&[&[-2.0], &[-2.0]]), 1e-12));
        // db = sum dpred = 0
        let gb = grads.get(b).unwrap();
        assert!(approx_eq(gb, &Matrix::from_rows(&[&[0.0]]), 1e-12));
    }

    #[test]
    fn gather_rows_scatter_adds() {
        let mut params = ParamSet::new();
        let e = params.add("emb", Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
        let mut g = Graph::new();
        let ev = g.param(&params, e);
        let got = g.gather_rows(ev, &[2, 0, 2]);
        assert_eq!(g.value(got).row(0), &[5.0, 6.0]);
        let s = g.sum_all(got);
        let grads = g.backward(s);
        let ge = grads.get(e).unwrap();
        // Row 2 gathered twice => grad 2, row 0 once => 1, row 1 never => 0.
        assert!(approx_eq(ge, &Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 0.0], &[2.0, 2.0]]), 1e-12));
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let mut g = Graph::new();
        let mut rng = seeded_rng(3);
        let a = g.constant(Matrix::filled(2, 3, 2.0));
        let d = g.dropout(a, 0.0, &mut rng);
        assert!(approx_eq(g.value(d), &Matrix::filled(2, 3, 2.0), 0.0));
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut g = Graph::new();
        let mut rng = seeded_rng(11);
        let a = g.constant(Matrix::filled(100, 100, 1.0));
        let d = g.dropout(a, 0.4, &mut rng);
        let mean = g.value(d).mean();
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let s = g.softmax_rows(a);
        let v = g.value(s);
        for r in 0..2 {
            let sum: f64 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(v.row(r).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn max_rows_routes_gradient_to_argmax() {
        let mut params = ParamSet::new();
        let p = params.add("p", Matrix::from_rows(&[&[1.0, 5.0, 3.0]]));
        let mut g = Graph::new();
        let pv = g.param(&params, p);
        let m = g.max_rows(pv);
        assert_eq!(g.value(m)[(0, 0)], 5.0);
        let s = g.sum_all(m);
        let grads = g.backward(s);
        assert_eq!(grads.get(p).unwrap().as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn scalar_panics_on_non_scalar() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::zeros(2, 2));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.scalar(a)));
        assert!(result.is_err());
    }

    #[test]
    fn ln_sigmoid_is_stable_for_large_negative_inputs() {
        let mut g = Graph::new();
        let a = g.constant(Matrix::row_vector(&[-100.0, 0.0, 100.0]));
        let l = g.ln_sigmoid(a);
        let v = g.value(l);
        assert!(v.is_finite());
        assert!((v.as_slice()[1] - (0.5f64.ln())).abs() < 1e-9);
        assert!(v.as_slice()[2].abs() < 1e-9);
    }
}
