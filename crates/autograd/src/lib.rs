//! # gmlfm-autograd
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`gmlfm_tensor::Matrix`].
//!
//! The GML-FM paper trains a dozen models (FM variants, MLP towers, an
//! attention network, a compressed interaction network, metric-learning
//! distances) with SGD/Adam. The authors used PyTorch; the Rust deep
//! learning ecosystem is thin for this kind of custom, small-scale dense
//! training, so this crate provides the minimal engine those models need:
//!
//! * a [`ParamSet`] registry of named trainable matrices,
//! * a [`Graph`] that records operations eagerly (values computed at
//!   construction) and replays the tape backwards to accumulate exact
//!   gradients,
//! * a finite-difference [`check`] module that certifies every operator's
//!   backward rule against central differences.
//!
//! The operator inventory is deliberately exactly what the workspace's
//! models require — dense matmul, broadcasting adds/muls, element-wise
//! non-linearities, reductions, row gathers for embedding lookups, dropout,
//! and row-wise softmax — rather than a general tensor IR.
//!
//! ```
//! use gmlfm_autograd::{Graph, ParamSet};
//! use gmlfm_tensor::Matrix;
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", Matrix::from_rows(&[&[2.0], &[3.0]]));
//! let mut g = Graph::new();
//! let wv = g.param(&params, w);
//! let x = g.constant(Matrix::row_vector(&[4.0, 5.0]));
//! let y = g.matmul(x, wv); // 1x1 = [4*2 + 5*3] = [23]
//! let loss = g.square(y);
//! let grads = g.backward(loss);
//! // d(y^2)/dw = 2*y*x = [184, 230]
//! let gw = grads.get(w).unwrap();
//! assert_eq!(gw.as_slice(), &[184.0, 230.0]);
//! ```

pub mod check;
pub mod graph;
pub mod params;

pub use check::gradient_check;
pub use graph::{Graph, Var};
pub use params::{Gradients, ParamId, ParamSet};
