//! Finite-difference certification of backward rules.
//!
//! Every operator in [`crate::graph`] is validated by comparing its
//! analytic gradient against a central difference of the loss. This is the
//! safety net that lets the rest of the workspace trust the substrate the
//! way it would trust PyTorch.

use crate::{Gradients, Graph, ParamSet, Var};

/// Result of a [`gradient_check`]: the largest absolute and relative error
/// observed across all checked parameter entries.
#[derive(Debug, Clone, Copy)]
pub struct CheckReport {
    /// Largest `|analytic - numeric|`.
    pub max_abs_err: f64,
    /// Largest `|analytic - numeric| / max(1, |analytic|, |numeric|)`.
    pub max_rel_err: f64,
    /// Number of scalar entries compared.
    pub entries: usize,
}

impl CheckReport {
    /// True when both error measures are below `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compares the analytic gradient of `build` against central finite
/// differences.
///
/// `build` must be deterministic: called repeatedly with the same
/// parameters it must produce the same scalar loss (use dropout `p = 0` or
/// a freshly seeded RNG inside the closure).
///
/// Central differences use step `eps`; with `f64` and smooth operators,
/// `eps = 1e-6` typically yields agreement to ~1e-8.
pub fn gradient_check(
    params: &mut ParamSet,
    eps: f64,
    build: impl Fn(&mut Graph, &ParamSet) -> Var,
) -> CheckReport {
    let analytic: Gradients = {
        let mut g = Graph::new();
        let loss = build(&mut g, params);
        g.backward(loss)
    };

    let mut report = CheckReport { max_abs_err: 0.0, max_rel_err: 0.0, entries: 0 };
    let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
    for id in ids {
        let n = params.get(id).len();
        for i in 0..n {
            let original = params.get(id).as_slice()[i];

            params.get_mut(id).as_mut_slice()[i] = original + eps;
            let up = eval_loss(params, &build);
            params.get_mut(id).as_mut_slice()[i] = original - eps;
            let down = eval_loss(params, &build);
            params.get_mut(id).as_mut_slice()[i] = original;

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic.get(id).map_or(0.0, |m| m.as_slice()[i]);
            let abs_err = (a - numeric).abs();
            let rel_err = abs_err / a.abs().max(numeric.abs()).max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs_err);
            report.max_rel_err = report.max_rel_err.max(rel_err);
            report.entries += 1;
        }
    }
    report
}

fn eval_loss(params: &ParamSet, build: &impl Fn(&mut Graph, &ParamSet) -> Var) -> f64 {
    let mut g = Graph::new();
    let loss = build(&mut g, params);
    g.scalar(loss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::init::normal;
    use gmlfm_tensor::{seeded_rng, Matrix};

    const EPS: f64 = 1e-6;
    const TOL: f64 = 1e-7;

    fn rand_params(shapes: &[(&str, usize, usize)], seed: u64) -> ParamSet {
        let mut rng = seeded_rng(seed);
        let mut ps = ParamSet::new();
        for &(name, r, c) in shapes {
            ps.add(name, normal(&mut rng, r, c, 0.0, 0.8));
        }
        ps
    }

    fn id_of(params: &ParamSet, idx: usize) -> crate::ParamId {
        params.iter().nth(idx).unwrap().0
    }

    #[test]
    fn check_add_sub_mul_div() {
        let mut ps = rand_params(&[("a", 3, 4), ("b", 3, 4)], 1);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let b = g.param(p, id_of(p, 1));
            let sum = g.add(a, b);
            let diff = g.sub(sum, b);
            let prod = g.mul(diff, b);
            let b_off = g.add_scalar(b, 3.0); // keep denominators away from 0
            let q = g.div(prod, b_off);
            g.sum_all(q)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_matmul_chain() {
        let mut ps = rand_params(&[("a", 2, 3), ("b", 3, 4), ("c", 4, 2)], 2);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let b = g.param(p, id_of(p, 1));
            let c = g.param(p, id_of(p, 2));
            let ab = g.matmul(a, b);
            let abc = g.matmul(ab, c);
            let sq = g.square(abc);
            g.mean_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_broadcasts() {
        let mut ps = rand_params(&[("x", 4, 3), ("bias", 1, 3), ("col", 4, 1)], 3);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let x = g.param(p, id_of(p, 0));
            let bias = g.param(p, id_of(p, 1));
            let col = g.param(p, id_of(p, 2));
            let xb = g.add_row_broadcast(x, bias);
            let scaled = g.mul_col_broadcast(xb, col);
            let t = g.tanh(scaled);
            g.sum_all(t)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_activations() {
        let mut ps = rand_params(&[("a", 3, 5)], 4);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let t = g.tanh(a);
            let s = g.sigmoid(t);
            let e = g.exp(s);
            let l = g.ln(e);
            let sq = g.square(l);
            g.mean_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_relu_and_abs_away_from_kinks() {
        // Offset inputs so no entry sits near the non-differentiable point.
        let mut ps = ParamSet::new();
        ps.add("a", Matrix::from_rows(&[&[0.5, -0.7, 1.2], &[-2.0, 0.9, -0.4]]));
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let r = g.relu(a);
            let ab = g.abs(a);
            let sum = g.add(r, ab);
            g.sum_all(sum)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_pow_and_sqrt() {
        let mut ps = ParamSet::new();
        ps.add("a", Matrix::from_rows(&[&[0.5, 0.7, 1.2], &[2.0, 0.9, 0.4]]));
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let p3 = g.pow_non_neg(a, 3.0);
            let s = g.sqrt(p3);
            g.sum_all(s)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_reductions() {
        let mut ps = rand_params(&[("a", 4, 3)], 6);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let rows = g.sum_rows(a); // 4x1
            let sq = g.square(rows);
            let cols = g.sum_cols(a); // 1x3
            let sc = g.square(cols);
            let s1 = g.sum_all(sq);
            let s2 = g.sum_all(sc);
            let m = g.mean_all(a);
            let t = g.add(s1, s2);
            g.add(t, m)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_gather_and_concat() {
        let mut ps = rand_params(&[("emb", 5, 3), ("w", 6, 1)], 7);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let emb = g.param(p, id_of(p, 0));
            let w = g.param(p, id_of(p, 1));
            let left = g.gather_rows(emb, &[0, 2, 4]);
            let right = g.gather_rows(emb, &[1, 1, 3]);
            let cat = g.concat_cols(left, right); // 3x6
            let out = g.matmul(cat, w); // 3x1
            let sq = g.square(out);
            g.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_slice_cols() {
        let mut ps = rand_params(&[("a", 3, 6)], 12);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let left = g.slice_cols(a, 0, 2);
            let mid = g.slice_cols(a, 2, 5);
            let l2 = g.square(left);
            let m2 = g.square(mid);
            let s1 = g.sum_all(l2);
            let s2 = g.sum_all(m2);
            g.add(s1, s2)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_softmax() {
        let mut ps = rand_params(&[("a", 3, 4), ("v", 4, 1)], 8);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let v = g.param(p, id_of(p, 1));
            let sm = g.softmax_rows(a);
            let out = g.matmul(sm, v);
            let sq = g.square(out);
            g.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_max_rows_away_from_ties() {
        let mut ps = ParamSet::new();
        ps.add("a", Matrix::from_rows(&[&[1.0, 5.0, 3.0], &[9.0, 2.0, 4.0]]));
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let m = g.max_rows(a);
            let sq = g.square(m);
            g.sum_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_transpose_and_neg() {
        let mut ps = rand_params(&[("a", 2, 4)], 9);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a = g.param(p, id_of(p, 0));
            let at = g.transpose(a); // 4x2
            let prod = g.matmul(a, at); // 2x2
            let n = g.neg(prod);
            let sc = g.scale(n, 0.7);
            g.sum_all(sc)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_mlp_like_composition() {
        // The exact shape used by the DNN distance function: two k x k
        // layers with tanh and bias.
        let k = 4;
        let mut ps = rand_params(&[("w1", k, k), ("b1", 1, k), ("w2", k, k), ("b2", 1, k), ("x", 3, k)], 10);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let w1 = g.param(p, id_of(p, 0));
            let b1 = g.param(p, id_of(p, 1));
            let w2 = g.param(p, id_of(p, 2));
            let b2 = g.param(p, id_of(p, 3));
            let x = g.param(p, id_of(p, 4));
            let h1 = g.matmul(x, w1);
            let h1 = g.add_row_broadcast(h1, b1);
            let h1 = g.tanh(h1);
            let h2 = g.matmul(h1, w2);
            let h2 = g.add_row_broadcast(h2, b2);
            let h2 = g.tanh(h2);
            let sq = g.square(h2);
            g.mean_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn check_param_reused_twice_accumulates() {
        let mut ps = rand_params(&[("a", 3, 3)], 11);
        let report = gradient_check(&mut ps, EPS, |g, p| {
            let a1 = g.param(p, id_of(p, 0));
            let a2 = g.param(p, id_of(p, 0));
            let prod = g.matmul(a1, a2); // a @ a
            g.sum_all(prod)
        });
        assert!(report.passes(TOL), "{report:?}");
    }
}
