//! Registry of trainable parameters and the gradients produced for them.

use gmlfm_tensor::Matrix;

/// Opaque handle into a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Positional index of the parameter inside its [`ParamSet`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Named collection of trainable matrices.
///
/// Models register their parameters once at construction time; the
/// optimizer in `gmlfm-train` keeps per-parameter state (Adam moments)
/// aligned by [`ParamId::index`].
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    mats: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.mats.push(value);
        self.names.push(name.into());
        ParamId(self.mats.len() - 1)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Mutable value of a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Iterates over `(id, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.mats.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }

    /// Total number of scalar parameters across all matrices.
    pub fn scalar_count(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }

    /// Sum of squared entries over all parameters (for L2 reporting).
    pub fn norm_sq(&self) -> f64 {
        self.mats.iter().map(Matrix::norm_sq).sum()
    }
}

/// Gradients for a [`ParamSet`], indexed by [`ParamId`].
///
/// Parameters that did not participate in the graph have no entry; the
/// optimizer treats a missing entry as a zero gradient.
#[derive(Debug, Clone)]
pub struct Gradients {
    by_param: Vec<Option<Matrix>>,
}

impl Gradients {
    pub(crate) fn new(n_params: usize) -> Self {
        Self { by_param: vec![None; n_params] }
    }

    pub(crate) fn accumulate(&mut self, id: ParamId, grad: &Matrix) {
        if id.0 >= self.by_param.len() {
            self.by_param.resize(id.0 + 1, None);
        }
        match &mut self.by_param[id.0] {
            Some(existing) => existing.axpy(1.0, grad),
            slot @ None => *slot = Some(grad.clone()),
        }
    }

    /// Gradient of a parameter, when it participated in the graph.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.by_param.get(id.0).and_then(Option::as_ref)
    }

    /// Iterates over the parameters that received gradients.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.by_param
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|m| (ParamId(i), m)))
    }

    /// Largest absolute gradient entry across all parameters.
    pub fn max_abs(&self) -> f64 {
        self.iter().map(|(_, g)| g.max_abs()).fold(0.0, f64::max)
    }

    /// Scales every gradient in place (used for gradient clipping).
    pub fn scale(&mut self, alpha: f64) {
        for g in self.by_param.iter_mut().flatten() {
            g.scale_inplace(alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.add("a", Matrix::zeros(2, 3));
        let b = ps.add("b", Matrix::eye(2));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.name(a), "a");
        assert_eq!(ps.name(b), "b");
        assert_eq!(ps.get(a).shape(), (2, 3));
        assert_eq!(ps.scalar_count(), 10);
        ps.get_mut(a).as_mut_slice()[0] = 5.0;
        assert_eq!(ps.get(a).as_slice()[0], 5.0);
    }

    #[test]
    fn gradients_accumulate() {
        let mut g = Gradients::new(2);
        let id = ParamId(1);
        g.accumulate(id, &Matrix::filled(1, 2, 1.5));
        g.accumulate(id, &Matrix::filled(1, 2, 0.5));
        assert_eq!(g.get(id).unwrap().as_slice(), &[2.0, 2.0]);
        assert!(g.get(ParamId(0)).is_none());
        assert_eq!(g.max_abs(), 2.0);
        g.scale(0.5);
        assert_eq!(g.get(id).unwrap().as_slice(), &[1.0, 1.0]);
    }
}
