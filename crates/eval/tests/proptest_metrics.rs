//! Property tests on the evaluation metrics: bounds, monotonicity and
//! invariances the protocols rely on.

use gmlfm_eval::{auc, hit_ratio_at, mae, ndcg_at, reciprocal_rank, rmse, welch_t_test};
use proptest::prelude::*;

fn scores() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, 2..40)
}

proptest! {
    #[test]
    fn hr_and_ndcg_are_bounded(s in scores(), k in 1usize..20) {
        let hr = hit_ratio_at(&s, k);
        let ndcg = ndcg_at(&s, k);
        prop_assert!(hr == 0.0 || hr == 1.0);
        prop_assert!((0.0..=1.0).contains(&ndcg));
        // NDCG can only be positive when the item is a hit.
        prop_assert!((ndcg > 0.0) == (hr == 1.0));
    }

    #[test]
    fn improving_the_positive_score_never_hurts(s in scores(), k in 1usize..20, boost in 0.1f64..5.0) {
        let before_hr = hit_ratio_at(&s, k);
        let before_ndcg = ndcg_at(&s, k);
        let mut boosted = s.clone();
        boosted[0] += boost;
        prop_assert!(hit_ratio_at(&boosted, k) >= before_hr);
        prop_assert!(ndcg_at(&boosted, k) >= before_ndcg - 1e-12);
    }

    #[test]
    fn hr_is_monotone_in_k(s in scores()) {
        let mut prev = 0.0;
        for k in 1..=s.len() {
            let hr = hit_ratio_at(&s, k);
            prop_assert!(hr >= prev);
            prev = hr;
        }
        // At k = number of candidates the positive is always within range.
        prop_assert_eq!(hit_ratio_at(&s, s.len()), 1.0);
    }

    #[test]
    fn mrr_and_auc_are_bounded_and_consistent(s in scores()) {
        let rr = reciprocal_rank(&s);
        prop_assert!((0.0..=1.0).contains(&rr));
        let a = auc(&s);
        prop_assert!((0.0..=1.0).contains(&a));
        // Perfect rank iff both metrics maxed.
        prop_assert!((rr == 1.0) == (a == 1.0) || s[1..].iter().any(|&x| x == s[0]));
        // MRR of 1 implies a hit at every cut-off.
        if rr == 1.0 {
            prop_assert_eq!(hit_ratio_at(&s, 1), 1.0);
        }
    }

    #[test]
    fn rmse_dominates_mae(pairs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..50)) {
        let (preds, targets): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        prop_assert!(rmse(&preds, &targets) + 1e-12 >= mae(&preds, &targets));
    }

    #[test]
    fn rmse_is_translation_invariant_in_error(
        pairs in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 2..30),
        shift in -3.0f64..3.0,
    ) {
        let (preds, targets): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let shifted_preds: Vec<f64> = preds.iter().map(|p| p + shift).collect();
        let shifted_targets: Vec<f64> = targets.iter().map(|t| t + shift).collect();
        prop_assert!((rmse(&shifted_preds, &shifted_targets) - rmse(&preds, &targets)).abs() < 1e-9);
    }

    #[test]
    fn welch_p_values_are_probabilities(
        a in proptest::collection::vec(-5.0f64..5.0, 3..30),
        b in proptest::collection::vec(-5.0f64..5.0, 3..30),
    ) {
        if let Some(r) = welch_t_test(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
            prop_assert!(r.df > 0.0);
        }
    }

    #[test]
    fn shifting_one_sample_far_enough_becomes_significant(
        a in proptest::collection::vec(0.0f64..1.0, 10..30),
    ) {
        let b: Vec<f64> = a.iter().map(|x| x + 100.0).collect();
        let r = welch_t_test(&a, &b).expect("valid");
        prop_assert!(r.p_value < 0.01);
    }
}
