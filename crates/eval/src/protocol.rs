//! End-to-end evaluation protocols over a trained [`Scorer`].
//!
//! Two top-n paths are provided: the generic [`evaluate_topn`], which
//! scores every candidate through whatever [`Scorer`] it is given, and
//! [`evaluate_topn_frozen`], which exploits a frozen model's
//! [`gmlfm_serve::TopNRanker`] to compute each user's context partial
//! sums once and
//! score candidates by item delta only. Both produce identical metrics
//! for the same model (pinned by tests here); the frozen path is the one
//! the experiment runners use.

use crate::metrics::{hit_ratio_at, mae, ndcg_at, rmse, topk_case_metrics};
use gmlfm_data::{Dataset, FieldKind, FieldMask, Instance, LooTestCase};
use gmlfm_par::Parallelism;
use gmlfm_serve::{FrozenModel, TopNHeap};
use gmlfm_service::{exec, Catalog, ModelServer, RequestError, ScoringBackend, SeenItems, TopNRequest};
use gmlfm_train::Scorer;

/// Rating-prediction results (Table 3 reports RMSE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingMetrics {
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Per-instance squared errors are not retained; this is the count.
    pub n: usize,
}

/// Evaluates a scorer on held-out rating instances.
///
/// The test set is handed to the scorer in one call, so scorers with a
/// parallel batch path (notably [`FrozenModel::scores`], which fans its
/// chunks out across the `gmlfm-par` pool) parallelise the whole
/// evaluation; the metrics are computed from the ordered score vector
/// and are bit-identical at every thread count.
pub fn evaluate_rating<S: Scorer + ?Sized>(scorer: &S, test: &[Instance]) -> RatingMetrics {
    assert!(!test.is_empty(), "evaluate_rating: empty test set");
    let preds = scorer.scores(test);
    let targets: Vec<f64> = test.iter().map(|i| i.label).collect();
    RatingMetrics { rmse: rmse(&preds, &targets), mae: mae(&preds, &targets), n: test.len() }
}

/// Top-n results (Table 4 reports HR@10 and NDCG@10).
#[derive(Debug, Clone, PartialEq)]
pub struct TopnMetrics {
    /// Mean Hit Ratio@k across users.
    pub hr: f64,
    /// Mean NDCG@k across users.
    pub ndcg: f64,
    /// Per-user HR values (for significance tests).
    pub per_user_hr: Vec<f64>,
    /// Per-user NDCG values (for significance tests).
    pub per_user_ndcg: Vec<f64>,
}

/// Leave-one-out evaluation: for each test case, scores the positive item
/// against its sampled negatives and truncates the ranking at `k`
/// (k = 10 in the paper).
pub fn evaluate_topn<S: Scorer + ?Sized>(
    scorer: &S,
    dataset: &Dataset,
    mask: &FieldMask,
    cases: &[LooTestCase],
    k: usize,
) -> TopnMetrics {
    assert!(!cases.is_empty(), "evaluate_topn: no test cases");
    let mut per_user_hr = Vec::with_capacity(cases.len());
    let mut per_user_ndcg = Vec::with_capacity(cases.len());
    let mut candidates: Vec<Instance> = Vec::new();
    for case in cases {
        candidates.clear();
        candidates.push(dataset.instance_masked(case.user, case.pos_item, 1.0, mask));
        for &neg in &case.negatives {
            candidates.push(dataset.instance_masked(case.user, neg, 0.0, mask));
        }
        let scores = scorer.scores(&candidates);
        per_user_hr.push(hit_ratio_at(&scores, k));
        per_user_ndcg.push(ndcg_at(&scores, k));
    }
    let hr = per_user_hr.iter().sum::<f64>() / per_user_hr.len() as f64;
    let ndcg = per_user_ndcg.iter().sum::<f64>() / per_user_ndcg.len() as f64;
    TopnMetrics { hr, ndcg, per_user_hr, per_user_ndcg }
}

/// Positions (within the active fields of `mask`) that carry item-side
/// values and therefore change between ranking candidates. These are the
/// `item_slots` to hand to [`FrozenModel::ranker`] for instances built by
/// [`Dataset::feats`] under the same mask.
pub fn item_side_slots(dataset: &Dataset, mask: &FieldMask) -> Vec<usize> {
    dataset
        .schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(field, _)| mask.is_active(*field))
        .map(|(_, f)| f.kind)
        .enumerate()
        .filter(|(_, kind)| !matches!(kind, FieldKind::User | FieldKind::UserAttr))
        .map(|(slot, _)| slot)
        .collect()
}

/// Leave-one-out evaluation through the frozen serving path: one
/// [`gmlfm_serve::TopNRanker`] per test case computes the user/context
/// partial sums once and scores the positive plus its sampled negatives
/// by item delta only. Metrics match [`evaluate_topn`] on the same
/// frozen model.
///
/// Runs with [`Parallelism::auto`]; see [`evaluate_topn_frozen_with`]
/// for an explicit thread count.
pub fn evaluate_topn_frozen(
    model: &FrozenModel,
    dataset: &Dataset,
    mask: &FieldMask,
    cases: &[LooTestCase],
    k: usize,
) -> TopnMetrics {
    evaluate_topn_frozen_with(model, dataset, mask, cases, k, Parallelism::auto())
}

/// [`evaluate_topn_frozen`] with an explicit [`Parallelism`]: the test
/// cases are split into one contiguous block per requested thread, each
/// worker evaluates its block with its own scratch buffers and
/// [`gmlfm_serve::TopNRanker`] state, and the per-user metric vectors
/// are merged in input order — so the result is **bit-identical** to the
/// serial evaluation at every thread count.
///
/// Per case, the negatives run through a bounded top-`k` [`TopNHeap`] —
/// the same selection the serving retrieval path uses — instead of a
/// materialised score vector; [`topk_case_metrics`] proves the metrics
/// identical to the full scan, conservative tie handling included.
pub fn evaluate_topn_frozen_with(
    model: &FrozenModel,
    dataset: &Dataset,
    mask: &FieldMask,
    cases: &[LooTestCase],
    k: usize,
    par: Parallelism,
) -> TopnMetrics {
    assert!(!cases.is_empty(), "evaluate_topn_frozen: no test cases");
    let item_slots = item_side_slots(dataset, mask);
    let per_user: Vec<(f64, f64)> = gmlfm_par::par_blocks(par, cases.len(), |range| {
        // Per-worker scratch, reused across the whole block.
        let mut out = Vec::with_capacity(range.len());
        let mut feats: Vec<u32> = Vec::new();
        let mut item_feats: Vec<u32> = Vec::new();
        for case in &cases[range] {
            let template = dataset.feats(case.user, case.pos_item, mask);
            let mut ranker = model.ranker(&template, &item_slots);
            item_feats.clear();
            item_feats.extend(item_slots.iter().map(|&s| template[s]));
            let pos_score = ranker.score(&item_feats);
            let mut heap = TopNHeap::new(k);
            for (i, &neg) in case.negatives.iter().enumerate() {
                dataset.feats_into(case.user, neg, mask, &mut feats);
                item_feats.clear();
                item_feats.extend(item_slots.iter().map(|&s| feats[s]));
                heap.push(i as u32, ranker.score(&item_feats));
            }
            out.push(topk_case_metrics(pos_score, heap.retained(), k));
        }
        out
    });
    let (per_user_hr, per_user_ndcg): (Vec<f64>, Vec<f64>) = per_user.into_iter().unzip();
    let hr = per_user_hr.iter().sum::<f64>() / per_user_hr.len() as f64;
    let ndcg = per_user_ndcg.iter().sum::<f64>() / per_user_ndcg.len() as f64;
    TopnMetrics { hr, ndcg, per_user_hr, per_user_ndcg }
}

/// Leave-one-out evaluation through the online serving API: each test
/// case becomes a candidate-restricted ranking request (`[positive] +
/// negatives`, seen-exclusion off — the protocol fixes the candidate
/// set) answered by the [`ModelServer`], so the evaluated path is the
/// *same* request path production traffic takes.
///
/// Metrics match [`evaluate_topn_frozen`] for the same frozen model;
/// runs with [`Parallelism::auto`] — see
/// [`evaluate_topn_service_with`] for an explicit thread count.
pub fn evaluate_topn_service(server: &ModelServer, cases: &[LooTestCase], k: usize) -> TopnMetrics {
    evaluate_topn_service_with(server, cases, k, Parallelism::auto())
}

/// [`evaluate_topn_service`] with an explicit [`Parallelism`]. The whole
/// evaluation is pinned to **one** model snapshot up front, so a hot
/// swap racing the evaluation cannot mix generations into one metric
/// vector.
pub fn evaluate_topn_service_with(
    server: &ModelServer,
    cases: &[LooTestCase],
    k: usize,
    par: Parallelism,
) -> TopnMetrics {
    assert!(!cases.is_empty(), "evaluate_topn_service: no test cases");
    let (_, snap) = server.snapshot();
    evaluate_topn_backend(&snap.frozen, snap.catalog.as_ref(), snap.seen.as_ref(), cases, k, par)
        .expect("leave-one-out cases come from the served catalog")
}

/// The shared request-path leave-one-out core: evaluates `cases` through
/// [`exec::execute_candidate_scores`] over any [`ScoringBackend`]
/// (frozen snapshot or the engine's live estimators). Cases are split
/// into one contiguous block per requested thread (each request itself
/// runs serially) and the per-user metric vectors are merged in input
/// order — bit-identical to the serial evaluation at every thread count.
/// A case whose user or items fall outside the catalog is a typed
/// [`RequestError`]. Per case, the positive's rank comes from a bounded
/// top-`k` [`TopNHeap`] over the negatives ([`topk_case_metrics`]) —
/// the serving retrieval selection, with full-scan-identical metrics.
pub fn evaluate_topn_backend<B: ScoringBackend + Sync + ?Sized>(
    backend: &B,
    catalog: Option<&Catalog>,
    seen: Option<&SeenItems>,
    cases: &[LooTestCase],
    k: usize,
    par: Parallelism,
) -> Result<TopnMetrics, RequestError> {
    assert!(!cases.is_empty(), "evaluate_topn_backend: no test cases");
    let per_user: Vec<Result<(f64, f64), RequestError>> = gmlfm_par::par_blocks(par, cases.len(), |range| {
        cases[range]
            .iter()
            .map(|case| {
                let req = TopNRequest::new(case.user, 1 + case.negatives.len())
                    .candidates(
                        std::iter::once(case.pos_item).chain(case.negatives.iter().copied()).collect(),
                    )
                    .include_seen()
                    .parallelism(Parallelism::serial());
                let scored =
                    exec::execute_candidate_scores(backend, catalog, seen, &req, Parallelism::serial())?;
                let mut heap = TopNHeap::new(k);
                for (i, &(_, s)) in scored[1..].iter().enumerate() {
                    heap.push(i as u32, s);
                }
                Ok(topk_case_metrics(scored[0].1, heap.retained(), k))
            })
            .collect()
    });
    let mut per_user_hr = Vec::with_capacity(cases.len());
    let mut per_user_ndcg = Vec::with_capacity(cases.len());
    for result in per_user {
        let (hr, ndcg) = result?;
        per_user_hr.push(hr);
        per_user_ndcg.push(ndcg);
    }
    let hr = per_user_hr.iter().sum::<f64>() / per_user_hr.len() as f64;
    let ndcg = per_user_ndcg.iter().sum::<f64>() / per_user_ndcg.len() as f64;
    Ok(TopnMetrics { hr, ndcg, per_user_hr, per_user_ndcg })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, DatasetSpec};

    /// A scorer that knows the ground truth: scores the held-out positive
    /// item of each user highest.
    struct Oracle {
        item_offset: usize,
        favourite: Vec<u32>,
    }

    impl Scorer for Oracle {
        fn scores(&self, instances: &[Instance]) -> Vec<f64> {
            instances
                .iter()
                .map(|inst| {
                    let user = inst.feats[0] as usize;
                    let item = inst.feats[1] as usize - self.item_offset;
                    if self.favourite[user] == item as u32 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }

    struct Antioracle(Oracle);
    impl Scorer for Antioracle {
        fn scores(&self, instances: &[Instance]) -> Vec<f64> {
            self.0.scores(instances).into_iter().map(|s| -s).collect()
        }
    }

    #[test]
    fn oracle_achieves_perfect_topn_and_antioracle_zero() {
        let d = generate(&DatasetSpec::AmazonAuto.config(131).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let split = loo_split(&d, &mask, 2, 30, 3);
        let mut favourite = vec![u32::MAX; d.n_users];
        for case in &split.test {
            favourite[case.user as usize] = case.pos_item;
        }
        let oracle = Oracle { item_offset: d.schema.offset(1), favourite };
        let m = evaluate_topn(&oracle, &d, &mask, &split.test, 10);
        assert_eq!(m.hr, 1.0);
        assert_eq!(m.ndcg, 1.0);

        let anti = Antioracle(oracle);
        let m = evaluate_topn(&anti, &d, &mask, &split.test, 10);
        assert_eq!(m.hr, 0.0);
        assert_eq!(m.ndcg, 0.0);
    }

    #[test]
    fn rating_metrics_for_constant_scorer() {
        struct Zero;
        impl Scorer for Zero {
            fn scores(&self, instances: &[Instance]) -> Vec<f64> {
                vec![0.0; instances.len()]
            }
        }
        let test = vec![Instance::new(vec![0, 1], 1.0), Instance::new(vec![0, 2], -1.0)];
        let m = evaluate_rating(&Zero, &test);
        assert!((m.rmse - 1.0).abs() < 1e-12);
        assert!((m.mae - 1.0).abs() < 1e-12);
        assert_eq!(m.n, 2);
    }

    /// The frozen ranking protocol must produce the same metrics as the
    /// generic candidate-scoring protocol for the same frozen model.
    #[test]
    fn frozen_protocol_matches_generic_protocol() {
        use gmlfm_core::{GmlFm, GmlFmConfig};
        use gmlfm_serve::Freeze;
        let d = generate(&DatasetSpec::AmazonAuto.config(135).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 5);
        let model = GmlFm::new(d.schema.total_dim(), &GmlFmConfig::mahalanobis(6).with_seed(9));
        let frozen = model.freeze();
        let generic = evaluate_topn(&frozen, &d, &mask, &split.test, 10);
        let fast = evaluate_topn_frozen(&frozen, &d, &mask, &split.test, 10);
        assert_eq!(fast.per_user_hr, generic.per_user_hr);
        for (a, b) in fast.per_user_ndcg.iter().zip(&generic.per_user_ndcg) {
            assert!((a - b).abs() < 1e-12);
        }
        // And both agree with the autograd path's metrics.
        let graph = evaluate_topn(&model, &d, &mask, &split.test, 10);
        assert_eq!(fast.per_user_hr, graph.per_user_hr);
    }

    /// The serving-API protocol must match the frozen protocol
    /// bit-for-bit: both rank the same candidates through the same
    /// ranker machinery, one addressed by request, one by dataset.
    #[test]
    fn service_protocol_matches_frozen_protocol() {
        use gmlfm_core::{GmlFm, GmlFmConfig};
        use gmlfm_serve::Freeze;
        use gmlfm_service::{Catalog, ModelServer, ModelSnapshot};
        let d = generate(&DatasetSpec::AmazonAuto.config(137).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 5);
        let model = GmlFm::new(d.schema.total_dim(), &GmlFmConfig::dnn(6, 1).with_seed(11));
        let frozen = model.freeze();
        let fast = evaluate_topn_frozen(&frozen, &d, &mask, &split.test, 10);
        let server = ModelServer::new(ModelSnapshot {
            schema: d.schema.clone(),
            frozen,
            catalog: Some(Catalog::from_dataset(&d, &mask)),
            seen: None,
            index: None,
        })
        .expect("consistent snapshot");
        let served = evaluate_topn_service(&server, &split.test, 10);
        assert_eq!(served.per_user_hr, fast.per_user_hr);
        assert_eq!(
            served.per_user_ndcg.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            fast.per_user_ndcg.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        // And explicit thread counts do not change a bit.
        for t in [1usize, 2, 5] {
            let par = evaluate_topn_service_with(&server, &split.test, 10, Parallelism::threads(t));
            assert_eq!(par.per_user_hr, served.per_user_hr, "threads={t}");
        }
    }

    #[test]
    fn per_user_vectors_align_with_cases() {
        let d = generate(&DatasetSpec::AmazonAuto.config(133).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 5);
        struct Rand;
        impl Scorer for Rand {
            fn scores(&self, instances: &[Instance]) -> Vec<f64> {
                instances
                    .iter()
                    .map(|i| {
                        // Hash-mix user and item so the score is independent
                        // of item popularity (head items are more often the
                        // positives).
                        let mix = (i.feats[0] as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((i.feats[1] as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                        (mix >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect()
            }
        }
        let m = evaluate_topn(&Rand, &d, &mask, &split.test, 10);
        assert_eq!(m.per_user_hr.len(), split.test.len());
        assert_eq!(m.per_user_ndcg.len(), split.test.len());
        // Random scorer ranking 1 positive among 20 negatives at k = 10:
        // HR@10 ≈ 10/21 in expectation; allow wide slack.
        assert!(m.hr > 0.2 && m.hr < 0.8, "random HR {0}", m.hr);
        assert!(m.ndcg < m.hr, "NDCG discounts position, so it must not exceed HR");
    }
}
