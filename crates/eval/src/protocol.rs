//! End-to-end evaluation protocols over a trained [`Scorer`].

use crate::metrics::{hit_ratio_at, mae, ndcg_at, rmse};
use gmlfm_data::{Dataset, FieldMask, Instance, LooTestCase};
use gmlfm_train::Scorer;

/// Rating-prediction results (Table 3 reports RMSE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingMetrics {
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Per-instance squared errors are not retained; this is the count.
    pub n: usize,
}

/// Evaluates a scorer on held-out rating instances.
pub fn evaluate_rating<S: Scorer + ?Sized>(scorer: &S, test: &[Instance]) -> RatingMetrics {
    assert!(!test.is_empty(), "evaluate_rating: empty test set");
    let refs: Vec<&Instance> = test.iter().collect();
    let preds = scorer.scores(&refs);
    let targets: Vec<f64> = test.iter().map(|i| i.label).collect();
    RatingMetrics { rmse: rmse(&preds, &targets), mae: mae(&preds, &targets), n: test.len() }
}

/// Top-n results (Table 4 reports HR@10 and NDCG@10).
#[derive(Debug, Clone, PartialEq)]
pub struct TopnMetrics {
    /// Mean Hit Ratio@k across users.
    pub hr: f64,
    /// Mean NDCG@k across users.
    pub ndcg: f64,
    /// Per-user HR values (for significance tests).
    pub per_user_hr: Vec<f64>,
    /// Per-user NDCG values (for significance tests).
    pub per_user_ndcg: Vec<f64>,
}

/// Leave-one-out evaluation: for each test case, scores the positive item
/// against its sampled negatives and truncates the ranking at `k`
/// (k = 10 in the paper).
pub fn evaluate_topn<S: Scorer + ?Sized>(
    scorer: &S,
    dataset: &Dataset,
    mask: &FieldMask,
    cases: &[LooTestCase],
    k: usize,
) -> TopnMetrics {
    assert!(!cases.is_empty(), "evaluate_topn: no test cases");
    let mut per_user_hr = Vec::with_capacity(cases.len());
    let mut per_user_ndcg = Vec::with_capacity(cases.len());
    let mut candidates: Vec<Instance> = Vec::new();
    for case in cases {
        candidates.clear();
        candidates.push(dataset.instance_masked(case.user, case.pos_item, 1.0, mask));
        for &neg in &case.negatives {
            candidates.push(dataset.instance_masked(case.user, neg, 0.0, mask));
        }
        let refs: Vec<&Instance> = candidates.iter().collect();
        let scores = scorer.scores(&refs);
        per_user_hr.push(hit_ratio_at(&scores, k));
        per_user_ndcg.push(ndcg_at(&scores, k));
    }
    let hr = per_user_hr.iter().sum::<f64>() / per_user_hr.len() as f64;
    let ndcg = per_user_ndcg.iter().sum::<f64>() / per_user_ndcg.len() as f64;
    TopnMetrics { hr, ndcg, per_user_hr, per_user_ndcg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, DatasetSpec};

    /// A scorer that knows the ground truth: scores the held-out positive
    /// item of each user highest.
    struct Oracle {
        item_offset: usize,
        favourite: Vec<u32>,
    }

    impl Scorer for Oracle {
        fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
            instances
                .iter()
                .map(|inst| {
                    let user = inst.feats[0] as usize;
                    let item = inst.feats[1] as usize - self.item_offset;
                    if self.favourite[user] == item as u32 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }

    struct Antioracle(Oracle);
    impl Scorer for Antioracle {
        fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
            self.0.scores(instances).into_iter().map(|s| -s).collect()
        }
    }

    #[test]
    fn oracle_achieves_perfect_topn_and_antioracle_zero() {
        let d = generate(&DatasetSpec::AmazonAuto.config(131).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let split = loo_split(&d, &mask, 2, 30, 3);
        let mut favourite = vec![u32::MAX; d.n_users];
        for case in &split.test {
            favourite[case.user as usize] = case.pos_item;
        }
        let oracle = Oracle { item_offset: d.schema.offset(1), favourite };
        let m = evaluate_topn(&oracle, &d, &mask, &split.test, 10);
        assert_eq!(m.hr, 1.0);
        assert_eq!(m.ndcg, 1.0);

        let anti = Antioracle(oracle);
        let m = evaluate_topn(&anti, &d, &mask, &split.test, 10);
        assert_eq!(m.hr, 0.0);
        assert_eq!(m.ndcg, 0.0);
    }

    #[test]
    fn rating_metrics_for_constant_scorer() {
        struct Zero;
        impl Scorer for Zero {
            fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
                vec![0.0; instances.len()]
            }
        }
        let test = vec![Instance::new(vec![0, 1], 1.0), Instance::new(vec![0, 2], -1.0)];
        let m = evaluate_rating(&Zero, &test);
        assert!((m.rmse - 1.0).abs() < 1e-12);
        assert!((m.mae - 1.0).abs() < 1e-12);
        assert_eq!(m.n, 2);
    }

    #[test]
    fn per_user_vectors_align_with_cases() {
        let d = generate(&DatasetSpec::AmazonAuto.config(133).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 5);
        struct Rand;
        impl Scorer for Rand {
            fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
                instances
                    .iter()
                    .map(|i| {
                        // Hash-mix user and item so the score is independent
                        // of item popularity (head items are more often the
                        // positives).
                        let mix = (i.feats[0] as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((i.feats[1] as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                        (mix >> 11) as f64 / (1u64 << 53) as f64
                    })
                    .collect()
            }
        }
        let m = evaluate_topn(&Rand, &d, &mask, &split.test, 10);
        assert_eq!(m.per_user_hr.len(), split.test.len());
        assert_eq!(m.per_user_ndcg.len(), split.test.len());
        // Random scorer ranking 1 positive among 20 negatives at k = 10:
        // HR@10 ≈ 10/21 in expectation; allow wide slack.
        assert!(m.hr > 0.2 && m.hr < 0.8, "random HR {0}", m.hr);
        assert!(m.ndcg < m.hr, "NDCG discounts position, so it must not exceed HR");
    }
}
