//! Scalar evaluation metrics.

/// Root mean squared error between predictions and targets.
///
/// # Panics
/// Panics on length mismatch or empty inputs.
pub fn rmse(preds: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "rmse: length mismatch");
    assert!(!preds.is_empty(), "rmse: empty inputs");
    let mse: f64 =
        preds.iter().zip(targets).map(|(p, t)| (p - t) * (p - t)).sum::<f64>() / preds.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mae(preds: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(preds.len(), targets.len(), "mae: length mismatch");
    assert!(!preds.is_empty(), "mae: empty inputs");
    preds.iter().zip(targets).map(|(p, t)| (p - t).abs()).sum::<f64>() / preds.len() as f64
}

/// Hit Ratio@k for a single ranking case: 1 when the positive item's
/// score ranks within the top `k` of `scores` (index 0 is the positive
/// item; ties are broken against the positive, the conservative choice).
pub fn hit_ratio_at(scores: &[f64], k: usize) -> f64 {
    let rank = rank_of_first(scores);
    if rank < k {
        1.0
    } else {
        0.0
    }
}

/// NDCG@k for a single ranking case with one relevant item at index 0:
/// `1 / log2(rank + 2)` when ranked within the top `k`, else 0.
pub fn ndcg_at(scores: &[f64], k: usize) -> f64 {
    let rank = rank_of_first(scores);
    if rank < k {
        1.0 / ((rank + 2) as f64).log2()
    } else {
        0.0
    }
}

/// Reciprocal rank of the positive item (index 0): `1 / (rank + 1)`.
/// The mean over users is MRR.
pub fn reciprocal_rank(scores: &[f64]) -> f64 {
    1.0 / (rank_of_first(scores) + 1) as f64
}

/// AUC for a single ranking case with one positive at index 0: the
/// fraction of negatives ranked strictly below the positive (ties count
/// half).
pub fn auc(scores: &[f64]) -> f64 {
    assert!(scores.len() >= 2, "auc: need at least one negative");
    let pos = scores[0];
    let mut wins = 0.0;
    for &s in &scores[1..] {
        if s < pos {
            wins += 1.0;
        } else if s == pos {
            wins += 0.5;
        }
    }
    wins / (scores.len() - 1) as f64
}

/// 0-based rank of the item at index 0 among all scores (number of other
/// items with a score `>=` the positive's — conservative tie handling).
fn rank_of_first(scores: &[f64]) -> usize {
    assert!(!scores.is_empty(), "rank_of_first: empty scores");
    let pos = scores[0];
    scores[1..].iter().filter(|&&s| s >= pos).count()
}

/// `(HR@k, NDCG@k)` for one leave-one-out case from a **bounded top-`k`
/// selection over the negatives** — the same
/// [`gmlfm_serve::TopNHeap`] machinery the serving retrieval path runs —
/// instead of the full score vector.
///
/// `topk_negatives` must be the `k` best-retained negatives under the
/// retrieval order (or all of them when fewer than `k` exist), e.g.
/// [`gmlfm_serve::TopNHeap::retained`]. The positive's conservative rank
/// is the number of retained negatives scoring `>= pos_score`: every
/// negative scoring `>=` the positive outranks every negative scoring
/// below it, so whenever that count is below `k` the bounded selection
/// provably retained *all* such negatives — making the result identical,
/// tie handling included, to [`hit_ratio_at`]/[`ndcg_at`] over the full
/// vector. A count of `k` means the positive fell off the cut, which is
/// exactly the full-scan miss case.
pub fn topk_case_metrics(pos_score: f64, topk_negatives: &[(u32, f64)], k: usize) -> (f64, f64) {
    let rank = topk_negatives.iter().filter(|&&(_, s)| s >= pos_score).count();
    if rank < k {
        (1.0, 1.0 / ((rank + 2) as f64).log2())
    } else {
        (0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_and_mae_of_known_values() {
        let preds = [1.0, 2.0, 3.0];
        let targets = [1.0, 0.0, 7.0];
        assert!((rmse(&preds, &targets) - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&preds, &targets) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_predictions_have_zero_error() {
        let xs = [0.5, -1.0, 2.0];
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert_eq!(mae(&xs, &xs), 0.0);
    }

    #[test]
    fn hit_ratio_depends_on_rank() {
        // Positive at index 0 with score 5; two better, one worse.
        let scores = [5.0, 7.0, 6.0, 1.0];
        assert_eq!(hit_ratio_at(&scores, 2), 0.0);
        assert_eq!(hit_ratio_at(&scores, 3), 1.0);
    }

    #[test]
    fn ndcg_matches_rank_formula() {
        // Rank 0 → 1/log2(2) = 1.
        assert!((ndcg_at(&[9.0, 1.0, 2.0], 10) - 1.0).abs() < 1e-12);
        // Rank 2 → 1/log2(4) = 0.5.
        assert!((ndcg_at(&[3.0, 5.0, 4.0, 1.0], 10) - 0.5).abs() < 1e-12);
        // Outside the cut-off → 0.
        assert_eq!(ndcg_at(&[0.0, 1.0, 2.0], 1), 0.0);
    }

    #[test]
    fn ties_count_against_the_positive() {
        // Positive tied with one negative: conservative rank 1.
        let scores = [5.0, 5.0, 1.0];
        assert_eq!(hit_ratio_at(&scores, 1), 0.0);
        assert_eq!(hit_ratio_at(&scores, 2), 1.0);
    }

    #[test]
    fn reciprocal_rank_follows_position() {
        assert_eq!(reciprocal_rank(&[9.0, 1.0, 2.0]), 1.0);
        assert_eq!(reciprocal_rank(&[3.0, 5.0, 4.0, 1.0]), 1.0 / 3.0);
    }

    #[test]
    fn auc_counts_beaten_negatives() {
        // Positive 5 beats 2 of 4 negatives, ties one.
        let scores = [5.0, 7.0, 5.0, 1.0, 2.0];
        assert!((auc(&scores) - (2.0 + 0.5) / 4.0).abs() < 1e-12);
        assert_eq!(auc(&[9.0, 1.0, 2.0]), 1.0);
        assert_eq!(auc(&[0.0, 1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "auc")]
    fn auc_needs_a_negative() {
        let _ = auc(&[1.0]);
    }

    /// The bounded-selection metrics must equal the full-scan metrics on
    /// every case — tie handling included — for any negative ordering.
    #[test]
    fn topk_case_metrics_match_full_scan_including_ties() {
        use gmlfm_serve::TopNHeap;
        let cases: &[&[f64]] = &[
            &[5.0, 7.0, 6.0, 1.0],
            &[5.0, 5.0, 1.0],           // tie counts against the positive
            &[5.0, 5.0, 5.0, 5.0],      // all tied
            &[9.0, 1.0, 2.0],           // clean hit at rank 0
            &[0.0, 1.0, 2.0, 3.0, 4.0], // clean miss
            &[1.0],                     // no negatives at all
        ];
        for scores in cases {
            for k in 0..=6usize {
                let mut heap = TopNHeap::new(k);
                for (i, &s) in scores[1..].iter().enumerate() {
                    heap.push(i as u32, s);
                }
                let (hr, ndcg) = topk_case_metrics(scores[0], heap.retained(), k);
                assert_eq!(hr, hit_ratio_at(scores, k), "hr {scores:?} k={k}");
                assert_eq!(ndcg, ndcg_at(scores, k), "ndcg {scores:?} k={k}");
            }
        }
    }
}
