//! Welch's two-sided t-test, used for the significance markers of
//! Tables 3 and 4 († for p < 0.01, ∗ for p < 0.05).

use gmlfm_tensor::stats::{mean, variance};

/// Result of a Welch t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch-Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// Significance marker in the paper's notation: `"†"` for p < 0.01,
    /// `"*"` for p < 0.05, empty otherwise.
    pub fn marker(&self) -> &'static str {
        if self.p_value < 0.01 {
            "†"
        } else if self.p_value < 0.05 {
            "*"
        } else {
            ""
        }
    }
}

/// Welch's unequal-variance t-test between two samples.
///
/// Returns `None` when either sample has fewer than two observations or
/// both variances are zero.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se_sq = va / na + vb / nb;
    if se_sq <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se_sq.sqrt();
    let df = se_sq * se_sq / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p_value = 2.0 * student_t_sf(t.abs(), df);
    Some(TTestResult { t, df, p_value })
}

/// Survival function `P(T > t)` of Student's t distribution with `df`
/// degrees of freedom, via the regularised incomplete beta function.
fn student_t_sf(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    0.5 * incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularised incomplete beta `I_x(a, b)` (Numerical Recipes §6.4,
/// continued-fraction evaluation).
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Γ(0.5) = sqrt(pi).
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn t_sf_matches_reference_values() {
        // Reference: P(T > 2.0) with df=10 ≈ 0.036694.
        assert!((student_t_sf(2.0, 10.0) - 0.036694).abs() < 1e-4);
        // df=1 (Cauchy): P(T > 1) = 0.25.
        assert!((student_t_sf(1.0, 1.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn identical_samples_are_not_significant() {
        let a = [0.5, 0.6, 0.4, 0.55, 0.45, 0.52];
        let r = welch_t_test(&a, &a).expect("valid test");
        assert!(r.p_value > 0.95, "p = {}", r.p_value);
        assert_eq!(r.marker(), "");
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        let a: Vec<f64> = (0..30).map(|i| 1.0 + 0.01 * i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 0.0 + 0.01 * i as f64).collect();
        let r = welch_t_test(&a, &b).expect("valid test");
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
        assert_eq!(r.marker(), "†");
        assert!(r.t > 0.0);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn p_value_is_symmetric_in_sample_order() {
        let a = [0.9, 0.85, 0.92, 0.88, 0.91];
        let b = [0.70, 0.72, 0.69, 0.75, 0.71];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
        assert!((r1.t + r2.t).abs() < 1e-12);
    }
}
