//! # gmlfm-eval
//!
//! Evaluation protocols and metrics from Section 4.3 of the paper:
//!
//! * **Rating prediction** — RMSE (and MAE) over the held-out 10% test
//!   instances ([`evaluate_rating`]).
//! * **Top-n recommendation** — leave-one-out HR@10 and NDCG@10 over 99
//!   sampled negatives per user ([`evaluate_topn`]); frozen models
//!   evaluate through the online serving API's request path
//!   ([`evaluate_topn_service`]) or directly ([`evaluate_topn_frozen`]).
//! * **Significance** — Welch's two-sided t-test ([`stats::welch_t_test`]),
//!   used for the †/∗ markers in Tables 3 and 4.
//! * **Reporting** — markdown/CSV table builders shared by the `repro`
//!   binary and EXPERIMENTS.md ([`table`]).

pub mod metrics;
pub mod protocol;
pub mod stats;
pub mod table;

pub use metrics::{auc, hit_ratio_at, mae, ndcg_at, reciprocal_rank, rmse};
pub use protocol::{
    evaluate_rating, evaluate_topn, evaluate_topn_backend, evaluate_topn_frozen, evaluate_topn_frozen_with,
    evaluate_topn_service, evaluate_topn_service_with, item_side_slots, RatingMetrics, TopnMetrics,
};
pub use stats::{welch_t_test, TTestResult};
pub use table::Table;
