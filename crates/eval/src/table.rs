//! Result-table formatting: markdown for the terminal, CSV for
//! artifacts under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple row-oriented table with a header.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "Table: row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders GitHub-flavoured markdown with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (cell, w) in cells.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                let _ = write!(out, " {}{} |", cell, " ".repeat(pad));
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let encoded: Vec<String> = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') || c.contains('\n') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&encoded.join(","));
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the CSV rendering to a file, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a metric to the paper's 4-decimal convention.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new(&["model", "rmse"]);
        t.push(&["FM", "0.9369"]);
        t.push(&["GML-FM", "0.8822"]);
        let md = t.to_markdown();
        assert!(md.contains("| model"));
        assert!(md.lines().nth(1).unwrap().starts_with("|--"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.push(&["only-one"]);
    }

    #[test]
    fn fmt4_rounds() {
        assert_eq!(fmt4(0.88216), "0.8822");
        assert_eq!(fmt4(1.0), "1.0000");
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = Table::new(&["x"]);
        t.push(&["1"]);
        let dir = std::env::temp_dir().join("gmlfm_table_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
