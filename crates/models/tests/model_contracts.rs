//! Cross-model contracts: every graph model is seed-deterministic,
//! scores finitely, and batch scoring equals one-by-one scoring.

use gmlfm_data::Instance;
use gmlfm_models::{
    afm::AfmConfig, deepfm::DeepFmConfig, ncf::NcfConfig, nfm::NfmConfig, transfm::TransFmConfig,
    xdeepfm::XDeepFmConfig, Afm, DeepFm, Ncf, Nfm, PairCodec, TransFm, XDeepFm,
};
use gmlfm_train::Scorer;

const N_FEATURES: usize = 40;
const N_FIELDS: usize = 4;

fn instances() -> Vec<Instance> {
    vec![
        Instance::new(vec![0, 12, 25, 33], 1.0),
        Instance::new(vec![5, 17, 29, 39], -1.0),
        Instance::new(vec![9, 10, 20, 30], 1.0),
    ]
}

fn models(seed: u64) -> Vec<(&'static str, Box<dyn Scorer>)> {
    vec![
        ("NFM", Box::new(Nfm::new(N_FEATURES, &NfmConfig { seed, ..NfmConfig::default() }))),
        ("AFM", Box::new(Afm::new(N_FEATURES, &AfmConfig { seed, ..AfmConfig::default() }))),
        (
            "DeepFM",
            Box::new(DeepFm::new(N_FEATURES, N_FIELDS, &DeepFmConfig { seed, ..DeepFmConfig::default() })),
        ),
        (
            "xDeepFM",
            Box::new(XDeepFm::new(N_FEATURES, N_FIELDS, &XDeepFmConfig { seed, ..XDeepFmConfig::default() })),
        ),
        ("TransFM", Box::new(TransFm::new(N_FEATURES, &TransFmConfig { k: 16, seed }))),
    ]
}

#[test]
fn identical_seeds_build_identical_models() {
    let insts = instances();
    for ((name_a, a), (_, b)) in models(123).into_iter().zip(models(123)) {
        assert_eq!(a.scores(&insts), b.scores(&insts), "{name_a} not seed-deterministic");
    }
}

#[test]
fn different_seeds_build_different_models() {
    let insts = instances();
    for ((name_a, a), (_, b)) in models(123).into_iter().zip(models(456)) {
        assert_ne!(a.scores(&insts), b.scores(&insts), "{name_a} ignores its seed");
    }
}

#[test]
fn batch_scoring_equals_individual_scoring() {
    let insts = instances();
    for (name, model) in models(7) {
        let batched = model.scores(&insts);
        for (inst, &expected) in insts.iter().zip(&batched) {
            let single = model.score_one(inst);
            assert!((single - expected).abs() < 1e-12, "{name}: batch {expected} vs single {single}");
        }
    }
}

#[test]
fn untrained_scores_are_finite_and_small() {
    let insts = instances();
    for (name, model) in models(9) {
        for s in model.scores(&insts) {
            assert!(s.is_finite(), "{name} produced a non-finite score");
            assert!(s.abs() < 10.0, "{name} init scores should be near zero, got {s}");
        }
    }
}

#[test]
fn ncf_contracts_hold_too() {
    // NCF decodes (user, item) so it needs a codec-compatible layout.
    let codec = PairCodec::from_sizes(10, 30);
    let a = Ncf::new(codec, &NcfConfig { seed: 3, ..NcfConfig::default() });
    let b = Ncf::new(codec, &NcfConfig { seed: 3, ..NcfConfig::default() });
    let inst = Instance::new(vec![4, 10 + 22], 1.0);
    assert_eq!(a.score_one(&inst), b.score_one(&inst));
    let c = Ncf::new(codec, &NcfConfig { seed: 4, ..NcfConfig::default() });
    assert_ne!(a.score_one(&inst), c.score_one(&inst));
}
