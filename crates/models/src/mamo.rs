//! MAMO-lite: a memory-augmented meta-learning cold-start baseline in the
//! spirit of MAMO (Dong et al., KDD'20), used for the paper's Figure 4.
//!
//! The full MAMO couples two memory matrices to a MeLU-style base model.
//! This implementation keeps the two properties that matter for its role
//! as a cold-start comparator and is documented as a substitution in
//! DESIGN.md:
//!
//! 1. **personalised initialisation** — a user's embedding is initialised
//!    from a global vector plus attribute-conditioned memory rows
//!    (profile-based memory `M_u` in MAMO), so a brand-new user starts
//!    from the experience of similar users rather than from zero;
//! 2. **local adaptation + meta-update** — each user task adapts its
//!    embedding with a few SGD steps on its support set; the initialiser
//!    is then moved toward the adapted solution (first-order/Reptile
//!    meta-gradient), while item parameters accumulate task gradients.

use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::squared;
use rand::seq::SliceRandom;

/// One meta-learning task: a user described by attribute values with a
/// support set of `(item, label)` interactions.
#[derive(Debug, Clone)]
pub struct MamoTask {
    /// Attribute value per user-attribute field (may be empty).
    pub profile: Vec<usize>,
    /// Support interactions `(item, target)`.
    pub support: Vec<(usize, f64)>,
}

/// MAMO-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct MamoConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// Local-adaptation learning rate.
    pub local_lr: f64,
    /// Meta learning rate (Reptile interpolation and item updates).
    pub meta_lr: f64,
    /// Local adaptation steps per task.
    pub local_steps: usize,
    /// Meta-training epochs over all tasks.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MamoConfig {
    fn default() -> Self {
        Self { k: 16, local_lr: 0.05, meta_lr: 0.05, local_steps: 5, epochs: 10, seed: 47 }
    }
}

/// Memory-augmented meta-optimisation baseline.
#[derive(Debug, Clone)]
pub struct MamoLite {
    /// Item embeddings.
    q: Matrix,
    /// Item biases.
    bi: Vec<f64>,
    /// Global user-embedding initialiser.
    theta0: Vec<f64>,
    /// Attribute memories: one `cardinality × k` matrix per profile field.
    memories: Vec<Matrix>,
    cfg: MamoConfig,
}

impl MamoLite {
    /// Creates an untrained model. `profile_cards` gives the cardinality
    /// of each user-attribute field (empty slice for datasets without
    /// user attributes).
    pub fn new(n_items: usize, profile_cards: &[usize], cfg: MamoConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let q = normal(&mut rng, n_items, cfg.k, 0.0, 0.01);
        let memories = profile_cards
            .iter()
            .map(|&card| normal(&mut rng, card, cfg.k, 0.0, 0.01))
            .collect();
        Self { q, bi: vec![0.0; n_items], theta0: vec![0.0; cfg.k], memories, cfg }
    }

    /// Personalised initialisation: `θ_u = θ₀ + Σ_f M_f[profile_f]`.
    fn init_user(&self, profile: &[usize]) -> Vec<f64> {
        let mut theta = self.theta0.clone();
        for (f, &value) in profile.iter().enumerate() {
            for (t, m) in theta.iter_mut().zip(self.memories[f].row(value)) {
                *t += m;
            }
        }
        theta
    }

    /// Local adaptation: a few SGD steps on the support set, optionally
    /// accumulating item gradients into `item_grads`.
    fn adapt(&self, theta: &mut [f64], support: &[(usize, f64)], mut item_grads: Option<&mut Matrix>) {
        for _ in 0..self.cfg.local_steps {
            for &(item, target) in support {
                let pred = self.score_with(theta, item);
                let (_, g) = squared(pred, target);
                for d in 0..self.cfg.k {
                    let qd = self.q[(item, d)];
                    theta[d] -= self.cfg.local_lr * g * qd;
                    if let Some(grads) = item_grads.as_deref_mut() {
                        grads[(item, d)] += g * theta[d];
                    }
                }
            }
        }
    }

    fn score_with(&self, theta: &[f64], item: usize) -> f64 {
        let mut dot = self.bi[item];
        for (d, &t) in theta.iter().enumerate() {
            dot += t * self.q[(item, d)];
        }
        dot
    }

    /// Meta-trains over the task distribution; returns the mean support
    /// loss (after adaptation) per epoch.
    pub fn fit(&mut self, tasks: &[MamoTask]) -> Vec<f64> {
        assert!(!tasks.is_empty(), "MamoLite::fit: no tasks");
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        let mut item_grads = Matrix::zeros(self.q.rows(), self.q.cols());
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut count = 0usize;
            for &t in &order {
                let task = &tasks[t];
                if task.support.is_empty() {
                    continue;
                }
                let init = self.init_user(&task.profile);
                let mut theta = init.clone();
                item_grads.fill_zero();
                self.adapt(&mut theta, &task.support, Some(&mut item_grads));

                // Post-adaptation support loss (for reporting).
                for &(item, target) in &task.support {
                    let (l, _) = squared(self.score_with(&theta, item), target);
                    total += l;
                    count += 1;
                }

                // Reptile meta-update of the initialiser and memories.
                let beta = self.cfg.meta_lr;
                for d in 0..self.cfg.k {
                    let delta = theta[d] - init[d];
                    self.theta0[d] += beta * delta;
                    for (f, &value) in task.profile.iter().enumerate() {
                        self.memories[f][(value, d)] += beta * delta / task.profile.len().max(1) as f64;
                    }
                }
                // Item update from accumulated task gradients.
                self.q.axpy(-beta * self.cfg.local_lr, &item_grads);
                for &(item, target) in &task.support {
                    let (_, g) = squared(self.score_with(&theta, item), target);
                    self.bi[item] -= beta * self.cfg.local_lr * g;
                }
            }
            losses.push(total / count.max(1) as f64);
        }
        losses
    }

    /// Adapts to a (possibly new) user's support set and scores the query
    /// items.
    pub fn predict(&self, profile: &[usize], support: &[(usize, f64)], query_items: &[usize]) -> Vec<f64> {
        let mut theta = self.init_user(profile);
        if !support.is_empty() {
            self.adapt(&mut theta, support, None);
        }
        query_items.iter().map(|&i| self.score_with(&theta, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::seeded_rng;
    use rand::Rng;

    /// Synthetic meta-dataset: users in two attribute groups with
    /// opposite preferences over two item clusters.
    fn make_tasks(n_tasks: usize, support_size: usize, seed: u64) -> Vec<MamoTask> {
        let mut rng = seeded_rng(seed);
        (0..n_tasks)
            .map(|_| {
                let group = rng.gen_range(0..2usize);
                let support = (0..support_size)
                    .map(|_| {
                        let item = rng.gen_range(0..20usize);
                        let cluster = usize::from(item >= 10);
                        let label = if cluster == group { 1.0 } else { -1.0 };
                        (item, label)
                    })
                    .collect();
                MamoTask { profile: vec![group], support }
            })
            .collect()
    }

    #[test]
    fn meta_training_reduces_post_adaptation_loss() {
        let tasks = make_tasks(60, 6, 1);
        let mut model = MamoLite::new(20, &[2], MamoConfig { epochs: 8, ..MamoConfig::default() });
        let losses = model.fit(&tasks);
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");
    }

    #[test]
    fn personalised_init_helps_zero_support_users() {
        // After meta-training, a user with NO support interactions should
        // still be scored in the direction of its attribute group.
        let tasks = make_tasks(120, 8, 2);
        let mut model = MamoLite::new(20, &[2], MamoConfig { epochs: 12, ..MamoConfig::default() });
        model.fit(&tasks);
        let group0 = model.predict(&[0], &[], &[3, 15]);
        // Group 0 prefers items < 10.
        assert!(group0[0] > group0[1], "cold group-0 user should prefer cluster 0: {group0:?}");
        let group1 = model.predict(&[1], &[], &[3, 15]);
        assert!(group1[1] > group1[0], "cold group-1 user should prefer cluster 1: {group1:?}");
    }

    #[test]
    fn adaptation_moves_predictions_toward_support_labels() {
        let tasks = make_tasks(60, 6, 3);
        // Stronger local adaptation so a contrarian support set can
        // override the attribute prior within one prediction call.
        let cfg = MamoConfig { epochs: 6, local_steps: 25, local_lr: 0.1, ..MamoConfig::default() };
        let mut model = MamoLite::new(20, &[2], cfg);
        model.fit(&tasks);
        // A contrarian user: group 0 profile but group-1 preferences.
        let support: Vec<(usize, f64)> = vec![(12, 1.0), (14, 1.0), (17, 1.0), (2, -1.0), (5, -1.0)];
        let adapted = model.predict(&[0], &support, &[15, 3]);
        assert!(adapted[0] > adapted[1], "adaptation should override the prior: {adapted:?}");
    }

    #[test]
    fn empty_profile_is_supported() {
        let model = MamoLite::new(10, &[], MamoConfig::default());
        let scores = model.predict(&[], &[(1, 1.0)], &[0, 1]);
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
