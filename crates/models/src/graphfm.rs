//! Shared plumbing for the autograd-based FM-family models: the linear
//! term, the embedding table, and the Bi-Interaction pooling all of them
//! build on.

use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::Matrix;
use gmlfm_train::field_index_columns;
use rand::rngs::StdRng;

/// The parameters every FM-family model shares: global bias `w₀`,
/// first-order weights `w ∈ R^{n×1}`, and the factor table `V ∈ R^{n×k}`.
#[derive(Debug, Clone)]
pub struct FmBase {
    /// Number of one-hot features `n`.
    pub n_features: usize,
    /// Embedding size `k`.
    pub k: usize,
    /// Global bias handle (`1×1`).
    pub w0: ParamId,
    /// First-order weights handle (`n×1`).
    pub w: ParamId,
    /// Factor table handle (`n×k`).
    pub v: ParamId,
}

impl FmBase {
    /// Registers the three shared parameters, initialised `N(0, 0.01²)`
    /// per the paper's Section 4.4.
    pub fn new(params: &mut ParamSet, n_features: usize, k: usize, rng: &mut StdRng) -> Self {
        let w0 = params.add("w0", Matrix::zeros(1, 1));
        let w = params.add("w", Matrix::zeros(n_features, 1));
        let v = params.add("v", normal(rng, n_features, k, 0.0, 0.01));
        Self { n_features, k, w0, w, v }
    }

    /// Per-field index columns for a batch.
    pub fn columns(batch: &[&Instance]) -> Vec<Vec<usize>> {
        field_index_columns(batch)
    }

    /// The linear term `w₀ + Σ_f w[x_f]` as a `B×1` node.
    pub fn linear(&self, g: &mut Graph, params: &ParamSet, cols: &[Vec<usize>]) -> Var {
        let w = g.param(params, self.w);
        let mut acc: Option<Var> = None;
        for col in cols {
            let gathered = g.gather_rows(w, col); // B x 1
            acc = Some(match acc {
                Some(a) => g.add(a, gathered),
                None => gathered,
            });
        }
        let acc = acc.expect("at least one field");
        let w0 = g.param(params, self.w0);
        g.add_row_broadcast(acc, w0)
    }

    /// The `m` field embedding matrices, each `B×k`.
    pub fn field_embeddings(&self, g: &mut Graph, params: &ParamSet, cols: &[Vec<usize>]) -> Vec<Var> {
        let v = g.param(params, self.v);
        cols.iter().map(|col| g.gather_rows(v, col)).collect()
    }

    /// Bi-Interaction pooling (NFM Eq. in Section 2.2):
    /// `½[(Σ_f e_f)² − Σ_f e_f²]`, a `B×k` node equal to
    /// `Σ_{i<j} e_i ⊙ e_j`.
    pub fn bi_interaction(&self, g: &mut Graph, embeds: &[Var]) -> Var {
        let mut sum: Option<Var> = None;
        let mut sum_sq: Option<Var> = None;
        for &e in embeds {
            sum = Some(match sum {
                Some(s) => g.add(s, e),
                None => e,
            });
            let e2 = g.square(e);
            sum_sq = Some(match sum_sq {
                Some(s) => g.add(s, e2),
                None => e2,
            });
        }
        let sum = sum.expect("at least one field");
        let sum_sq = sum_sq.expect("at least one field");
        let sq_of_sum = g.square(sum);
        let diff = g.sub(sq_of_sum, sum_sq);
        g.scale(diff, 0.5)
    }
}

/// A stack of `depth` fully connected `in→hidden→…→hidden` layers used by
/// the deep baselines, with per-layer activation and dropout.
#[derive(Debug, Clone)]
pub struct Mlp {
    weights: Vec<ParamId>,
    biases: Vec<ParamId>,
    /// Dropout probability applied after each activation while training.
    pub dropout: f64,
    /// Which activation to apply (`true` = ReLU, `false` = tanh).
    pub relu: bool,
}

impl Mlp {
    /// Registers `depth` layers; the first maps `input_dim → hidden`, the
    /// rest `hidden → hidden`. Xavier-uniform initialised.
    // One argument per hyper-parameter keeps call sites self-documenting;
    // a builder would be ceremony for an internal helper.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input_dim: usize,
        hidden: usize,
        depth: usize,
        dropout: f64,
        relu: bool,
        rng: &mut StdRng,
    ) -> Self {
        let mut weights = Vec::with_capacity(depth);
        let mut biases = Vec::with_capacity(depth);
        for l in 0..depth {
            let fan_in = if l == 0 { input_dim } else { hidden };
            let w = gmlfm_tensor::init::xavier(rng, fan_in, hidden);
            weights.push(params.add(format!("{name}.w{l}"), w));
            biases.push(params.add(format!("{name}.b{l}"), Matrix::zeros(1, hidden)));
        }
        Self { weights, biases, dropout, relu }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Applies the stack to a `B×input_dim` node.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        mut x: Var,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        for (w_id, b_id) in self.weights.iter().zip(&self.biases) {
            let w = g.param(params, *w_id);
            let b = g.param(params, *b_id);
            let h = g.matmul(x, w);
            let h = g.add_row_broadcast(h, b);
            let h = if self.relu { g.relu(h) } else { g.tanh(h) };
            x = if training && self.dropout > 0.0 { g.dropout(h, self.dropout, rng) } else { h };
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_tensor::seeded_rng;

    #[test]
    fn bi_interaction_equals_explicit_pair_sum() {
        let mut rng = seeded_rng(1);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, 20, 4, &mut rng);
        // Give V non-trivial values.
        *params.get_mut(base.v) = normal(&mut rng, 20, 4, 0.0, 1.0);

        let a = Instance::new(vec![1, 7, 15], 1.0);
        let batch = [&a];
        let cols = FmBase::columns(&batch);

        let mut g = Graph::new();
        let embeds = base.field_embeddings(&mut g, &params, &cols);
        let bi = base.bi_interaction(&mut g, &embeds);
        let got = g.value(bi).clone();

        // Explicit sum over pairs.
        let v = params.get(base.v);
        let rows = [1usize, 7, 15];
        let mut expected = Matrix::zeros(1, 4);
        for i in 0..3 {
            for j in i + 1..3 {
                for d in 0..4 {
                    expected[(0, d)] += v[(rows[i], d)] * v[(rows[j], d)];
                }
            }
        }
        assert!(gmlfm_tensor::approx_eq(&got, &expected, 1e-10));
    }

    #[test]
    fn linear_term_sums_first_order_weights() {
        let mut rng = seeded_rng(2);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, 10, 4, &mut rng);
        params.get_mut(base.w0).as_mut_slice()[0] = 0.5;
        for (i, w) in params.get_mut(base.w).as_mut_slice().iter_mut().enumerate() {
            *w = i as f64;
        }
        let a = Instance::new(vec![2, 5], 1.0);
        let b = Instance::new(vec![0, 9], -1.0);
        let batch = [&a, &b];
        let cols = FmBase::columns(&batch);
        let mut g = Graph::new();
        let lin = base.linear(&mut g, &params, &cols);
        assert_eq!(g.value(lin).as_slice(), &[7.5, 9.5]);
    }

    #[test]
    fn mlp_shapes_and_determinism() {
        let mut rng = seeded_rng(3);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(&mut params, "mlp", 6, 4, 3, 0.0, true, &mut rng);
        assert_eq!(mlp.depth(), 3);
        let x = Matrix::filled(5, 6, 0.3);
        let mut g = Graph::new();
        let xv = g.constant(x.clone());
        let mut drng = seeded_rng(4);
        let out = mlp.forward(&mut g, &params, xv, false, &mut drng);
        assert_eq!(g.value(out).shape(), (5, 4));
        // Eval mode is deterministic.
        let mut g2 = Graph::new();
        let xv2 = g2.constant(x);
        let mut drng2 = seeded_rng(99);
        let out2 = mlp.forward(&mut g2, &params, xv2, false, &mut drng2);
        assert!(gmlfm_tensor::approx_eq(g.value(out), g2.value(out2), 0.0));
    }
}
