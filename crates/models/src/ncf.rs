//! NCF / NeuMF (He et al., WWW'17): a GMF branch (element-wise product of
//! user and item embeddings) fused with an MLP branch over separate
//! embeddings, trained point-wise.

use crate::common::PairCodec;
use crate::graphfm::Mlp;
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use gmlfm_train::GraphModel;
use rand::rngs::StdRng;

/// NCF hyper-parameters.
#[derive(Debug, Clone)]
pub struct NcfConfig {
    /// Embedding size `k` for both branches.
    pub k: usize,
    /// MLP depth.
    pub layers: usize,
    /// MLP dropout.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NcfConfig {
    fn default() -> Self {
        Self { k: 16, layers: 2, dropout: 0.2, seed: 43 }
    }
}

/// Neural Collaborative Filtering (NeuMF fusion of GMF + MLP).
#[derive(Debug, Clone)]
pub struct Ncf {
    params: ParamSet,
    codec: PairCodec,
    p_gmf: ParamId,
    q_gmf: ParamId,
    p_mlp: ParamId,
    q_mlp: ParamId,
    mlp: Mlp,
    /// Fusion weights over `[gmf ⊙ | mlp]`, `2k × 1`.
    fuse: ParamId,
}

impl Ncf {
    /// Creates an untrained NCF.
    pub fn new(codec: PairCodec, cfg: &NcfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let p_gmf = params.add("p_gmf", normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01));
        let q_gmf = params.add("q_gmf", normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01));
        let p_mlp = params.add("p_mlp", normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01));
        let q_mlp = params.add("q_mlp", normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01));
        let mlp = Mlp::new(&mut params, "ncf", 2 * cfg.k, cfg.k, cfg.layers, cfg.dropout, true, &mut rng);
        let fuse = params.add("fuse", normal(&mut rng, 2 * cfg.k, 1, 0.0, 0.1));
        Self { params, codec, p_gmf, q_gmf, p_mlp, q_mlp, mlp, fuse }
    }
}

impl GraphModel for Ncf {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let mut users = Vec::with_capacity(batch.len());
        let mut items = Vec::with_capacity(batch.len());
        for inst in batch {
            let (u, i) = self.codec.decode(inst);
            users.push(u);
            items.push(i);
        }
        let p_gmf = g.param(params, self.p_gmf);
        let q_gmf = g.param(params, self.q_gmf);
        let pu = g.gather_rows(p_gmf, &users);
        let qi = g.gather_rows(q_gmf, &items);
        let gmf = g.mul(pu, qi); // B x k

        let p_mlp = g.param(params, self.p_mlp);
        let q_mlp = g.param(params, self.q_mlp);
        let pu_m = g.gather_rows(p_mlp, &users);
        let qi_m = g.gather_rows(q_mlp, &items);
        let cat = g.concat_cols(pu_m, qi_m); // B x 2k
        let mlp_out = self.mlp.forward(g, params, cat, training, rng); // B x k

        let fused = g.concat_cols(gmf, mlp_out); // B x 2k
        let w = g.param(params, self.fuse);
        g.matmul(fused, w) // B x 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};

    #[test]
    fn ncf_trains_on_loo_instances() {
        let d = generate(&DatasetSpec::AmazonAuto.config(101).scaled(0.25));
        let mask = FieldMask::base(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 19);
        let codec = PairCodec::from_schema(&d.schema);
        let mut model = Ncf::new(codec, &NcfConfig::default());
        let cfg = TrainConfig { epochs: 8, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &split.train, None, &cfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.9),
            "losses {:?}",
            report.train_losses
        );
        // Scoring a ranking case produces finite values.
        let case = &split.test[0];
        let pos = d.instance_masked(case.user, case.pos_item, 1.0, &mask);
        let neg = d.instance_masked(case.user, case.negatives[0], -1.0, &mask);
        let scores = model.scores(&[pos, neg]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn gmf_branch_is_sensitive_to_item_identity() {
        let codec = PairCodec::from_sizes(5, 6);
        let model = Ncf::new(codec, &NcfConfig { k: 4, layers: 1, dropout: 0.0, seed: 3 });
        let a = Instance::new(vec![2, 5 + 1], 1.0);
        let b = Instance::new(vec![2, 5 + 4], 1.0);
        let scores = model.scores(&[a, b]);
        assert_ne!(scores[0], scores[1]);
    }
}
