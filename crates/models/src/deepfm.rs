//! DeepFM (Guo et al., IJCAI'17): an FM component and a deep MLP
//! component sharing the same field embeddings, summed at the output
//! (Wide & Deep style, with the FM replacing the wide part).

use crate::graphfm::{FmBase, Mlp};
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use gmlfm_train::GraphModel;
use rand::rngs::StdRng;

/// DeepFM hyper-parameters.
#[derive(Debug, Clone)]
pub struct DeepFmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// Depth of the deep tower.
    pub layers: usize,
    /// Dropout in the deep tower.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeepFmConfig {
    fn default() -> Self {
        Self { k: 16, layers: 2, dropout: 0.2, seed: 31 }
    }
}

/// DeepFM model.
#[derive(Debug, Clone)]
pub struct DeepFm {
    params: ParamSet,
    base: FmBase,
    deep: Mlp,
    out: ParamId,
    /// Field count the deep tower was sized for; checked against every
    /// batch. Plain data (not a `Cell`) so the model stays `Sync` for
    /// multi-threaded serving.
    n_fields_hint: Option<usize>,
}

impl DeepFm {
    /// Creates an untrained DeepFM. `n_fields` must match the instances
    /// it will be trained on (the deep tower's input width is `m·k`).
    pub fn new(n_features: usize, n_fields: usize, cfg: &DeepFmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, n_features, cfg.k, &mut rng);
        let deep =
            Mlp::new(&mut params, "deep", n_fields * cfg.k, cfg.k, cfg.layers, cfg.dropout, true, &mut rng);
        let out = params.add("deep.out", normal(&mut rng, cfg.k, 1, 0.0, 0.1));
        Self { params, base, deep, out, n_fields_hint: Some(n_fields) }
    }
}

impl GraphModel for DeepFm {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let cols = FmBase::columns(batch);
        if let Some(expected) = self.n_fields_hint {
            assert_eq!(cols.len(), expected, "DeepFm built for {expected} fields, got {}", cols.len());
        }
        let linear = self.base.linear(g, params, &cols);
        let embeds = self.base.field_embeddings(g, params, &cols);

        // FM component: Σ_d of the Bi-Interaction vector.
        let bi = self.base.bi_interaction(g, &embeds);
        let fm2 = g.sum_rows(bi); // B x 1

        // Deep component: concatenated field embeddings through the MLP.
        let mut cat = embeds[0];
        for &e in &embeds[1..] {
            cat = g.concat_cols(cat, e);
        }
        let z = self.deep.forward(g, params, cat, training, rng);
        let out_w = g.param(params, self.out);
        let deep = g.matmul(z, out_w); // B x 1

        let lo = g.add(linear, fm2);
        g.add(lo, deep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};

    #[test]
    fn deepfm_trains_and_reduces_loss() {
        let d = generate(&DatasetSpec::AmazonAuto.config(71).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 13);
        let mut model = DeepFm::new(d.schema.total_dim(), d.schema.n_fields(), &DeepFmConfig::default());
        let cfg = TrainConfig { epochs: 8, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &s.train, Some(&s.val), &cfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.9),
            "losses {:?}",
            report.train_losses
        );
        assert!(model.scores(&s.test).iter().all(|p| p.is_finite()));
    }

    #[test]
    #[should_panic(expected = "DeepFm built for")]
    fn field_count_mismatch_is_detected() {
        let model = DeepFm::new(20, 3, &DeepFmConfig::default());
        let inst = Instance::new(vec![0, 5], 1.0); // only 2 fields
        let _ = model.score_one(&inst);
    }
}
