//! xDeepFM (Lian et al., KDD'18): replaces DeepFM's FM component with a
//! Compressed Interaction Network (CIN) that builds explicit vector-wise
//! higher-order interactions.
//!
//! CIN layer `l` with `H_l` feature maps over base fields `X⁰ ∈ R^{m×k}`:
//!
//! `x^l_h = Σ_{i≤H_{l-1}} Σ_{j≤m} W^{l}_{h,i,j} · (x^{l-1}_i ⊙ x⁰_j)`
//!
//! Each map is sum-pooled over the embedding dimension and the pooled
//! scalars from all layers feed a final linear unit, alongside the linear
//! term and a deep tower.

use crate::graphfm::{FmBase, Mlp};
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::GraphModel;
use rand::rngs::StdRng;

/// xDeepFM hyper-parameters.
#[derive(Debug, Clone)]
pub struct XDeepFmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// Feature maps per CIN layer.
    pub cin_maps: usize,
    /// Number of CIN layers.
    pub cin_depth: usize,
    /// Deep-tower depth.
    pub layers: usize,
    /// Deep-tower dropout.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XDeepFmConfig {
    fn default() -> Self {
        Self { k: 16, cin_maps: 4, cin_depth: 2, layers: 2, dropout: 0.2, seed: 41 }
    }
}

/// xDeepFM model.
#[derive(Debug, Clone)]
pub struct XDeepFm {
    params: ParamSet,
    base: FmBase,
    deep: Mlp,
    deep_out: ParamId,
    /// One weight matrix per CIN layer, flattened to
    /// `(H_l · H_{l-1} · m) × 1` for scalar gathers.
    cin_weights: Vec<ParamId>,
    /// Final linear unit over the pooled CIN maps.
    cin_out: ParamId,
    cin_maps: usize,
    n_fields: usize,
}

impl XDeepFm {
    /// Creates an untrained xDeepFM for instances with `n_fields` fields.
    pub fn new(n_features: usize, n_fields: usize, cfg: &XDeepFmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, n_features, cfg.k, &mut rng);
        let deep =
            Mlp::new(&mut params, "deep", n_fields * cfg.k, cfg.k, cfg.layers, cfg.dropout, true, &mut rng);
        let deep_out = params.add("deep.out", normal(&mut rng, cfg.k, 1, 0.0, 0.1));

        let mut cin_weights = Vec::with_capacity(cfg.cin_depth);
        let mut h_prev = n_fields;
        for l in 0..cfg.cin_depth {
            let len = cfg.cin_maps * h_prev * n_fields;
            let w = normal(&mut rng, len, 1, 0.0, (2.0 / (h_prev * n_fields) as f64).sqrt());
            cin_weights.push(params.add(format!("cin.w{l}"), w));
            h_prev = cfg.cin_maps;
        }
        let cin_out = params.add("cin.out", normal(&mut rng, cfg.cin_depth * cfg.cin_maps, 1, 0.0, 0.1));
        Self { params, base, deep, deep_out, cin_weights, cin_out, cin_maps: cfg.cin_maps, n_fields }
    }

    /// One CIN pass; returns the `B × (depth·maps)` pooled features.
    fn cin(&self, g: &mut Graph, params: &ParamSet, base_fields: &[Var], batch_size: usize) -> Var {
        let ones = g.constant(Matrix::filled(batch_size, 1, 1.0));
        let m = base_fields.len();
        let mut pooled: Option<Var> = None;
        let mut prev: Vec<Var> = base_fields.to_vec();
        for w_id in &self.cin_weights {
            let w = g.param(params, *w_id);
            let h_prev = prev.len();
            let mut next = Vec::with_capacity(self.cin_maps);
            for h in 0..self.cin_maps {
                let mut acc: Option<Var> = None;
                for (i, &prev_i) in prev.iter().enumerate() {
                    for (j, &base_j) in base_fields.iter().enumerate() {
                        let prod = g.mul(prev_i, base_j); // B x k
                        let flat = h * (h_prev * m) + i * m + j;
                        let scalar = g.gather_rows(w, &[flat]); // 1 x 1
                        let col = g.matmul(ones, scalar); // B x 1
                        let term = g.mul_col_broadcast(prod, col);
                        acc = Some(match acc {
                            Some(a) => g.add(a, term),
                            None => term,
                        });
                    }
                }
                next.push(acc.expect("non-empty CIN layer"));
            }
            // Sum-pool each map over the embedding dimension.
            for &map in &next {
                let p = g.sum_rows(map); // B x 1
                pooled = Some(match pooled {
                    Some(acc) => g.concat_cols(acc, p),
                    None => p,
                });
            }
            prev = next;
        }
        pooled.expect("at least one CIN layer")
    }
}

impl GraphModel for XDeepFm {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let cols = FmBase::columns(batch);
        assert_eq!(
            cols.len(),
            self.n_fields,
            "XDeepFm built for {} fields, got {}",
            self.n_fields,
            cols.len()
        );
        let linear = self.base.linear(g, params, &cols);
        let embeds = self.base.field_embeddings(g, params, &cols);

        // CIN component.
        let pooled = self.cin(g, params, &embeds, batch.len());
        let cin_w = g.param(params, self.cin_out);
        let cin_score = g.matmul(pooled, cin_w); // B x 1

        // Deep component.
        let mut cat = embeds[0];
        for &e in &embeds[1..] {
            cat = g.concat_cols(cat, e);
        }
        let z = self.deep.forward(g, params, cat, training, rng);
        let deep_w = g.param(params, self.deep_out);
        let deep_score = g.matmul(z, deep_w); // B x 1

        let partial = g.add(linear, cin_score);
        g.add(partial, deep_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};

    #[test]
    fn cin_output_width_is_depth_times_maps() {
        let cfg = XDeepFmConfig { k: 4, cin_maps: 3, cin_depth: 2, layers: 1, dropout: 0.0, seed: 1 };
        let model = XDeepFm::new(20, 3, &cfg);
        let a = Instance::new(vec![0, 8, 16], 1.0);
        let b = Instance::new(vec![1, 9, 17], -1.0);
        let batch = [&a, &b];
        let cols = FmBase::columns(&batch);
        let mut g = Graph::new();
        let embeds = model.base.field_embeddings(&mut g, &model.params, &cols);
        let pooled = model.cin(&mut g, &model.params, &embeds, 2);
        assert_eq!(g.value(pooled).shape(), (2, 6));
    }

    #[test]
    fn xdeepfm_trains_and_reduces_loss() {
        let d = generate(&DatasetSpec::AmazonAuto.config(91).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 17);
        let cfg = XDeepFmConfig { k: 8, ..XDeepFmConfig::default() };
        let mut model = XDeepFm::new(d.schema.total_dim(), d.schema.n_fields(), &cfg);
        let tcfg = TrainConfig { epochs: 6, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &s.train, Some(&s.val), &tcfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.9),
            "losses {:?}",
            report.train_losses
        );
        assert!(model.scores(&s.test).iter().all(|p| p.is_finite()));
    }
}
