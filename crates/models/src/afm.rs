//! AFM: Attentional Factorization Machine (Xiao et al., IJCAI'17).
//!
//! Replaces FM's uniform pair weighting with an attention network over the
//! element-wise pair products:
//!
//! `ŷ(x) = w₀ + Σᵢwᵢxᵢ + pᵀ Σ_{(i,j)} a_ij (vᵢ ⊙ vⱼ) xᵢxⱼ`
//! `a_ij = softmax(hₐᵀ ReLU(W (vᵢ ⊙ vⱼ) + b))`

use crate::graphfm::FmBase;
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::{normal, xavier};
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::GraphModel;
use rand::rngs::StdRng;

/// AFM hyper-parameters.
#[derive(Debug, Clone)]
pub struct AfmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// Attention-network hidden size `t`.
    pub attention_size: usize,
    /// Dropout on the attended interaction vector.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AfmConfig {
    fn default() -> Self {
        Self { k: 16, attention_size: 16, dropout: 0.2, seed: 29 }
    }
}

/// Attentional Factorization Machine.
#[derive(Debug, Clone)]
pub struct Afm {
    params: ParamSet,
    base: FmBase,
    att_w: ParamId,
    att_b: ParamId,
    att_h: ParamId,
    p: ParamId,
    dropout: f64,
}

impl Afm {
    /// Creates an untrained AFM over `n_features` one-hot features.
    pub fn new(n_features: usize, cfg: &AfmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, n_features, cfg.k, &mut rng);
        let att_w = params.add("att.w", xavier(&mut rng, cfg.k, cfg.attention_size));
        let att_b = params.add("att.b", Matrix::zeros(1, cfg.attention_size));
        let att_h = params.add("att.h", normal(&mut rng, cfg.attention_size, 1, 0.0, 0.1));
        let p = params.add("p", normal(&mut rng, cfg.k, 1, 0.0, 0.1));
        Self { params, base, att_w, att_b, att_h, p, dropout: cfg.dropout }
    }
}

impl GraphModel for Afm {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let cols = FmBase::columns(batch);
        let linear = self.base.linear(g, params, &cols);
        let embeds = self.base.field_embeddings(g, params, &cols);
        let m = embeds.len();

        // All pair products v_i ⊙ v_j, each B×k.
        let mut pair_products = Vec::with_capacity(m * (m - 1) / 2);
        for i in 0..m {
            for j in i + 1..m {
                pair_products.push(g.mul(embeds[i], embeds[j]));
            }
        }

        // Attention logits per pair, concatenated to B×P then softmaxed.
        let att_w = g.param(params, self.att_w);
        let att_b = g.param(params, self.att_b);
        let att_h = g.param(params, self.att_h);
        let mut logits: Option<Var> = None;
        for &prod in &pair_products {
            let hidden = g.matmul(prod, att_w);
            let hidden = g.add_row_broadcast(hidden, att_b);
            let hidden = g.relu(hidden);
            let score = g.matmul(hidden, att_h); // B x 1
            logits = Some(match logits {
                Some(l) => g.concat_cols(l, score),
                None => score,
            });
        }
        let logits = logits.expect("at least one pair");
        let attention = g.softmax_rows(logits); // B x P

        // Attended sum of pair products.
        let mut attended: Option<Var> = None;
        for (p_idx, &prod) in pair_products.iter().enumerate() {
            let a_col = g.slice_cols(attention, p_idx, p_idx + 1); // B x 1
            let weighted = g.mul_col_broadcast(prod, a_col);
            attended = Some(match attended {
                Some(acc) => g.add(acc, weighted),
                None => weighted,
            });
        }
        let mut attended = attended.expect("at least one pair");
        if training && self.dropout > 0.0 {
            attended = g.dropout(attended, self.dropout, rng);
        }
        let p = g.param(params, self.p);
        let interaction = g.matmul(attended, p); // B x 1
        g.add(linear, interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};

    #[test]
    fn afm_trains_and_reduces_loss() {
        let d = generate(&DatasetSpec::AmazonAuto.config(61).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 11);
        let mut model = Afm::new(d.schema.total_dim(), &AfmConfig::default());
        let cfg = TrainConfig { epochs: 8, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &s.train, Some(&s.val), &cfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.95),
            "losses {:?}",
            report.train_losses
        );
    }

    #[test]
    fn attention_weights_sum_to_one_per_instance() {
        let model = Afm::new(20, &AfmConfig { k: 4, attention_size: 4, dropout: 0.0, seed: 3 });
        let inst = Instance::new(vec![0, 7, 13, 19], 1.0);
        let batch = [&inst];
        let cols = FmBase::columns(&batch);
        let mut g = Graph::new();
        let embeds = model.base.field_embeddings(&mut g, &model.params, &cols);
        let m = embeds.len();
        let att_w = g.param(&model.params, model.att_w);
        let att_b = g.param(&model.params, model.att_b);
        let att_h = g.param(&model.params, model.att_h);
        let mut logits: Option<Var> = None;
        for i in 0..m {
            for j in i + 1..m {
                let prod = g.mul(embeds[i], embeds[j]);
                let hid = g.matmul(prod, att_w);
                let hid = g.add_row_broadcast(hid, att_b);
                let hid = g.relu(hid);
                let score = g.matmul(hid, att_h);
                logits = Some(match logits {
                    Some(l) => g.concat_cols(l, score),
                    None => score,
                });
            }
        }
        let att = g.softmax_rows(logits.unwrap());
        let row_sum: f64 = g.value(att).row(0).iter().sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
        assert_eq!(g.value(att).cols(), m * (m - 1) / 2);
    }

    #[test]
    fn predictions_are_deterministic_in_eval_mode() {
        let model = Afm::new(15, &AfmConfig { k: 4, attention_size: 4, dropout: 0.5, seed: 9 });
        let inst = Instance::new(vec![1, 6, 11], 1.0);
        let refs = [inst];
        assert_eq!(model.scores(&refs), model.scores(&refs));
    }
}
