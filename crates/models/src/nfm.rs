//! NFM: Neural Factorization Machine (He & Chua, SIGIR'17).
//!
//! `ŷ(x) = w₀ + Σᵢ wᵢxᵢ + hᵀ MLP(f_BI(Vx))` where `f_BI` is the
//! Bi-Interaction pooling `Σᵢ Σ_{j>i} xᵢvᵢ ⊙ xⱼvⱼ`.

use crate::graphfm::{FmBase, Mlp};
use gmlfm_autograd::{Graph, ParamId, ParamSet, Var};
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::seeded_rng;
use gmlfm_train::GraphModel;
use rand::rngs::StdRng;

/// NFM hyper-parameters.
#[derive(Debug, Clone)]
pub struct NfmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// Number of MLP layers above the Bi-Interaction pooling.
    pub layers: usize,
    /// Dropout probability between layers.
    pub dropout: f64,
    /// RNG seed for initialisation.
    pub seed: u64,
}

impl Default for NfmConfig {
    fn default() -> Self {
        Self { k: 16, layers: 1, dropout: 0.2, seed: 23 }
    }
}

/// Neural Factorization Machine.
#[derive(Debug, Clone)]
pub struct Nfm {
    params: ParamSet,
    base: FmBase,
    mlp: Mlp,
    /// Projection vector `h ∈ R^{k×1}`.
    h: ParamId,
}

impl Nfm {
    /// Creates an untrained NFM over `n_features` one-hot features.
    pub fn new(n_features: usize, cfg: &NfmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let mut params = ParamSet::new();
        let base = FmBase::new(&mut params, n_features, cfg.k, &mut rng);
        let mlp = Mlp::new(&mut params, "nfm", cfg.k, cfg.k, cfg.layers, cfg.dropout, true, &mut rng);
        let h = params.add("h", normal(&mut rng, cfg.k, 1, 0.0, 0.1));
        Self { params, base, mlp, h }
    }

    /// Borrow of the factor table `V` (t-SNE case study).
    pub fn factors(&self) -> &gmlfm_tensor::Matrix {
        self.params.get(self.base.v)
    }
}

impl GraphModel for Nfm {
    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward_batch(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        batch: &[&Instance],
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let cols = FmBase::columns(batch);
        let linear = self.base.linear(g, params, &cols);
        let embeds = self.base.field_embeddings(g, params, &cols);
        let bi = self.base.bi_interaction(g, &embeds);
        let z = self.mlp.forward(g, params, bi, training, rng);
        let h = g.param(params, self.h);
        let deep = g.matmul(z, h); // B x 1
        g.add(linear, deep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use gmlfm_train::{fit_regression, Scorer, TrainConfig};

    #[test]
    fn nfm_trains_and_reduces_loss() {
        let d = generate(&DatasetSpec::AmazonAuto.config(51).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 9);
        let mut model = Nfm::new(d.schema.total_dim(), &NfmConfig::default());
        let cfg = TrainConfig { epochs: 10, lr: 0.02, ..TrainConfig::default() };
        let report = fit_regression(&mut model, &s.train, Some(&s.val), &cfg);
        assert!(
            report.train_losses.last().unwrap() < &(report.train_losses[0] * 0.9),
            "losses {:?}",
            report.train_losses
        );
        assert!(model.scores(&s.test).iter().all(|p| p.is_finite()));
    }

    #[test]
    fn zero_layers_reduces_to_bi_interaction_projection() {
        // With layers = 0 the MLP is the identity, so the deep part is
        // h^T f_BI — checkable against a hand computation.
        let model = Nfm::new(12, &NfmConfig { k: 4, layers: 0, dropout: 0.0, seed: 5 });
        let inst = Instance::new(vec![1, 6, 10], 1.0);
        let pred = model.score_one(&inst);
        assert!(pred.is_finite());
        // Hand computation.
        let v = model.params.get(model.base.v);
        let h = model.params.get(model.h);
        let rows = [1usize, 6, 10];
        let mut expected = 0.0; // w0, w are zero-initialised
        for a in 0..3 {
            for b in a + 1..3 {
                for d in 0..4 {
                    expected += v[(rows[a], d)] * v[(rows[b], d)] * h[(d, 0)];
                }
            }
        }
        assert!((pred - expected).abs() < 1e-10, "{pred} vs {expected}");
    }
}
