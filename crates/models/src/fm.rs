//! The vanilla Factorization Machine (Rendle, ICDM'10), trained the
//! LibFM way: per-instance SGD with the O(k·m) sum-of-squares trick.
//!
//! `ŷ(x) = w₀ + Σᵢ wᵢ xᵢ + Σᵢ Σ_{j>i} ⟨vᵢ, vⱼ⟩ xᵢ xⱼ`
//!
//! For one-hot instances with `m` active fields the second-order term is
//! `½ Σ_d [(Σ_f v_{f,d})² − Σ_f v_{f,d}²]`, evaluated in O(k·m).

use crate::common::Scorer;
use gmlfm_data::Instance;
use gmlfm_par::RacySlice;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::squared;
use rand::seq::SliceRandom;

/// FM hyper-parameters.
#[derive(Debug, Clone)]
pub struct FmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// L2 regularisation on weights and factors.
    pub reg: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FmConfig {
    fn default() -> Self {
        Self { k: 16, lr: 0.01, reg: 0.01, epochs: 30, seed: 13 }
    }
}

/// Second-order factorization machine over one-hot instances.
#[derive(Debug, Clone)]
pub struct FactorizationMachine {
    w0: f64,
    w: Vec<f64>,
    v: Matrix,
    cfg: FmConfig,
    /// Workhorse buffer for the per-dimension sums.
    sum_buf: Vec<f64>,
}

impl FactorizationMachine {
    /// Creates an untrained FM over `n_features` one-hot features.
    pub fn new(n_features: usize, cfg: FmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let v = normal(&mut rng, n_features, cfg.k, 0.0, 0.01);
        Self { w0: 0.0, w: vec![0.0; n_features], v, sum_buf: vec![0.0; cfg.k], cfg }
    }

    /// Number of one-hot features `n`.
    pub fn n_features(&self) -> usize {
        self.w.len()
    }

    /// Borrow of the factor matrix `V` (used by the t-SNE case study).
    pub fn factors(&self) -> &Matrix {
        &self.v
    }

    /// Global bias `w₀` (freeze path).
    pub fn bias(&self) -> f64 {
        self.w0
    }

    /// First-order weights `w`, one per feature (freeze path).
    pub fn linear_weights(&self) -> &[f64] {
        &self.w
    }

    /// Predicts one instance in O(k·m).
    pub fn predict_one(&self, inst: &Instance) -> f64 {
        let mut linear = self.w0;
        for &f in &inst.feats {
            linear += self.w[f as usize];
        }
        let mut pair = 0.0;
        for d in 0..self.cfg.k {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for &f in &inst.feats {
                let vfd = self.v[(f as usize, d)];
                s += vfd;
                s2 += vfd * vfd;
            }
            pair += s * s - s2;
        }
        linear + 0.5 * pair
    }

    /// Reference O(k·m²) prediction via the explicit double loop; used by
    /// tests to pin the sum-of-squares trick.
    pub fn predict_one_naive(&self, inst: &Instance) -> f64 {
        let mut out = self.w0;
        for &f in &inst.feats {
            out += self.w[f as usize];
        }
        for (a, &fi) in inst.feats.iter().enumerate() {
            for &fj in inst.feats.iter().skip(a + 1) {
                let mut dot = 0.0;
                for d in 0..self.cfg.k {
                    dot += self.v[(fi as usize, d)] * self.v[(fj as usize, d)];
                }
                out += dot;
            }
        }
        out
    }

    /// Trains with per-instance SGD; returns mean loss per epoch.
    pub fn fit(&mut self, train: &[Instance]) -> Vec<f64> {
        assert!(!train.is_empty(), "FactorizationMachine::fit: empty training set");
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let (lr, reg, k) = (self.cfg.lr, self.cfg.reg, self.cfg.k);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let inst = &train[idx];
                // Forward, caching the per-dimension sums for the backward.
                let mut linear = self.w0;
                for &f in &inst.feats {
                    linear += self.w[f as usize];
                }
                let mut pair = 0.0;
                for (d, s_slot) in self.sum_buf.iter_mut().enumerate() {
                    let mut s = 0.0;
                    let mut s2 = 0.0;
                    for &f in &inst.feats {
                        let vfd = self.v[(f as usize, d)];
                        s += vfd;
                        s2 += vfd * vfd;
                    }
                    *s_slot = s;
                    pair += s * s - s2;
                }
                let pred = linear + 0.5 * pair;
                let (loss, g) = squared(pred, inst.label);
                total += loss;

                self.w0 -= lr * g;
                for &f in &inst.feats {
                    let f = f as usize;
                    self.w[f] -= lr * (g + reg * self.w[f]);
                    for d in 0..k {
                        let vfd = self.v[(f, d)];
                        // d pair / d v_{f,d} = sum_d - v_{f,d}
                        let grad = g * (self.sum_buf[d] - vfd) + reg * vfd;
                        self.v[(f, d)] -= lr * grad;
                    }
                }
            }
            losses.push(total / train.len() as f64);
        }
        losses
    }

    /// [`FactorizationMachine::fit`] in Hogwild! epoch mode: each epoch
    /// shuffles the instances once, splits them into one contiguous
    /// block per worker, and runs the same per-instance SGD updates
    /// concurrently over the **shared** parameter buffers with no locks
    /// (see [`gmlfm_par::hogwild`] for the benign-race contract —
    /// one-hot instances touch few rows, so colliding updates are rare
    /// and statistically benign).
    ///
    /// `threads <= 1` falls back to the serial [`FactorizationMachine::fit`],
    /// bit-for-bit. With more threads the final parameters (and the
    /// returned per-epoch losses, summed per worker in block order) are
    /// *not* reproducible run to run — that is the Hogwild trade, which
    /// is why this mode is opt-in.
    pub fn fit_hogwild(&mut self, train: &[Instance], threads: usize) -> Vec<f64> {
        assert!(!train.is_empty(), "FactorizationMachine::fit_hogwild: empty training set");
        if threads <= 1 {
            return self.fit(train);
        }
        let FmConfig { k, lr, reg, epochs, seed } = self.cfg.clone();
        let mut rng = seeded_rng(seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut losses = Vec::with_capacity(epochs);
        // Disjoint racy views over the parameter buffers (the borrow of
        // `self` is split field-by-field, so the views cannot alias each
        // other through safe code).
        let Self { w0, w, v, cfg: _, sum_buf: _ } = self;
        let w0_cell = RacySlice::new(std::slice::from_mut(w0));
        let w_cell = RacySlice::new(w.as_mut_slice());
        let v_cell = RacySlice::new(v.as_mut_slice());
        let (w0_cell, w_cell, v_cell) = (&w0_cell, &w_cell, &v_cell);
        let pool = gmlfm_par::global();
        let block_len = train.len().div_ceil(threads).max(1);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut totals = vec![0.0f64; order.len().div_ceil(block_len)];
            pool.scoped(|s| {
                for (block, total) in order.chunks(block_len).zip(totals.iter_mut()) {
                    s.spawn(move || {
                        // NOTE: this worker body mirrors the serial
                        // `fit` update math exactly — keep the two in
                        // lockstep (pinned statistically by the
                        // hogwild-vs-serial quality test below).
                        let mut sum_buf = vec![0.0; k];
                        let mut block_loss = 0.0;
                        for &idx in block {
                            let inst = &train[idx];
                            let mut linear = w0_cell.load(0);
                            for &f in &inst.feats {
                                linear += w_cell.load(f as usize);
                            }
                            let mut pair = 0.0;
                            for (d, s_slot) in sum_buf.iter_mut().enumerate() {
                                let mut sum = 0.0;
                                let mut sum2 = 0.0;
                                for &f in &inst.feats {
                                    let vfd = v_cell.load(f as usize * k + d);
                                    sum += vfd;
                                    sum2 += vfd * vfd;
                                }
                                *s_slot = sum;
                                pair += sum * sum - sum2;
                            }
                            let pred = linear + 0.5 * pair;
                            let (loss, g) = squared(pred, inst.label);
                            block_loss += loss;
                            // w0 is dense (every worker, every instance):
                            // the lossless CAS add keeps it unbiased.
                            w0_cell.fetch_add(0, -lr * g);
                            for &f in &inst.feats {
                                let f = f as usize;
                                w_cell.add(f, -lr * (g + reg * w_cell.load(f)));
                                for (d, &sum) in sum_buf.iter().enumerate() {
                                    let vfd = v_cell.load(f * k + d);
                                    let grad = g * (sum - vfd) + reg * vfd;
                                    v_cell.add(f * k + d, -lr * grad);
                                }
                            }
                        }
                        *total = block_loss;
                    });
                }
            });
            losses.push(totals.iter().sum::<f64>() / train.len() as f64);
        }
        losses
    }
}

impl Scorer for FactorizationMachine {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        instances.iter().map(|i| self.predict_one(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use proptest::prelude::*;

    #[test]
    fn fast_and_naive_predictions_agree() {
        let fm = FactorizationMachine::new(50, FmConfig { k: 8, seed: 3, ..FmConfig::default() });
        let inst = Instance::new(vec![0, 17, 44, 9], 1.0);
        let fast = fm.predict_one(&inst);
        let naive = fm.predict_one_naive(&inst);
        assert!((fast - naive).abs() < 1e-10, "{fast} vs {naive}");
    }

    proptest! {
        #[test]
        fn sum_square_trick_matches_double_loop(feats in proptest::collection::vec(0u32..40, 2..6), seed in 0u64..50) {
            let mut fm = FactorizationMachine::new(40, FmConfig { k: 6, seed, ..FmConfig::default() });
            // Give V non-trivial values.
            let mut rng = seeded_rng(seed + 1);
            fm.v = normal(&mut rng, 40, 6, 0.0, 0.5);
            let inst = Instance::new(feats, 1.0);
            let fast = fm.predict_one(&inst);
            let naive = fm.predict_one_naive(&inst);
            prop_assert!((fast - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn fm_with_side_information_learns() {
        let d = generate(&DatasetSpec::AmazonAuto.config(41).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let mut fm =
            FactorizationMachine::new(d.schema.total_dim(), FmConfig { epochs: 20, ..FmConfig::default() });
        let losses = fm.fit(&s.train);
        assert!(losses.last().unwrap() < &(losses[0] * 0.85), "losses {losses:?}");
        let preds = fm.scores(&s.test);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn fit_is_deterministic() {
        let d = generate(&DatasetSpec::AmazonAuto.config(43).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let cfg = FmConfig { epochs: 3, ..FmConfig::default() };
        let mut a = FactorizationMachine::new(d.schema.total_dim(), cfg.clone());
        let mut b = FactorizationMachine::new(d.schema.total_dim(), cfg);
        assert_eq!(a.fit(&s.train), b.fit(&s.train));
    }

    #[test]
    fn hogwild_single_thread_falls_back_to_serial_exactly() {
        let d = generate(&DatasetSpec::AmazonAuto.config(47).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let cfg = FmConfig { epochs: 3, ..FmConfig::default() };
        let mut serial = FactorizationMachine::new(d.schema.total_dim(), cfg.clone());
        let mut hog = FactorizationMachine::new(d.schema.total_dim(), cfg);
        assert_eq!(serial.fit(&s.train), hog.fit_hogwild(&s.train, 1));
        assert_eq!(serial.v.as_slice(), hog.v.as_slice());
    }

    /// Statistical lockstep net for the duplicated update math: the
    /// hogwild body must implement the *same* gradients as the serial
    /// `fit`, so after identical training schedules the two models'
    /// generalisation must land in the same neighbourhood (races add
    /// noise, they do not change the objective). A sign error or a
    /// dropped regulariser in either copy blows the tolerance.
    #[test]
    fn hogwild_and_serial_reach_comparable_quality() {
        let d = generate(&DatasetSpec::AmazonAuto.config(53).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let cfg = FmConfig { epochs: 15, ..FmConfig::default() };
        let mut serial = FactorizationMachine::new(d.schema.total_dim(), cfg.clone());
        let serial_losses = serial.fit(&s.train);
        let mut hog = FactorizationMachine::new(d.schema.total_dim(), cfg);
        let hog_losses = hog.fit_hogwild(&s.train, 3);
        let rmse = |m: &FactorizationMachine| {
            let preds = m.scores(&s.test);
            (preds.iter().zip(&s.test).map(|(p, t)| (p - t.label).powi(2)).sum::<f64>() / s.test.len() as f64)
                .sqrt()
        };
        let (serial_rmse, hog_rmse) = (rmse(&serial), rmse(&hog));
        assert!(
            (hog_rmse - serial_rmse).abs() <= 0.15 * serial_rmse,
            "hogwild test RMSE {hog_rmse} drifted from serial {serial_rmse}"
        );
        let (sl, hl) = (serial_losses.last().unwrap(), hog_losses.last().unwrap());
        assert!((hl - sl).abs() <= 0.25 * sl, "hogwild final loss {hl} vs serial {sl}");
    }

    #[test]
    fn hogwild_epochs_still_learn() {
        let d = generate(&DatasetSpec::AmazonAuto.config(49).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let mut fm =
            FactorizationMachine::new(d.schema.total_dim(), FmConfig { epochs: 20, ..FmConfig::default() });
        let losses = fm.fit_hogwild(&s.train, 3);
        assert_eq!(losses.len(), 20);
        assert!(losses.iter().all(|l| l.is_finite()));
        // Convergence is statistical under Hogwild races; the loss must
        // still fall clearly from its starting point.
        assert!(losses.last().unwrap() < &(losses[0] * 0.85), "losses {losses:?}");
        assert!(fm.scores(&s.test).iter().all(|p| p.is_finite()));
    }
}
