//! The vanilla Factorization Machine (Rendle, ICDM'10), trained the
//! LibFM way: per-instance SGD with the O(k·m) sum-of-squares trick.
//!
//! `ŷ(x) = w₀ + Σᵢ wᵢ xᵢ + Σᵢ Σ_{j>i} ⟨vᵢ, vⱼ⟩ xᵢ xⱼ`
//!
//! For one-hot instances with `m` active fields the second-order term is
//! `½ Σ_d [(Σ_f v_{f,d})² − Σ_f v_{f,d}²]`, evaluated in O(k·m).

use crate::common::Scorer;
use gmlfm_data::Instance;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::squared;
use rand::seq::SliceRandom;

/// FM hyper-parameters.
#[derive(Debug, Clone)]
pub struct FmConfig {
    /// Embedding size `k`.
    pub k: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// L2 regularisation on weights and factors.
    pub reg: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FmConfig {
    fn default() -> Self {
        Self { k: 16, lr: 0.01, reg: 0.01, epochs: 30, seed: 13 }
    }
}

/// Second-order factorization machine over one-hot instances.
#[derive(Debug, Clone)]
pub struct FactorizationMachine {
    w0: f64,
    w: Vec<f64>,
    v: Matrix,
    cfg: FmConfig,
    /// Workhorse buffer for the per-dimension sums.
    sum_buf: Vec<f64>,
}

impl FactorizationMachine {
    /// Creates an untrained FM over `n_features` one-hot features.
    pub fn new(n_features: usize, cfg: FmConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let v = normal(&mut rng, n_features, cfg.k, 0.0, 0.01);
        Self { w0: 0.0, w: vec![0.0; n_features], v, sum_buf: vec![0.0; cfg.k], cfg }
    }

    /// Number of one-hot features `n`.
    pub fn n_features(&self) -> usize {
        self.w.len()
    }

    /// Borrow of the factor matrix `V` (used by the t-SNE case study).
    pub fn factors(&self) -> &Matrix {
        &self.v
    }

    /// Global bias `w₀` (freeze path).
    pub fn bias(&self) -> f64 {
        self.w0
    }

    /// First-order weights `w`, one per feature (freeze path).
    pub fn linear_weights(&self) -> &[f64] {
        &self.w
    }

    /// Predicts one instance in O(k·m).
    pub fn predict_one(&self, inst: &Instance) -> f64 {
        let mut linear = self.w0;
        for &f in &inst.feats {
            linear += self.w[f as usize];
        }
        let mut pair = 0.0;
        for d in 0..self.cfg.k {
            let mut s = 0.0;
            let mut s2 = 0.0;
            for &f in &inst.feats {
                let vfd = self.v[(f as usize, d)];
                s += vfd;
                s2 += vfd * vfd;
            }
            pair += s * s - s2;
        }
        linear + 0.5 * pair
    }

    /// Reference O(k·m²) prediction via the explicit double loop; used by
    /// tests to pin the sum-of-squares trick.
    pub fn predict_one_naive(&self, inst: &Instance) -> f64 {
        let mut out = self.w0;
        for &f in &inst.feats {
            out += self.w[f as usize];
        }
        for (a, &fi) in inst.feats.iter().enumerate() {
            for &fj in inst.feats.iter().skip(a + 1) {
                let mut dot = 0.0;
                for d in 0..self.cfg.k {
                    dot += self.v[(fi as usize, d)] * self.v[(fj as usize, d)];
                }
                out += dot;
            }
        }
        out
    }

    /// Trains with per-instance SGD; returns mean loss per epoch.
    pub fn fit(&mut self, train: &[Instance]) -> Vec<f64> {
        assert!(!train.is_empty(), "FactorizationMachine::fit: empty training set");
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train.len()).collect();
        let (lr, reg, k) = (self.cfg.lr, self.cfg.reg, self.cfg.k);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let inst = &train[idx];
                // Forward, caching the per-dimension sums for the backward.
                let mut linear = self.w0;
                for &f in &inst.feats {
                    linear += self.w[f as usize];
                }
                let mut pair = 0.0;
                for (d, s_slot) in self.sum_buf.iter_mut().enumerate() {
                    let mut s = 0.0;
                    let mut s2 = 0.0;
                    for &f in &inst.feats {
                        let vfd = self.v[(f as usize, d)];
                        s += vfd;
                        s2 += vfd * vfd;
                    }
                    *s_slot = s;
                    pair += s * s - s2;
                }
                let pred = linear + 0.5 * pair;
                let (loss, g) = squared(pred, inst.label);
                total += loss;

                self.w0 -= lr * g;
                for &f in &inst.feats {
                    let f = f as usize;
                    self.w[f] -= lr * (g + reg * self.w[f]);
                    for d in 0..k {
                        let vfd = self.v[(f, d)];
                        // d pair / d v_{f,d} = sum_d - v_{f,d}
                        let grad = g * (self.sum_buf[d] - vfd) + reg * vfd;
                        self.v[(f, d)] -= lr * grad;
                    }
                }
            }
            losses.push(total / train.len() as f64);
        }
        losses
    }
}

impl Scorer for FactorizationMachine {
    fn scores(&self, instances: &[&Instance]) -> Vec<f64> {
        instances.iter().map(|i| self.predict_one(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, rating_split, DatasetSpec, FieldMask};
    use proptest::prelude::*;

    #[test]
    fn fast_and_naive_predictions_agree() {
        let fm = FactorizationMachine::new(50, FmConfig { k: 8, seed: 3, ..FmConfig::default() });
        let inst = Instance::new(vec![0, 17, 44, 9], 1.0);
        let fast = fm.predict_one(&inst);
        let naive = fm.predict_one_naive(&inst);
        assert!((fast - naive).abs() < 1e-10, "{fast} vs {naive}");
    }

    proptest! {
        #[test]
        fn sum_square_trick_matches_double_loop(feats in proptest::collection::vec(0u32..40, 2..6), seed in 0u64..50) {
            let mut fm = FactorizationMachine::new(40, FmConfig { k: 6, seed, ..FmConfig::default() });
            // Give V non-trivial values.
            let mut rng = seeded_rng(seed + 1);
            fm.v = normal(&mut rng, 40, 6, 0.0, 0.5);
            let inst = Instance::new(feats, 1.0);
            let fast = fm.predict_one(&inst);
            let naive = fm.predict_one_naive(&inst);
            prop_assert!((fast - naive).abs() < 1e-9);
        }
    }

    #[test]
    fn fm_with_side_information_learns() {
        let d = generate(&DatasetSpec::AmazonAuto.config(41).scaled(0.25));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let mut fm =
            FactorizationMachine::new(d.schema.total_dim(), FmConfig { epochs: 20, ..FmConfig::default() });
        let losses = fm.fit(&s.train);
        assert!(losses.last().unwrap() < &(losses[0] * 0.85), "losses {losses:?}");
        let refs: Vec<&Instance> = s.test.iter().collect();
        let preds = fm.scores(&refs);
        assert!(preds.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn fit_is_deterministic() {
        let d = generate(&DatasetSpec::AmazonAuto.config(43).scaled(0.2));
        let mask = FieldMask::all(&d.schema);
        let s = rating_split(&d, &mask, 2, 7);
        let cfg = FmConfig { epochs: 3, ..FmConfig::default() };
        let mut a = FactorizationMachine::new(d.schema.total_dim(), cfg.clone());
        let mut b = FactorizationMachine::new(d.schema.total_dim(), cfg);
        assert_eq!(a.fit(&s.train), b.fit(&s.train));
    }
}
