//! BPR-MF: Bayesian Personalized Ranking with a matrix-factorization
//! scorer (Rendle et al., UAI'09) — the paper's pairwise learning-to-rank
//! baseline for top-n recommendation.

use crate::common::{PairCodec, Scorer};
use crate::mf::MfConfig;
use gmlfm_data::Instance;
use gmlfm_par::RacySlice;
use gmlfm_tensor::init::normal;
use gmlfm_tensor::{seeded_rng, Matrix};
use gmlfm_train::loss::bpr;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// BPR-optimised matrix factorization: `ŷ(u,i) = b_i + p_uᵀ q_i`, trained
/// on sampled `(u, i⁺, j⁻)` triples.
#[derive(Debug, Clone)]
pub struct BprMf {
    codec: PairCodec,
    bi: Vec<f64>,
    p: Matrix,
    q: Matrix,
    cfg: MfConfig,
}

impl BprMf {
    /// Creates an untrained model.
    pub fn new(codec: PairCodec, cfg: MfConfig) -> Self {
        let mut rng = seeded_rng(cfg.seed);
        let p = normal(&mut rng, codec.n_users(), cfg.k, 0.0, 0.01);
        let q = normal(&mut rng, codec.n_items(), cfg.k, 0.0, 0.01);
        Self { codec, bi: vec![0.0; codec.n_items()], p, q, cfg }
    }

    /// Trains on positive `(user, item)` pairs; negatives are resampled
    /// uniformly each epoch from items absent in `user_items`.
    /// Returns mean BPR loss per epoch.
    pub fn fit(&mut self, train_pairs: &[(u32, u32)], user_items: &[HashSet<u32>]) -> Vec<f64> {
        assert!(!train_pairs.is_empty(), "BprMf::fit: no training pairs");
        let n_items = self.codec.n_items();
        let mut rng = seeded_rng(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train_pairs.len()).collect();
        let (lr, reg, k) = (self.cfg.lr, self.cfg.reg, self.cfg.k);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &idx in &order {
                let (u, i) = train_pairs[idx];
                let (u, i) = (u as usize, i as usize);
                // Rejection-sample one negative.
                let j = loop {
                    let cand = rng.gen_range(0..n_items) as u32;
                    if !user_items[u].contains(&cand) {
                        break cand as usize;
                    }
                };
                let x_uij = self.predict_pair(u, i) - self.predict_pair(u, j);
                let (loss, g) = bpr(x_uij);
                total += loss;
                self.bi[i] -= lr * (g + reg * self.bi[i]);
                self.bi[j] -= lr * (-g + reg * self.bi[j]);
                for d in 0..k {
                    let pu = self.p[(u, d)];
                    let qi = self.q[(i, d)];
                    let qj = self.q[(j, d)];
                    self.p[(u, d)] -= lr * (g * (qi - qj) + reg * pu);
                    self.q[(i, d)] -= lr * (g * pu + reg * qi);
                    self.q[(j, d)] -= lr * (-g * pu + reg * qj);
                }
            }
            losses.push(total / train_pairs.len() as f64);
        }
        losses
    }

    /// [`BprMf::fit`] in Hogwild! epoch mode: each epoch's shuffled
    /// positive pairs are split into one contiguous block per worker;
    /// every worker rejection-samples its own negatives (from a seed
    /// derived per epoch × worker) and applies the BPR updates
    /// lock-free over the **shared** `b_i`/`P`/`Q` buffers (see
    /// [`gmlfm_par::hogwild`] for the benign-race contract — each triple
    /// touches one user row and two item rows, the sparse-update regime
    /// Hogwild! was built for).
    ///
    /// `threads <= 1` falls back to the serial fit, bit-for-bit; more
    /// threads trade run-to-run reproducibility for throughput, which is
    /// why the mode is opt-in.
    pub fn fit_hogwild(
        &mut self,
        train_pairs: &[(u32, u32)],
        user_items: &[HashSet<u32>],
        threads: usize,
    ) -> Vec<f64> {
        assert!(!train_pairs.is_empty(), "BprMf::fit_hogwild: no training pairs");
        if threads <= 1 {
            return self.fit(train_pairs, user_items);
        }
        let n_items = self.codec.n_items();
        let MfConfig { k, lr, reg, epochs, seed } = self.cfg.clone();
        let mut rng = seeded_rng(seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train_pairs.len()).collect();
        let mut losses = Vec::with_capacity(epochs);
        let Self { bi, p, q, .. } = self;
        let bi_cell = RacySlice::new(bi.as_mut_slice());
        let p_cell = RacySlice::new(p.as_mut_slice());
        let q_cell = RacySlice::new(q.as_mut_slice());
        let (bi_cell, p_cell, q_cell) = (&bi_cell, &p_cell, &q_cell);
        let pool = gmlfm_par::global();
        let block_len = train_pairs.len().div_ceil(threads).max(1);
        for epoch in 0..epochs {
            order.shuffle(&mut rng);
            let mut totals = vec![0.0f64; order.len().div_ceil(block_len)];
            pool.scoped(|s| {
                for (worker, (block, total)) in order.chunks(block_len).zip(totals.iter_mut()).enumerate() {
                    s.spawn(move || {
                        // NOTE: mirrors the serial `fit` update math —
                        // keep the two in lockstep. All touched cells
                        // (one user row, two item rows) are sparse, so
                        // the racy `add` fast path applies throughout.
                        // Per-worker sampling stream, decorrelated across
                        // epochs and workers.
                        let mut wrng = seeded_rng(
                            seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ (worker as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                        );
                        let mut block_loss = 0.0;
                        for &idx in block {
                            let (u, i) = train_pairs[idx];
                            let (u, i) = (u as usize, i as usize);
                            let j = loop {
                                let cand = wrng.gen_range(0..n_items) as u32;
                                if !user_items[u].contains(&cand) {
                                    break cand as usize;
                                }
                            };
                            let mut x_uij = bi_cell.load(i) - bi_cell.load(j);
                            for d in 0..k {
                                let pu = p_cell.load(u * k + d);
                                x_uij += pu * (q_cell.load(i * k + d) - q_cell.load(j * k + d));
                            }
                            let (loss, g) = bpr(x_uij);
                            block_loss += loss;
                            bi_cell.add(i, -lr * (g + reg * bi_cell.load(i)));
                            bi_cell.add(j, -lr * (-g + reg * bi_cell.load(j)));
                            for d in 0..k {
                                let pu = p_cell.load(u * k + d);
                                let qi = q_cell.load(i * k + d);
                                let qj = q_cell.load(j * k + d);
                                p_cell.add(u * k + d, -lr * (g * (qi - qj) + reg * pu));
                                q_cell.add(i * k + d, -lr * (g * pu + reg * qi));
                                q_cell.add(j * k + d, -lr * (-g * pu + reg * qj));
                            }
                        }
                        *total = block_loss;
                    });
                }
            });
            losses.push(totals.iter().sum::<f64>() / train_pairs.len() as f64);
        }
        losses
    }

    /// Raw score for a `(user, item)` pair.
    pub fn predict_pair(&self, u: usize, i: usize) -> f64 {
        let mut dot = 0.0;
        for d in 0..self.cfg.k {
            dot += self.p[(u, d)] * self.q[(i, d)];
        }
        self.bi[i] + dot
    }
}

impl Scorer for BprMf {
    fn scores(&self, instances: &[Instance]) -> Vec<f64> {
        instances
            .iter()
            .map(|inst| {
                let (u, i) = self.codec.decode(inst);
                self.predict_pair(u, i)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlfm_data::{generate, loo_split, DatasetSpec, FieldMask};

    #[test]
    fn bpr_ranks_positives_above_random_negatives() {
        let d = generate(&DatasetSpec::AmazonAuto.config(31).scaled(0.25));
        let mask = FieldMask::base(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 5);
        let codec = PairCodec::from_schema(&d.schema);
        let mut model = BprMf::new(codec, MfConfig { epochs: 40, lr: 0.05, ..MfConfig::default() });
        let losses = model.fit(&split.train_pairs, &split.train_user_items);
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");

        // The trained model should rank seen positives above unseen items
        // clearly better than chance.
        let mut wins = 0usize;
        let mut total = 0usize;
        for &(u, i) in split.train_pairs.iter().take(300) {
            let pos = model.predict_pair(u as usize, i as usize);
            for j in 0..5 {
                let neg_item = (i as usize + 37 * (j + 1)) % d.n_items;
                if split.train_user_items[u as usize].contains(&(neg_item as u32)) {
                    continue;
                }
                total += 1;
                if pos > model.predict_pair(u as usize, neg_item) {
                    wins += 1;
                }
            }
        }
        let auc = wins as f64 / total as f64;
        assert!(auc > 0.75, "training AUC {auc}");
    }

    #[test]
    fn hogwild_bpr_still_ranks_above_chance() {
        let d = generate(&DatasetSpec::AmazonAuto.config(31).scaled(0.25));
        let mask = FieldMask::base(&d.schema);
        let split = loo_split(&d, &mask, 2, 20, 5);
        let codec = PairCodec::from_schema(&d.schema);
        let mut model = BprMf::new(codec, MfConfig { epochs: 40, lr: 0.05, ..MfConfig::default() });
        let losses = model.fit_hogwild(&split.train_pairs, &split.train_user_items, 3);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert!(losses.last().unwrap() < &losses[0], "losses {losses:?}");
        let mut wins = 0usize;
        let mut total = 0usize;
        for &(u, i) in split.train_pairs.iter().take(300) {
            let pos = model.predict_pair(u as usize, i as usize);
            for j in 0..5 {
                let neg_item = (i as usize + 37 * (j + 1)) % d.n_items;
                if split.train_user_items[u as usize].contains(&(neg_item as u32)) {
                    continue;
                }
                total += 1;
                if pos > model.predict_pair(u as usize, neg_item) {
                    wins += 1;
                }
            }
        }
        let auc = wins as f64 / total as f64;
        assert!(auc > 0.7, "hogwild training AUC {auc}");
    }

    #[test]
    fn hogwild_single_thread_is_the_serial_fit() {
        let d = generate(&DatasetSpec::AmazonAuto.config(33).scaled(0.2));
        let mask = FieldMask::base(&d.schema);
        let split = loo_split(&d, &mask, 2, 10, 5);
        let codec = PairCodec::from_schema(&d.schema);
        let cfg = MfConfig { epochs: 3, ..MfConfig::default() };
        let mut serial = BprMf::new(codec, cfg.clone());
        let mut hog = BprMf::new(codec, cfg);
        assert_eq!(
            serial.fit(&split.train_pairs, &split.train_user_items),
            hog.fit_hogwild(&split.train_pairs, &split.train_user_items, 1)
        );
    }

    #[test]
    fn fit_is_deterministic() {
        let d = generate(&DatasetSpec::AmazonAuto.config(33).scaled(0.2));
        let mask = FieldMask::base(&d.schema);
        let split = loo_split(&d, &mask, 2, 10, 5);
        let codec = PairCodec::from_schema(&d.schema);
        let cfg = MfConfig { epochs: 3, ..MfConfig::default() };
        let mut a = BprMf::new(codec, cfg.clone());
        let mut b = BprMf::new(codec, cfg);
        assert_eq!(
            a.fit(&split.train_pairs, &split.train_user_items),
            b.fit(&split.train_pairs, &split.train_user_items)
        );
    }
}
